"""Closed-loop load harness: seeded traffic, measurement, feature ablation.

Point benchmarks time one operation in isolation; serving regressions live
in the *mixture* — cache-friendly repeats vs. cold queries, reads racing
updates, admission control under a burst.  This module generates that
mixture against the real HTTP server and measures it through the existing
observability stack, in three layers:

1. **Traffic generation** (:class:`LoadProfile` → :func:`build_plan`):
   an open-loop request sequence with Zipf-skewed query/document
   popularity, a configurable search/batch/update mix, and Poisson,
   fixed-rate or closed-loop arrivals.  Every random draw comes from one
   ``random.Random(seed)`` (a :class:`~repro.datasets.base.DatasetRandom`),
   so a profile plus a corpus determines the request sequence completely —
   two runs with the same seed issue byte-identical payloads in the same
   order (the ``seeded-rng`` analysis rule keeps it that way).

2. **Measurement** (:func:`run_load` → :class:`LoadReport`): per-request
   latency recorded client-side through a :class:`~repro.api.client.ClientPool`
   (one keep-alive connection per worker), plus a before/after scrape of
   ``GET /v1/stats`` — p50/p95/p99 latency, achieved throughput, error and
   shed rates, and the serving-cache hit rate for exactly the requests the
   run issued.  :func:`report_rows` shapes the result for
   ``benchmarks/reporting.py`` (report schema v2).

3. **Ablation** (:func:`ablation_matrix` → :func:`run_ablation`): a
   baseline-plus-one-flip matrix over serving flags (caches on/off,
   admission limits, deadlines, executor width, snapshot format …), each
   configuration served by a freshly spawned ``repro.cli serve`` process
   (via :func:`repro.cluster.remote.spawn_server`) and measured with the
   *same* request plan, ranked into an
   :class:`~repro.eval.reporting.ExperimentTable`.

``python -m repro.cli loadgen`` / ``loadgen-ablate`` drive all three; see
``docs/loadgen.md``.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.api.client import ClientPool, ServiceClient
from repro.api.protocol import (
    DEFAULT_SIZE_BOUND,
    BatchRequest,
    SearchRequest,
    UpdateRequest,
)
from repro.datasets.base import DatasetRandom
from repro.errors import EvaluationError
from repro.eval.reporting import ExperimentTable
from repro.eval.workload import WorkloadGenerator
from repro.obs.clock import monotonic, perf_counter
from repro.xmltree.serialize import to_xml_string

#: request kinds the traffic mix is drawn over
REQUEST_KINDS = ("search", "batch", "update")

#: supported arrival processes — ``closed`` fires as fast as the workers
#: complete (a closed loop); the open-loop processes schedule arrivals
#: independently of completions
ARRIVALS = ("closed", "poisson", "fixed")

#: latency percentiles every report carries
PERCENTILES = (50, 95, 99)


# ---------------------------------------------------------------------- #
# layer 1: the traffic model
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class LoadProfile:
    """Everything that determines a request sequence, seed included.

    The weights describe the search/batch/update mix (normalised over
    their sum); ``zipf_skew`` shapes both document and query popularity
    (higher → a hotter head, a cache-friendlier stream).  ``rate_rps``
    only applies to the open-loop arrivals and is the *aggregate* target
    rate across all workers.
    """

    seed: int = 0
    requests: int = 100
    duration_seconds: float | None = None
    concurrency: int = 4
    arrival: str = "closed"
    rate_rps: float | None = None
    search_weight: float = 0.8
    batch_weight: float = 0.15
    update_weight: float = 0.05
    zipf_skew: float = 1.1
    batch_size: int = 4
    queries_per_document: int = 16
    keywords_per_query: int = 2
    size_bound: int = DEFAULT_SIZE_BOUND

    def validate(self) -> "LoadProfile":
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise EvaluationError(f"seed must be an integer, got {self.seed!r}")
        if self.requests < 1:
            raise EvaluationError(f"requests must be >= 1, got {self.requests}")
        if self.concurrency < 1:
            raise EvaluationError(
                f"concurrency must be >= 1, got {self.concurrency}"
            )
        if self.arrival not in ARRIVALS:
            raise EvaluationError(
                f"unknown arrival process {self.arrival!r}; expected one of {ARRIVALS}"
            )
        if self.arrival != "closed" and (
            self.rate_rps is None or self.rate_rps <= 0
        ):
            raise EvaluationError(
                f"{self.arrival!r} arrivals need a positive rate_rps"
            )
        weights = (self.search_weight, self.batch_weight, self.update_weight)
        if min(weights) < 0 or sum(weights) <= 0:
            raise EvaluationError(
                f"mix weights must be non-negative with a positive sum, got {weights}"
            )
        if self.duration_seconds is not None and self.duration_seconds <= 0:
            raise EvaluationError(
                f"duration_seconds must be positive, got {self.duration_seconds}"
            )
        if self.batch_size < 1 or self.queries_per_document < 1:
            raise EvaluationError("batch_size and queries_per_document must be >= 1")
        return self


#: the scale CI runs on every push: small enough for seconds, mixed
#: enough to exercise search, batch, update and the caches
SMOKE_PROFILE = LoadProfile(seed=7, requests=48, concurrency=3)


@dataclass(frozen=True)
class PlannedRequest:
    """One scheduled request: fire ``payload`` at ``offset`` seconds."""

    index: int
    offset: float
    kind: str
    payload: dict[str, Any]


@dataclass
class RequestPlan:
    """The full, deterministic request sequence for one run."""

    profile: LoadProfile
    document_names: list[str]
    requests: list[PlannedRequest] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.requests)

    def sequence(self) -> list[dict[str, Any]]:
        """The wire payloads in firing order (the determinism witness)."""
        return [planned.payload for planned in self.requests]

    def signature(self) -> str:
        """A canonical digest of the sequence: equal signatures ⇔ equal
        request streams (offsets included)."""
        import hashlib

        canonical = json.dumps(
            [
                [planned.index, round(planned.offset, 9), planned.payload]
                for planned in self.requests
            ],
            sort_keys=True,
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def build_plan(corpus: Any, profile: LoadProfile) -> RequestPlan:
    """Generate the request sequence for ``profile`` over ``corpus``.

    The corpus is only consulted for document names, per-document query
    pools (via the seeded :class:`WorkloadGenerator`) and update bodies —
    the plan is a pure function of ``(corpus contents, profile)``, so a
    client that builds the same corpus as the server plans the exact
    traffic the server will see.
    """
    profile.validate()
    entries = corpus.entries_snapshot()
    if not entries:
        raise EvaluationError("cannot plan load over an empty corpus")
    rng = DatasetRandom(profile.seed)
    names = [entry.name for entry in entries]

    pools: dict[str, list[str]] = {}
    bodies: dict[str, str] = {}
    for entry in entries:
        workload = WorkloadGenerator(entry.system.index, seed=profile.seed).generate(
            query_count=profile.queries_per_document,
            keywords_per_query=profile.keywords_per_query,
            name=f"loadgen-{entry.name}",
        )
        pools[entry.name] = workload.texts()
        bodies[entry.name] = to_xml_string(entry.system.index.tree)

    total_weight = (
        profile.search_weight + profile.batch_weight + profile.update_weight
    )
    search_cut = profile.search_weight / total_weight
    batch_cut = search_cut + profile.batch_weight / total_weight

    plan = RequestPlan(profile=profile, document_names=names)
    offset = 0.0
    for index in range(profile.requests):
        if profile.arrival == "poisson":
            offset += rng.expovariate(profile.rate_rps)
        elif profile.arrival == "fixed":
            offset = index / profile.rate_rps
        document = names[rng.skewed_index(len(names), profile.zipf_skew)]
        pool = pools[document]
        draw = rng.random()
        if draw < search_cut:
            payload = SearchRequest(
                query=pool[rng.skewed_index(len(pool), profile.zipf_skew)],
                document=document,
                size_bound=profile.size_bound,
            ).to_dict()
            kind = "search"
        elif draw < batch_cut:
            queries = tuple(
                pool[rng.skewed_index(len(pool), profile.zipf_skew)]
                for _ in range(min(profile.batch_size, len(pool)))
            )
            payload = BatchRequest(
                queries=queries, size_bound=profile.size_bound
            ).to_dict()
            kind = "batch"
        else:
            # Text-identical re-registration: real update-path work
            # (journalling, cache invalidation) without changing the
            # answers concurrent reads observe.
            payload = UpdateRequest(document=document, xml=bodies[document]).to_dict()
            kind = "update"
        plan.requests.append(
            PlannedRequest(index=index, offset=offset, kind=kind, payload=payload)
        )
    return plan


# ---------------------------------------------------------------------- #
# layer 2: drive + measure
# ---------------------------------------------------------------------- #
@dataclass
class RequestOutcome:
    """What one fired request came back as, client-side."""

    index: int
    kind: str
    seconds: float
    ok: bool
    code: str | None = None  # machine-readable error code, if any


def percentile(samples: Sequence[float], p: float) -> float | None:
    """Nearest-rank percentile; ``None`` over an empty sample."""
    if not samples:
        return None
    ordered = sorted(samples)
    rank = max(1, -(-len(ordered) * p // 100))  # ceil without math import
    return ordered[int(rank) - 1]


@dataclass
class LoadReport:
    """One run's measurements, client- and server-side."""

    profile: LoadProfile
    requests_sent: int
    duration_seconds: float
    latency: dict[str, float | None]
    throughput_rps: float
    errors: int
    shed: int
    error_rate: float
    shed_rate: float
    cache_hit_rate: float | None
    by_kind: dict[str, int]
    outcomes: list[RequestOutcome] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.profile.seed,
            "requests_sent": self.requests_sent,
            "duration_seconds": self.duration_seconds,
            "latency": dict(self.latency),
            "throughput_rps": self.throughput_rps,
            "errors": self.errors,
            "shed": self.shed,
            "error_rate": self.error_rate,
            "shed_rate": self.shed_rate,
            "cache_hit_rate": self.cache_hit_rate,
            "by_kind": dict(self.by_kind),
        }


def _cache_totals(stats: dict[str, Any]) -> tuple[float, float]:
    """(hits, lookups) summed over every document's query+snippet cache."""
    hits = 0.0
    lookups = 0.0
    caches = stats.get("caches")
    if not isinstance(caches, dict):
        return hits, lookups
    for per_document in caches.values():
        if not isinstance(per_document, dict):
            continue
        for cache in per_document.values():
            if isinstance(cache, dict):
                hits += float(cache.get("hits", 0))
                lookups += float(cache.get("hits", 0)) + float(
                    cache.get("misses", 0)
                )
    return hits, lookups


def _shed_count(stats: dict[str, Any]) -> float:
    admission = stats.get("admission")
    if isinstance(admission, dict):
        return float(admission.get("rejected", 0))
    return 0.0


def run_load(
    plan: RequestPlan,
    host: str = "127.0.0.1",
    port: int = 8080,
    timeout: float = 30.0,
) -> LoadReport:
    """Fire ``plan`` at the server and measure; never raises per-request.

    Each worker owns one keep-alive connection from a
    :class:`~repro.api.client.ClientPool`; requests are assigned round-robin
    by plan index, so the per-worker subsequences are as deterministic as
    the plan itself.  A transport failure counts as an error outcome (code
    ``internal``), exactly as the backend contract shapes it.
    """
    profile = plan.profile
    workers = min(profile.concurrency, max(1, len(plan.requests)))
    scrape = ServiceClient(host=host, port=port, timeout=timeout)
    results: list[list[RequestOutcome]] = [[] for _ in range(workers)]
    barrier = threading.Barrier(workers + 1)

    with ClientPool(host=host, port=port, size=workers, timeout=timeout) as pool:
        stats_before = scrape.stats()

        def work(worker: int) -> None:
            client = pool.client(worker)
            mine = results[worker]
            barrier.wait()
            base = monotonic()
            for planned in plan.requests[worker::workers]:
                now = monotonic() - base
                if (
                    profile.duration_seconds is not None
                    and now >= profile.duration_seconds
                ):
                    break
                if planned.offset > now:
                    time.sleep(planned.offset - now)
                started = perf_counter()
                answer = client.handle_dict(planned.payload)
                seconds = perf_counter() - started
                code = (
                    answer.get("code")
                    if isinstance(answer, dict) and answer.get("kind") == "error"
                    else None
                )
                mine.append(
                    RequestOutcome(
                        index=planned.index,
                        kind=planned.kind,
                        seconds=seconds,
                        ok=code is None,
                        code=code,
                    )
                )

        threads = [
            threading.Thread(target=work, args=(worker,), name=f"loadgen-{worker}")
            for worker in range(workers)
        ]
        for thread in threads:
            thread.start()
        barrier.wait()
        started = perf_counter()
        for thread in threads:
            thread.join()
        duration = perf_counter() - started
        stats_after = scrape.stats()
    scrape.close()

    outcomes = sorted(
        (outcome for bucket in results for outcome in bucket),
        key=lambda outcome: outcome.index,
    )
    sent = len(outcomes)
    latencies = [outcome.seconds for outcome in outcomes]
    shed = sum(1 for outcome in outcomes if outcome.code == "overloaded")
    errors = sum(1 for outcome in outcomes if not outcome.ok) - shed
    by_kind: dict[str, int] = {}
    for outcome in outcomes:
        by_kind[outcome.kind] = by_kind.get(outcome.kind, 0) + 1

    hits_before, lookups_before = _cache_totals(stats_before)
    hits_after, lookups_after = _cache_totals(stats_after)
    lookups_delta = lookups_after - lookups_before
    cache_hit_rate = (
        (hits_after - hits_before) / lookups_delta if lookups_delta > 0 else None
    )
    # Server-side shed is authoritative when admission control is on: a
    # rejected request may also surface client-side as "overloaded", but
    # the delta counts rejections the client timed out on as well.
    server_shed = _shed_count(stats_after) - _shed_count(stats_before)
    shed = max(shed, int(server_shed))

    return LoadReport(
        profile=profile,
        requests_sent=sent,
        duration_seconds=duration,
        latency={
            f"p{p}": percentile(latencies, p) for p in PERCENTILES
        },
        throughput_rps=sent / duration if duration > 0 else 0.0,
        errors=errors,
        shed=shed,
        error_rate=errors / sent if sent else 0.0,
        shed_rate=shed / sent if sent else 0.0,
        cache_hit_rate=cache_hit_rate,
        by_kind=by_kind,
        outcomes=outcomes,
    )


def report_rows(report: LoadReport, op: str = "loadgen_mixed") -> list[dict[str, Any]]:
    """Schema-v2 rows for ``benchmarks/reporting.record_benchmark``.

    ``seconds`` carries the whole run's wall time (the v1-compatible
    field); the workload fields carry the measurements this harness
    exists for.
    """
    return [
        {
            "op": op,
            "seconds": report.duration_seconds,
            "requests": report.requests_sent,
            "latency": dict(report.latency),
            "throughput_rps": report.throughput_rps,
            "error_rate": report.error_rate,
            "shed_rate": report.shed_rate,
            "cache_hit_rate": report.cache_hit_rate,
        }
    ]


def parse_mix(text: str) -> dict[str, float]:
    """``"search=0.8,batch=0.15,update=0.05"`` → weight per request kind.

    Omitted kinds weigh 0; unknown kinds and unparsable weights are
    errors.  At least one weight must be positive.
    """
    weights = {kind: 0.0 for kind in REQUEST_KINDS}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        kind, separator, value = part.partition("=")
        kind = kind.strip()
        if not separator or kind not in REQUEST_KINDS:
            raise EvaluationError(
                f"bad mix component {part!r}: expected kind=weight with kind "
                f"in {REQUEST_KINDS}"
            )
        try:
            weights[kind] = float(value)
        except ValueError as exc:
            raise EvaluationError(f"bad mix weight in {part!r}: {exc}") from exc
    if min(weights.values()) < 0 or sum(weights.values()) <= 0:
        raise EvaluationError(
            f"mix weights must be non-negative with a positive sum, got {weights}"
        )
    return weights


#: mirror of ``benchmarks/reporting.REPORT_SCHEMA_VERSION`` — the CLI
#: writes the same envelope without importing the benchmarks tree (which
#: is not an installed package); ``tests/eval/test_loadgen.py`` pins the
#: two constants together
REPORT_SCHEMA_VERSION = 2


def write_report_file(
    rows: list[dict[str, Any]], path: str, benchmark: str = "loadgen"
) -> str:
    """Write rows as a ``BENCH_<name>.json``-shaped report to ``path``.

    Same envelope as ``benchmarks/reporting.record_benchmark`` (schema
    v2), so a report written by ``repro.cli loadgen --report`` and one
    written by the CI benchmark are interchangeable to consumers.
    """
    report = {
        "schema_version": REPORT_SCHEMA_VERSION,
        "benchmark": benchmark,
        "results": sorted(rows, key=lambda row: str(row.get("op", ""))),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


# ---------------------------------------------------------------------- #
# layer 3: the ablation matrix
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class FlagValue:
    """One setting of a serving flag: a label and the serve argv for it."""

    label: str
    argv: tuple[str, ...] = ()


@dataclass(frozen=True)
class AblationFlag:
    """A serving feature the matrix flips one at a time."""

    name: str
    baseline: FlagValue
    variants: tuple[FlagValue, ...]


@dataclass(frozen=True)
class AblationConfig:
    """One server configuration: every flag's label plus the argv tail."""

    name: str
    values: tuple[tuple[str, str], ...]  # ((flag, label), …) in flag order
    argv: tuple[str, ...]


def ablation_matrix(flags: Sequence[AblationFlag]) -> list[AblationConfig]:
    """Baseline plus one configuration per (flag, variant) flip.

    The enumeration is exhaustive (every variant of every flag appears
    exactly once), deduplicated (a variant labelled like its baseline is
    rejected, and duplicate flag names or variant labels are errors, not
    silent merges) and deterministic (flags and variants in given order).
    """
    seen_flags: set[str] = set()
    for flag in flags:
        if flag.name in seen_flags:
            raise EvaluationError(f"duplicate ablation flag {flag.name!r}")
        seen_flags.add(flag.name)
        labels = {flag.baseline.label}
        for variant in flag.variants:
            if variant.label in labels:
                raise EvaluationError(
                    f"flag {flag.name!r}: variant label {variant.label!r} "
                    f"duplicates the baseline or another variant"
                )
            labels.add(variant.label)
    if not flags:
        raise EvaluationError("an ablation needs at least one flag")

    def config(flipped: AblationFlag | None, variant: FlagValue | None) -> AblationConfig:
        values: list[tuple[str, str]] = []
        argv: list[str] = []
        for flag in flags:
            value = variant if (flipped is flag and variant is not None) else flag.baseline
            values.append((flag.name, value.label))
            argv.extend(value.argv)
        name = (
            "baseline"
            if flipped is None
            else f"{flipped.name}={variant.label}"
        )
        return AblationConfig(name=name, values=tuple(values), argv=tuple(argv))

    matrix = [config(None, None)]
    for flag in flags:
        for variant in flag.variants:
            matrix.append(config(flag, variant))
    return matrix


def default_flags() -> list[AblationFlag]:
    """The serving flags every later perf PR gets judged against."""
    return [
        AblationFlag(
            name="caches",
            baseline=FlagValue("on"),
            variants=(FlagValue("off", ("--cache-size", "0")),),
        ),
        AblationFlag(
            name="max-in-flight",
            baseline=FlagValue("unlimited"),
            variants=(
                FlagValue("2", ("--max-in-flight", "2")),
                FlagValue("8", ("--max-in-flight", "8")),
            ),
        ),
        AblationFlag(
            name="deadline",
            baseline=FlagValue("none"),
            variants=(FlagValue("2s", ("--deadline", "2.0")),),
        ),
    ]


def smoke_flags() -> list[AblationFlag]:
    """The ≥4-configuration matrix CI exercises: caches on/off × two
    admission limits (baseline + 3 flips)."""
    return [
        AblationFlag(
            name="caches",
            baseline=FlagValue("on"),
            variants=(FlagValue("off", ("--cache-size", "0")),),
        ),
        AblationFlag(
            name="max-in-flight",
            baseline=FlagValue("unlimited"),
            variants=(
                FlagValue("2", ("--max-in-flight", "2")),
                FlagValue("8", ("--max-in-flight", "8")),
            ),
        ),
    ]


@dataclass
class AblationOutcome:
    """One configuration's spawned run."""

    config: AblationConfig
    report: LoadReport


def run_ablation(
    corpus: Any,
    serve_args: Sequence[str],
    configs: Sequence[AblationConfig],
    profile: LoadProfile,
    host: str = "127.0.0.1",
    workers: int = 4,
    timeout: float = 60.0,
) -> tuple[list[AblationOutcome], ExperimentTable]:
    """Measure every configuration against its own spawned server.

    ``corpus`` is the client-side twin of what ``serve_args`` makes the
    server load — it only feeds :func:`build_plan`, so every configuration
    is hit with the *same* request sequence and the comparison isolates
    the flipped flag.  The returned table is ranked by achieved
    throughput, baseline marked.
    """
    from repro.cluster.remote import spawn_server

    plan = build_plan(corpus, profile)
    outcomes: list[AblationOutcome] = []
    for config in configs:
        process = spawn_server(
            [*serve_args, *config.argv],
            label=f"loadgen[{config.name}]",
            host=host,
            workers=workers,
            timeout=timeout,
        )
        try:
            report = run_load(plan, host=process.host, port=process.port)
        finally:
            process.terminate()
        outcomes.append(AblationOutcome(config=config, report=report))

    table = ExperimentTable(
        experiment_id="LG1",
        title=f"serving-flag ablation under load (seed {profile.seed}, "
        f"{profile.requests} requests × {len(configs)} configurations)",
        columns=[
            "config",
            "throughput_rps",
            "p50_ms",
            "p95_ms",
            "p99_ms",
            "error_rate",
            "shed_rate",
            "cache_hit_rate",
        ],
    )

    def _ms(value: float | None) -> float:
        return round(value * 1000.0, 3) if value is not None else -1.0

    ranked = sorted(
        outcomes, key=lambda outcome: -outcome.report.throughput_rps
    )
    for outcome in ranked:
        report = outcome.report
        table.add_row(
            config=outcome.config.name,
            throughput_rps=round(report.throughput_rps, 2),
            p50_ms=_ms(report.latency.get("p50")),
            p95_ms=_ms(report.latency.get("p95")),
            p99_ms=_ms(report.latency.get("p99")),
            error_rate=round(report.error_rate, 4),
            shed_rate=round(report.shed_rate, 4),
            cache_hit_rate=(
                round(report.cache_hit_rate, 4)
                if report.cache_hit_rate is not None
                else -1.0
            ),
        )
    table.notes = (
        "ranked by achieved throughput; every configuration replayed the "
        "identical seeded request plan; -1.0 marks a metric with no sample"
    )
    return outcomes, table
