"""Ablation experiments (A1, A2).

A1 — dominance score vs. raw occurrence counts when ranking features into
     the IList (the design choice argued in §2.3).  Measured by how much
     dominance "mass" the resulting snippets capture and whether the
     planted normalised-frequency features survive.

A2 — instance-selection strategy (the design choice of §2.4): the paper's
     greedy-closest choice vs. taking the first instance in document order
     vs. a random instance.  Measured by IList items covered and snippet
     size at a fixed bound.
"""

from __future__ import annotations

from repro.datasets.movies import MoviesConfig, generate_movies_document
from repro.datasets.retail import RetailConfig, generate_retail_document
from repro.eval.metrics import evaluate_snippet, mean
from repro.eval.reporting import ExperimentTable
from repro.eval.workload import WorkloadGenerator
from repro.index.builder import IndexBuilder
from repro.search.engine import SearchEngine
from repro.snippet.baselines import RawFrequencySnippetGenerator
from repro.snippet.generator import SnippetGenerator
from repro.snippet.instance_selector import SelectionStrategy


def _study_indexes(seed: int):
    retail = generate_retail_document(
        RetailConfig(retailers=6, stores_per_retailer=4, clothes_per_store=6, seed=seed),
        name="retail-ablation",
    )
    movies = generate_movies_document(MoviesConfig(movies=30, seed=seed), name="movies-ablation")
    return {"retail": IndexBuilder().build(retail), "movies": IndexBuilder().build(movies)}


# ---------------------------------------------------------------------- #
# A1 — dominance score vs. raw frequency
# ---------------------------------------------------------------------- #
def run_ablation_dominance(
    size_bound: int = 10, queries_per_dataset: int = 6, seed: int = 61
) -> ExperimentTable:
    """A1: dominance-ranked IList vs. raw-frequency-ranked IList."""
    table = ExperimentTable(
        experiment_id="A1",
        title=f"Feature ranking ablation (bound={size_bound}): dominance score vs. raw frequency",
        columns=[
            "dataset",
            "ranking",
            "mean_dominance_mass_coverage",
            "mean_dominant_feature_coverage",
            "mean_ilist_coverage",
        ],
        notes="dominance mass = sum of DS of captured dominant features / total DS",
    )
    for dataset, index in _study_indexes(seed).items():
        engine = SearchEngine(index)
        extract_generator = SnippetGenerator(index.analyzer)
        raw_generator = RawFrequencySnippetGenerator(index.analyzer)
        workload = WorkloadGenerator(index, seed=seed).generate(
            query_count=queries_per_dataset, keywords_per_query=2
        )
        per_method = {"dominance_score": [], "raw_frequency": []}
        for query in workload:
            results = engine.search(query)
            for result in results:
                generated = extract_generator.generate(result, size_bound=size_bound, query=query)
                per_method["dominance_score"].append(evaluate_snippet(generated))
                # The raw-frequency pipeline builds its own IList, but quality
                # is always judged against the *dominance-based* ground truth
                # IList, so the two rankings are scored on the same scale.
                raw_generated = raw_generator.generate(result, size_bound, query=query)
                reference = extract_generator.generate(result, size_bound=size_bound, query=query)
                reference_ilist = reference.ilist
                captured = [
                    item
                    for item in reference_ilist.coverable_items()
                    if any(raw_generated.snippet.contains_label(label) for label in item.instances)
                ]
                raw_generated.snippet.covered_items = captured
                raw_generated.ilist = reference_ilist
                per_method["raw_frequency"].append(evaluate_snippet(raw_generated))
        for ranking, qualities in per_method.items():
            table.add_row(
                dataset=dataset,
                ranking=ranking,
                mean_dominance_mass_coverage=mean([q.dominance_mass_coverage for q in qualities]),
                mean_dominant_feature_coverage=mean([q.dominant_feature_coverage for q in qualities]),
                mean_ilist_coverage=mean([q.ilist_coverage for q in qualities]),
            )
    return table


# ---------------------------------------------------------------------- #
# A2 — instance selection strategy
# ---------------------------------------------------------------------- #
def run_ablation_selector(
    size_bound: int = 10, queries_per_dataset: int = 6, seed: int = 67
) -> ExperimentTable:
    """A2: greedy-closest vs. first-instance vs. random-instance selection."""
    table = ExperimentTable(
        experiment_id="A2",
        title=f"Instance selection ablation (bound={size_bound})",
        columns=["dataset", "strategy", "mean_items_covered", "mean_ilist_coverage", "mean_snippet_edges"],
    )
    strategies = (
        SelectionStrategy.GREEDY_CLOSEST,
        SelectionStrategy.FIRST_INSTANCE,
        SelectionStrategy.RANDOM_INSTANCE,
    )
    for dataset, index in _study_indexes(seed).items():
        engine = SearchEngine(index)
        workload = WorkloadGenerator(index, seed=seed).generate(
            query_count=queries_per_dataset, keywords_per_query=2
        )
        for strategy in strategies:
            generator = SnippetGenerator(index.analyzer, strategy=strategy)
            covered: list[float] = []
            coverage: list[float] = []
            edges: list[float] = []
            for query in workload:
                results = engine.search(query)
                for result in results:
                    generated = generator.generate(result, size_bound=size_bound, query=query)
                    quality = evaluate_snippet(generated)
                    covered.append(float(generated.covered_items))
                    coverage.append(quality.ilist_coverage)
                    edges.append(float(generated.snippet.size_edges))
            table.add_row(
                dataset=dataset,
                strategy=strategy.value,
                mean_items_covered=mean(covered),
                mean_ilist_coverage=mean(coverage),
                mean_snippet_edges=mean(edges),
            )
    return table


# ---------------------------------------------------------------------- #
# A3 — result-set-aware distinct snippets
# ---------------------------------------------------------------------- #
def _ambiguous_store_catalogue(stores: int, seed: int):
    """A catalogue of near-identical stores (the hard case for distinctness).

    Every store shares the same state, city and dominant clothes profile
    and has no unique key attribute; each differs only in one minority
    clothes item.  The per-result pipeline therefore produces identical
    snippets at tight bounds — exactly the situation the result-set-aware
    post-processing is meant to fix.
    """
    from repro.datasets.base import CLOTHES_CATEGORIES
    from repro.xmltree.builder import TreeBuilder

    builder = TreeBuilder("stores", name=f"ambiguous-{stores}")
    for index in range(stores):
        with builder.element("store"):
            builder.add_value("state", "Texas")
            builder.add_value("city", "Houston")
            with builder.element("merchandises"):
                for _ in range(3):
                    with builder.element("clothes"):
                        builder.add_value("category", "jeans")
                        builder.add_value("fitting", "man")
                with builder.element("clothes"):
                    builder.add_value("category", CLOTHES_CATEGORIES[index % len(CLOTHES_CATEGORIES)])
                    builder.add_value("fitting", "woman")
    return IndexBuilder().build(builder.build())


def run_ablation_distinct(
    bounds: tuple[int, ...] = (5, 6, 8, 10),
    stores: int = 6,
    seed: int = 71,
) -> ExperimentTable:
    """A3: per-result pipeline vs. result-set-aware distinct post-processing.

    Measures pairwise snippet distinguishability (the abstract's
    "differentiate them from one another" goal) on an *ambiguous* catalogue
    of near-identical stores, with and without the
    :class:`~repro.snippet.distinct.DistinctSnippetGenerator` clash
    resolution, across size bounds.  On such catalogues the per-result
    pipeline produces identical snippets; the post-processing spends part
    of the same budget on features that tell the results apart.
    """
    from repro.eval.metrics import distinguishability
    from repro.snippet.distinct import DistinctSnippetGenerator

    index = _ambiguous_store_catalogue(stores=stores, seed=seed)
    engine = SearchEngine(index)
    results = engine.search("store texas jeans")
    per_result = SnippetGenerator(index.analyzer)
    distinct = DistinctSnippetGenerator(index.analyzer)

    table = ExperimentTable(
        experiment_id="A3",
        title=f"Distinct-snippet post-processing on an ambiguous catalogue ({len(results)} near-identical results)",
        columns=["size_bound", "per_result_distinguishability", "distinct_distinguishability", "max_edges"],
        notes="distinguishability = fraction of snippet pairs with different visible content",
    )
    for bound in bounds:
        base_batch = per_result.generate_all(results, size_bound=bound)
        distinct_batch = distinct.generate_all(results, size_bound=bound)
        table.add_row(
            size_bound=bound,
            per_result_distinguishability=distinguishability(list(base_batch)),
            distinct_distinguishability=distinguishability(list(distinct_batch)),
            max_edges=max(g.snippet.size_edges for g in distinct_batch),
        )
    return table
