"""Simulated user study (E6).

The companion evaluation ran a user study: users judge result relevance
from snippets alone.  Humans are not available offline, so the study is
simulated with a deterministic "user model" (documented as a substitution
in DESIGN.md):

* a *target* result is chosen per query and summarised into the facts a
  user would remember: its key value and its top ground-truth dominant
  features (computed from the **full** result — information the user is
  assumed to want, independent of any snippet method);
* the simulated user inspects the snippets of all results of the query and
  selects the result whose snippet content best matches those facts (a key
  match is decisive, feature overlap breaks ties, rank breaks remaining
  ties);
* metrics: **identification accuracy** (chose the target) and **inspection
  effort** (position of the target when results are re-ordered by
  snippet-match score, i.e. how many full results the user must open).

Methods compared: eXtract, the first-K-edges baseline, the random-subtree
baseline and the flat text-window baseline (the "Google Desktop" stand-in).
A snippet method wins when it surfaces exactly the distinguishing facts —
which is the paper's core claim.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.base import DatasetRandom
from repro.datasets.movies import MoviesConfig, generate_movies_document
from repro.datasets.retail import RetailConfig, generate_retail_document
from repro.eval.metrics import mean, snippet_signature
from repro.eval.reporting import ExperimentTable
from repro.eval.workload import WorkloadGenerator
from repro.index.builder import DocumentIndex, IndexBuilder
from repro.search.engine import SearchEngine
from repro.search.results import QueryResult
from repro.snippet.baselines import (
    FirstEdgesSnippetGenerator,
    RandomSubtreeSnippetGenerator,
    TextWindowSnippetGenerator,
)
from repro.snippet.dominant import DominantFeatureIdentifier
from repro.snippet.generator import SnippetGenerator
from repro.snippet.return_entity import ReturnEntityIdentifier
from repro.snippet.result_key import QueryResultKeyIdentifier
from repro.utils.text import normalize_value


@dataclass
class UserKnowledge:
    """What the simulated user knows about the result they want."""

    key_value: str | None
    feature_facts: set[str]  # "tag=value" strings of top dominant features

    def is_empty(self) -> bool:
        return self.key_value is None and not self.feature_facts


def derive_user_knowledge(
    index: DocumentIndex, result: QueryResult, query, top_features: int = 3
) -> UserKnowledge:
    """Ground-truth facts about a result, from the full result tree."""
    decision = ReturnEntityIdentifier(index.analyzer).identify(query, result)
    keys = QueryResultKeyIdentifier(index.analyzer).identify(result, decision)
    key_value = normalize_value(keys[0].value) if keys else None
    dominant = DominantFeatureIdentifier(index.analyzer).identify(result)
    facts = {
        f"{scored.feature.attribute}={scored.feature.value}" for scored in dominant[:top_features]
    }
    return UserKnowledge(key_value=key_value, feature_facts=facts)


def _tree_snippet_facts(generated) -> tuple[set[str], str]:
    """(tag=value facts, flattened text) of a tree-based snippet."""
    facts = set()
    text_parts = []
    for node in generated.snippet.selected_nodes():
        if node.has_text_value:
            value = normalize_value(node.text or "")
            facts.add(f"{node.tag}={value}")
            text_parts.append(value)
    return facts, " ".join(text_parts)


def _match_score(knowledge: UserKnowledge, facts: set[str], flat_text: str) -> float:
    """How strongly a snippet's content matches the user's knowledge."""
    score = 0.0
    if knowledge.key_value and knowledge.key_value in flat_text:
        score += 10.0
    if knowledge.feature_facts:
        overlap = len(knowledge.feature_facts & facts)
        score += overlap / len(knowledge.feature_facts)
    return score


@dataclass
class StudyOutcome:
    """Per-method aggregate of the simulated study."""

    method: str
    accuracy: float
    mean_effort: float
    trials: int


def run_user_study(
    size_bound: int = 8,
    queries_per_dataset: int = 8,
    seed: int = 53,
) -> ExperimentTable:
    """E6: simulated user study across the retail and movies datasets."""
    rng = DatasetRandom(seed)
    datasets = {
        "retail": generate_retail_document(
            RetailConfig(retailers=8, stores_per_retailer=4, clothes_per_store=5, seed=seed),
            name="retail-study",
        ),
        "movies": generate_movies_document(MoviesConfig(movies=36, seed=seed), name="movies-study"),
    }

    methods = ("extract", "first_edges", "random", "text_window")
    per_method_correct: dict[str, list[float]] = {method: [] for method in methods}
    per_method_effort: dict[str, list[float]] = {method: [] for method in methods}

    for tree in datasets.values():
        index = IndexBuilder().build(tree)
        engine = SearchEngine(index)
        extract_generator = SnippetGenerator(index.analyzer)
        first_edges = FirstEdgesSnippetGenerator(index.analyzer)
        random_gen = RandomSubtreeSnippetGenerator(index.analyzer, seed=seed)
        text_gen = TextWindowSnippetGenerator()

        workload = WorkloadGenerator(index, seed=seed).generate(
            query_count=queries_per_dataset, keywords_per_query=2, name="study"
        )
        for query in workload:
            results = engine.search(query)
            if len(results) < 2:
                continue
            target = results[rng.randrange(len(results))]
            knowledge = derive_user_knowledge(index, target, query)
            if knowledge.is_empty():
                continue

            snippet_sets = {
                "extract": [extract_generator.generate(r, size_bound, query=query) for r in results],
                "first_edges": [first_edges.generate(r, size_bound, query=query) for r in results],
                "random": [random_gen.generate(r, size_bound, query=query) for r in results],
            }
            for method, generated_list in snippet_sets.items():
                scored = []
                for rank, generated in enumerate(generated_list):
                    facts, flat = _tree_snippet_facts(generated)
                    scored.append((-_match_score(knowledge, facts, flat), rank, generated.result))
                scored.sort()
                chosen = scored[0][2]
                per_method_correct[method].append(1.0 if chosen is target else 0.0)
                effort = next(
                    position + 1 for position, entry in enumerate(scored) if entry[2] is target
                )
                per_method_effort[method].append(float(effort))

            # text-window baseline: content is flat text only
            scored_text = []
            for rank, result in enumerate(results):
                snippet = text_gen.generate(result, size_bound, query=query)
                flat = normalize_value(snippet.text)
                scored_text.append((-_match_score(knowledge, set(), flat), rank, result))
            scored_text.sort()
            per_method_correct["text_window"].append(1.0 if scored_text[0][2] is target else 0.0)
            effort = next(
                position + 1 for position, entry in enumerate(scored_text) if entry[2] is target
            )
            per_method_effort["text_window"].append(float(effort))

    table = ExperimentTable(
        experiment_id="E6",
        title=f"Simulated user study (bound={size_bound}): identification accuracy and effort",
        columns=["method", "accuracy", "mean_results_inspected", "trials"],
        notes="user model: key match decisive, dominant-feature overlap breaks ties",
    )
    for method in methods:
        table.add_row(
            method=method,
            accuracy=mean(per_method_correct[method]),
            mean_results_inspected=mean(per_method_effort[method]),
            trials=len(per_method_correct[method]),
        )
    return table


def run_distinguishability_study(
    size_bound: int = 8, seed: int = 59, queries: int = 6
) -> ExperimentTable:
    """Supplementary to E6: pairwise snippet distinguishability per method."""
    from repro.eval.metrics import distinguishability

    tree = generate_retail_document(
        RetailConfig(retailers=8, stores_per_retailer=4, clothes_per_store=5, seed=seed),
        name="retail-distinguish",
    )
    index = IndexBuilder().build(tree)
    engine = SearchEngine(index)
    generators = {
        "extract": SnippetGenerator(index.analyzer),
        "first_edges": FirstEdgesSnippetGenerator(index.analyzer),
        "random": RandomSubtreeSnippetGenerator(index.analyzer, seed=seed),
    }
    workload = WorkloadGenerator(index, seed=seed).generate(query_count=queries, keywords_per_query=2)

    table = ExperimentTable(
        experiment_id="E6b",
        title=f"Snippet distinguishability per method (bound={size_bound})",
        columns=["method", "mean_distinguishability"],
    )
    for method, generator in generators.items():
        values = []
        for query in workload:
            results = engine.search(query)
            if len(results) < 2:
                continue
            generated = [generator.generate(result, size_bound, query=query) for result in results]
            values.append(distinguishability(generated))
        table.add_row(method=method, mean_distinguishability=mean(values))
    return table
