"""Quality experiments (E4, E5).

E4 — how close is the greedy instance selector to the NP-hard optimum?
     We compare the number of IList items covered (the §2.4 objective) by
     the greedy selector, the exact branch-and-bound selector and the
     baselines, over a sweep of size bounds on result trees small enough
     for the exact search.

E5 — does the dominance score identify the *right* features?  We plant
     ground-truth dominant features in synthetic results (features that are
     dominant within their type but rare in absolute count, exactly the
     "Houston vs. children" situation of §2.3) and measure precision/recall
     of the dominance ranking against a raw-frequency ranking.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.base import DatasetRandom
from repro.datasets.retail import RetailConfig, generate_retail_document
from repro.eval.metrics import mean
from repro.eval.reporting import ExperimentTable
from repro.eval.workload import WorkloadGenerator
from repro.index.builder import IndexBuilder
from repro.search.engine import SearchEngine
from repro.snippet.baselines import FirstEdgesSnippetGenerator, RandomSubtreeSnippetGenerator
from repro.snippet.dominant import DominantFeatureIdentifier
from repro.snippet.features import extract_features
from repro.snippet.generator import SnippetGenerator
from repro.snippet.optimal import OptimalInstanceSelector
from repro.xmltree.builder import TreeBuilder


# ---------------------------------------------------------------------- #
# E4 — greedy vs. optimal vs. baselines
# ---------------------------------------------------------------------- #
def run_greedy_vs_optimal(
    bounds: tuple[int, ...] = (4, 6, 8, 10, 12, 16),
    queries: tuple[str, ...] = ("store texas", "retailer apparel"),
    seed: int = 29,
) -> ExperimentTable:
    """E4: IList items covered by greedy / optimal / baselines per bound."""
    config = RetailConfig(retailers=3, stores_per_retailer=3, clothes_per_store=3, seed=seed)
    index = IndexBuilder().build(generate_retail_document(config, name="retail-e4"))
    engine = SearchEngine(index)
    generator = SnippetGenerator(index.analyzer)
    optimal = OptimalInstanceSelector()
    first_edges = FirstEdgesSnippetGenerator(index.analyzer)
    random_baseline = RandomSubtreeSnippetGenerator(index.analyzer, seed=seed)

    table = ExperimentTable(
        experiment_id="E4",
        title="IList items covered: greedy vs. optimal vs. baselines",
        columns=[
            "size_bound",
            "greedy_items",
            "optimal_items",
            "greedy_over_optimal",
            "first_edges_items",
            "random_items",
        ],
        notes="mean over all results of queries: " + "; ".join(queries),
    )

    results = []
    for query in queries:
        results.extend(list(engine.search(query)))

    for bound in bounds:
        greedy_counts: list[float] = []
        optimal_counts: list[float] = []
        first_counts: list[float] = []
        random_counts: list[float] = []
        for result in results:
            generated = generator.generate(result, size_bound=bound)
            greedy_counts.append(float(generated.covered_items))
            optimal_snippet = optimal.select(result, generated.ilist, bound)
            optimal_counts.append(float(len(optimal_snippet.covered_items)))
            first_counts.append(float(first_edges.generate(result, bound).covered_items))
            random_counts.append(float(random_baseline.generate(result, bound).covered_items))
        greedy_mean = mean(greedy_counts)
        optimal_mean = mean(optimal_counts)
        table.add_row(
            size_bound=bound,
            greedy_items=greedy_mean,
            optimal_items=optimal_mean,
            greedy_over_optimal=(greedy_mean / optimal_mean) if optimal_mean else 1.0,
            first_edges_items=mean(first_counts),
            random_items=mean(random_counts),
        )
    return table


# ---------------------------------------------------------------------- #
# E5 — feature identification quality (dominance score vs. raw counts)
# ---------------------------------------------------------------------- #
@dataclass
class PlantedResult:
    """A synthetic query result with known ground-truth dominant features."""

    index: object  # DocumentIndex
    result: object  # QueryResult
    dominant_values: set[str]
    non_dominant_values: set[str]


def build_planted_result(
    seed: int = 0,
    stores: int = 12,
    clothes_per_store: int = 24,
    dominant_city_share: float = 0.6,
) -> PlantedResult:
    """Build a result that recreates the §2.3 motivating situation.

    Two feature types are planted:

    * ``(store, city)`` — few occurrences overall, but one city holds a
      ``dominant_city_share`` of them → *dominant by normalised frequency*
      while rare in absolute count;
    * ``(clothes, fitting)`` — a thousand-ish occurrences spread almost
      uniformly over its three values → every value is frequent in absolute
      count but *not* dominant.

    Ground truth: the planted city (and any value whose dominance score
    exceeds 1 by construction) is dominant; the near-uniform fitting values
    are not.  A raw-frequency ranking inverts this, which is exactly the
    failure mode §2.3 argues against.
    """
    rng = DatasetRandom(seed)
    cities = ["Houston", "Austin", "Dallas", "El Paso", "Laredo"]
    fittings = ["man", "woman", "children"]
    dominant_city = cities[0]

    builder = TreeBuilder("commerce", name=f"planted-{seed}")
    with builder.element("retailer"):
        builder.add_value("name", f"Planted Retailer {seed}")
        builder.add_value("product", "apparel")
        for store_index in range(stores):
            if store_index < int(round(stores * dominant_city_share)):
                city = dominant_city
            else:
                city = cities[1 + store_index % (len(cities) - 1)]
            with builder.element("store"):
                builder.add_value("name", f"Store {seed}-{store_index}")
                builder.add_value("state", "Texas")
                builder.add_value("city", city)
                with builder.element("merchandises"):
                    for clothes_index in range(clothes_per_store):
                        with builder.element("clothes"):
                            builder.add_value("fitting", fittings[clothes_index % len(fittings)])
                            builder.add_value(
                                "category", rng.pick(["jeans", "shirts", "outwear", "suit"])
                            )
    # a second retailer so <retailer> is a *-node
    with builder.element("retailer"):
        builder.add_value("name", f"Decoy Retailer {seed}")
        builder.add_value("product", "furniture")
        with builder.element("store"):
            builder.add_value("name", f"Decoy Store {seed}")
            builder.add_value("state", "Ohio")
            builder.add_value("city", "Columbus")
            with builder.element("merchandises"):
                with builder.element("clothes"):
                    builder.add_value("fitting", "man")
                    builder.add_value("category", "socks")

    tree = builder.build()
    index = IndexBuilder().build(tree)
    results = SearchEngine(index).search("retailer apparel")
    target = results[0]

    statistics = extract_features(index.analyzer, target)
    dominant_values = {
        feature.value for feature in statistics.features() if statistics.is_dominant(feature)
    }
    non_dominant = {
        feature.value for feature in statistics.features() if not statistics.is_dominant(feature)
    }
    return PlantedResult(
        index=index, result=target, dominant_values=dominant_values, non_dominant_values=non_dominant
    )


def run_feature_quality(
    seeds: tuple[int, ...] = (0, 1, 2, 3, 4),
    top_k: int = 3,
) -> ExperimentTable:
    """E5: precision@k of dominance ranking vs. raw-frequency ranking.

    Ground truth per planted result: the city planted to dominate its type.
    A ranking is correct when that planted value appears in its top-k
    features; the dominance-score ranking should, the raw-count ranking
    generally ranks the high-volume-but-uniform fitting values first.
    """
    table = ExperimentTable(
        experiment_id="E5",
        title=f"Planted dominant feature found in top-{top_k}: dominance score vs. raw frequency",
        columns=["seed", "dominance_hit", "raw_frequency_hit", "planted_city_raw_rank", "planted_city_ds_rank"],
        notes="planted city is dominant by normalised frequency but rare in absolute count",
    )
    for seed in seeds:
        planted = build_planted_result(seed=seed)
        identifier = DominantFeatureIdentifier(planted.index.analyzer)  # type: ignore[attr-defined]
        scored = identifier.score_all(planted.result)  # type: ignore[arg-type]
        # exclude trivially-dominant single-value types (state, name, product)
        # so both rankings compete on the same contested features
        contested = [item for item in scored if item.domain_size > 1]
        by_dominance = sorted(contested, key=lambda item: -item.score)
        by_raw = sorted(contested, key=lambda item: -item.value_count)

        planted_city = "houston"
        ds_rank = next(
            (rank + 1 for rank, item in enumerate(by_dominance) if item.feature.value == planted_city),
            len(by_dominance) + 1,
        )
        raw_rank = next(
            (rank + 1 for rank, item in enumerate(by_raw) if item.feature.value == planted_city),
            len(by_raw) + 1,
        )
        table.add_row(
            seed=seed,
            dominance_hit=int(ds_rank <= top_k),
            raw_frequency_hit=int(raw_rank <= top_k),
            planted_city_raw_rank=raw_rank,
            planted_city_ds_rank=ds_rank,
        )
    return table


def run_snippet_quality_by_dataset(
    size_bound: int = 10,
    queries_per_dataset: int = 6,
    seed: int = 41,
) -> ExperimentTable:
    """Supplementary: mean quality metrics of eXtract snippets per dataset."""
    from repro.datasets.movies import MoviesConfig, generate_movies_document
    from repro.eval.metrics import evaluate_snippet, distinguishability

    datasets = {
        "retail": generate_retail_document(RetailConfig(retailers=6, seed=seed), name="retail-q"),
        "movies": generate_movies_document(MoviesConfig(movies=30, seed=seed), name="movies-q"),
    }
    table = ExperimentTable(
        experiment_id="E5b",
        title=f"eXtract snippet quality per dataset (bound={size_bound})",
        columns=[
            "dataset",
            "queries",
            "mean_ilist_coverage",
            "mean_keyword_coverage",
            "key_in_snippet_rate",
            "distinguishability",
        ],
    )
    for name, tree in datasets.items():
        index = IndexBuilder().build(tree)
        engine = SearchEngine(index)
        generator = SnippetGenerator(index.analyzer)
        workload = WorkloadGenerator(index, seed=seed).generate(
            query_count=queries_per_dataset, keywords_per_query=2, name=f"{name}-workload"
        )
        coverage: list[float] = []
        keyword_coverage: list[float] = []
        key_rate: list[float] = []
        disting: list[float] = []
        for query in workload:
            results = engine.search(query)
            if results.is_empty:
                continue
            batch = generator.generate_all(results, size_bound=size_bound)
            qualities = [evaluate_snippet(generated) for generated in batch]
            coverage.extend(quality.ilist_coverage for quality in qualities)
            keyword_coverage.extend(quality.keyword_coverage for quality in qualities)
            key_rate.extend(1.0 if quality.has_result_key else 0.0 for quality in qualities)
            disting.append(distinguishability(list(batch)))
        table.add_row(
            dataset=name,
            queries=len(workload),
            mean_ilist_coverage=mean(coverage),
            mean_keyword_coverage=mean(keyword_coverage),
            key_in_snippet_rate=mean(key_rate),
            distinguishability=mean(disting),
        )
    return table
