"""Snippet quality metrics.

The paper's four goals give the metric set:

* **self-containment** — the snippet shows the names of the entities that
  occur in the result (and the return entity in particular),
* **distinguishability** — the snippet contains the key of the query
  result, and snippets of different results differ,
* **representativeness** — the snippet captures the dominant features; we
  measure the share of dominant-feature "mass" (dominance scores) covered,
* **size** — the snippet respects the edge bound (hard constraint) and the
  overall IList coverage it achieves within that bound.

All metrics are computed from a :class:`GeneratedSnippet`, so eXtract and
every tree-producing baseline are measured identically; the text baseline
has a dedicated keyword/key containment measure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.snippet.baselines import TextSnippet
from repro.snippet.generator import GeneratedSnippet
from repro.snippet.ilist import ItemKind
from repro.utils.text import normalize_value


@dataclass
class SnippetQuality:
    """Quality measurements of one snippet."""

    size_edges: int
    size_bound: int
    ilist_coverage: float
    keyword_coverage: float
    entity_name_coverage: float
    has_result_key: bool
    dominant_feature_coverage: float
    dominance_mass_coverage: float

    @property
    def within_bound(self) -> bool:
        return self.size_edges <= self.size_bound

    def as_dict(self) -> dict[str, float]:
        return {
            "size_edges": float(self.size_edges),
            "ilist_coverage": self.ilist_coverage,
            "keyword_coverage": self.keyword_coverage,
            "entity_name_coverage": self.entity_name_coverage,
            "has_result_key": 1.0 if self.has_result_key else 0.0,
            "dominant_feature_coverage": self.dominant_feature_coverage,
            "dominance_mass_coverage": self.dominance_mass_coverage,
        }


def _kind_coverage(generated: GeneratedSnippet, kind: ItemKind) -> tuple[float, int, int]:
    items = [item for item in generated.ilist.items_of_kind(kind) if item.has_instances]
    if not items:
        return 1.0, 0, 0
    covered = sum(1 for item in items if generated.snippet.covers(item.identity))
    return covered / len(items), covered, len(items)


def evaluate_snippet(generated: GeneratedSnippet) -> SnippetQuality:
    """Compute the quality metrics of one generated snippet."""
    coverable = generated.ilist.coverable_items()
    ilist_coverage = (
        len(generated.snippet.covered_items) / len(coverable) if coverable else 1.0
    )
    keyword_coverage, _, _ = _kind_coverage(generated, ItemKind.KEYWORD)
    entity_coverage, _, _ = _kind_coverage(generated, ItemKind.ENTITY_NAME)
    key_items = [item for item in generated.ilist.items_of_kind(ItemKind.RESULT_KEY) if item.has_instances]
    has_key = bool(key_items) and any(
        generated.snippet.covers(item.identity) for item in key_items
    )

    feature_items = [
        item for item in generated.ilist.items_of_kind(ItemKind.DOMINANT_FEATURE) if item.has_instances
    ]
    if feature_items:
        covered_features = [item for item in feature_items if generated.snippet.covers(item.identity)]
        feature_coverage = len(covered_features) / len(feature_items)
        total_mass = sum(item.score for item in feature_items)
        covered_mass = sum(item.score for item in covered_features)
        mass_coverage = covered_mass / total_mass if total_mass > 0 else 1.0
    else:
        feature_coverage = 1.0
        mass_coverage = 1.0

    return SnippetQuality(
        size_edges=generated.snippet.size_edges,
        size_bound=generated.size_bound,
        ilist_coverage=ilist_coverage,
        keyword_coverage=keyword_coverage,
        entity_name_coverage=entity_coverage,
        has_result_key=has_key,
        dominant_feature_coverage=feature_coverage,
        dominance_mass_coverage=mass_coverage,
    )


def snippet_signature(generated: GeneratedSnippet) -> frozenset[str]:
    """The set of (tag, value) strings a snippet shows — its visible content."""
    parts: set[str] = set()
    for node in generated.snippet.selected_nodes():
        if node.has_text_value:
            parts.add(f"{node.tag}={normalize_value(node.text or '')}")
        else:
            parts.add(node.tag)
    return frozenset(parts)


def distinguishability(snippets: list[GeneratedSnippet]) -> float:
    """Fraction of snippet pairs with different visible content.

    The paper's distinguishability goal: a user must be able to tell the
    results of one query apart by their snippets alone.  1.0 means every
    pair differs; 0.0 means all snippets look identical.
    """
    if len(snippets) < 2:
        return 1.0
    signatures = [snippet_signature(generated) for generated in snippets]
    pairs = 0
    distinct = 0
    for first in range(len(signatures)):
        for second in range(first + 1, len(signatures)):
            pairs += 1
            if signatures[first] != signatures[second]:
                distinct += 1
    return distinct / pairs if pairs else 1.0


def text_snippet_contains(snippet: TextSnippet, phrase: str) -> bool:
    """Does a flat text snippet contain (normalised) ``phrase``?"""
    return normalize_value(phrase) in normalize_value(snippet.text)


def mean(values: list[float]) -> float:
    """Arithmetic mean (0.0 for an empty list) — tiny helper for reports."""
    return sum(values) / len(values) if values else 0.0
