"""Experiment result tables and their plain-text rendering.

Every experiment produces an :class:`ExperimentTable`: a titled list of
rows (dictionaries) with a fixed column order.  The same object backs the
benchmark output, the EXPERIMENTS.md records and the example scripts, so
"the rows the paper reports" exist in exactly one representation.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.errors import EvaluationError


@dataclass
class ExperimentTable:
    """A titled table of experiment measurements."""

    experiment_id: str
    title: str
    columns: list[str]
    rows: list[dict[str, object]] = field(default_factory=list)
    notes: str = ""

    def add_row(self, **values: object) -> None:
        """Append one row; every declared column must be present."""
        missing = [column for column in self.columns if column not in values]
        if missing:
            raise EvaluationError(
                f"experiment {self.experiment_id}: row is missing columns {missing}"
            )
        self.rows.append({column: values[column] for column in self.columns})

    def column(self, name: str) -> list[object]:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise EvaluationError(f"experiment {self.experiment_id}: unknown column {name!r}")
        return [row[name] for row in self.rows]

    # ------------------------------------------------------------------ #
    # rendering
    # ------------------------------------------------------------------ #
    def format_text(self) -> str:
        """Render as an aligned plain-text table."""
        header = [self._format_cell(column) for column in self.columns]
        body = [[self._format_cell(row[column]) for column in self.columns] for row in self.rows]
        widths = [
            max(len(header[index]), *(len(line[index]) for line in body)) if body else len(header[index])
            for index in range(len(self.columns))
        ]
        lines = [f"[{self.experiment_id}] {self.title}"]
        lines.append("  " + "  ".join(header[i].ljust(widths[i]) for i in range(len(widths))))
        lines.append("  " + "  ".join("-" * widths[i] for i in range(len(widths))))
        for line in body:
            lines.append("  " + "  ".join(line[i].ljust(widths[i]) for i in range(len(widths))))
        if self.notes:
            lines.append(f"  note: {self.notes}")
        return "\n".join(lines)

    def format_markdown(self) -> str:
        """Render as a GitHub-flavoured markdown table."""
        lines = [f"**[{self.experiment_id}] {self.title}**", ""]
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(self._format_cell(row[column]) for column in self.columns) + " |")
        if self.notes:
            lines.append("")
            lines.append(f"_{self.notes}_")
        return "\n".join(lines)

    @staticmethod
    def _format_cell(value: object) -> str:
        if isinstance(value, float):
            if abs(value) >= 1000:
                return f"{value:.0f}"
            if abs(value) >= 1:
                return f"{value:.3f}"
            return f"{value:.4f}"
        return str(value)

    def save(self, path: str | os.PathLike[str]) -> None:
        """Write the text rendering to a file."""
        with open(os.fspath(path), "w", encoding="utf-8") as handle:
            handle.write(self.format_text() + "\n")

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return f"<ExperimentTable {self.experiment_id} rows={len(self.rows)}>"
