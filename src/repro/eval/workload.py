"""Query workload generation.

The efficiency and quality experiments need many keyword queries per
dataset.  Queries are generated from the document itself so every query is
guaranteed to have results: keywords are drawn from entity tag names (the
"return entity" style keyword, e.g. ``store``) and from attribute values
(the "predicate" style keyword, e.g. ``Texas``), mirroring how the paper's
example queries mix both kinds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datasets.base import DatasetRandom
from repro.errors import EvaluationError
from repro.index.builder import DocumentIndex
from repro.search.query import KeywordQuery


@dataclass
class QueryWorkload:
    """A named list of keyword queries over one document."""

    name: str
    document_name: str
    queries: list[KeywordQuery] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)

    def __getitem__(self, index: int) -> KeywordQuery:
        return self.queries[index]

    def texts(self) -> list[str]:
        return [query.raw for query in self.queries]


class WorkloadGenerator:
    """Generates keyword workloads from an indexed document."""

    def __init__(self, index: DocumentIndex, seed: int = 0):
        self.index = index
        self.rng = DatasetRandom(seed)

    # ------------------------------------------------------------------ #
    # vocabulary pools
    # ------------------------------------------------------------------ #
    def entity_keywords(self) -> list[str]:
        """Entity tag names (e.g. ``store``, ``movie``) — search-goal keywords."""
        return sorted(self.index.analyzer.entity_tags())

    def value_keywords(self, min_occurrences: int = 2, limit: int = 200) -> list[str]:
        """Frequent value tokens (e.g. ``texas``, ``drama``) — predicate keywords.

        Only single-token values occurring at least ``min_occurrences``
        times are used, so generated queries are selective but never empty.
        """
        candidates: list[tuple[int, str]] = []
        for term in self.index.inverted.vocabulary:
            if not term.isalpha() or len(term) < 3:
                continue
            frequency = self.index.inverted.document_frequency(term)
            if frequency >= min_occurrences:
                candidates.append((frequency, term))
        candidates.sort(key=lambda pair: (-pair[0], pair[1]))
        return [term for _, term in candidates[:limit]]

    # ------------------------------------------------------------------ #
    # workload generation
    # ------------------------------------------------------------------ #
    def generate(
        self,
        query_count: int = 20,
        keywords_per_query: int = 2,
        include_entity_keyword: bool = True,
        name: str = "workload",
    ) -> QueryWorkload:
        """Generate ``query_count`` queries with ``keywords_per_query`` keywords.

        Each query optionally starts with an entity tag keyword (the search
        goal) and is filled up with distinct value keywords.
        """
        if keywords_per_query < 1:
            raise EvaluationError("keywords_per_query must be at least 1")
        entities = self.entity_keywords()
        values = self.value_keywords()
        if not values and not entities:
            raise EvaluationError(
                f"document {self.index.tree.name!r} offers no usable query keywords"
            )

        workload = QueryWorkload(name=name, document_name=self.index.tree.name)
        attempts = 0
        while len(workload.queries) < query_count and attempts < query_count * 20:
            attempts += 1
            keywords: list[str] = []
            if include_entity_keyword and entities:
                keywords.append(self.rng.pick(entities))
            while len(keywords) < keywords_per_query and values:
                candidate = self.rng.pick(values)
                if candidate not in keywords:
                    keywords.append(candidate)
            if not keywords:
                continue
            query = KeywordQuery.from_keywords(keywords)
            if query.raw in {existing.raw for existing in workload.queries}:
                continue
            workload.queries.append(query)
        if not workload.queries:
            raise EvaluationError("workload generation produced no queries")
        return workload

    def fixed_paper_queries(self) -> QueryWorkload:
        """The two queries that appear verbatim in the paper (§1, §4)."""
        workload = QueryWorkload(name="paper-queries", document_name=self.index.tree.name)
        for text in ("Texas, apparel, retailer", "store texas"):
            workload.queries.append(KeywordQuery.parse(text))
        return workload
