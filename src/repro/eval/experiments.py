"""The experiment registry.

Maps experiment identifiers (as used in DESIGN.md and EXPERIMENTS.md) to
runnable functions returning an :class:`~repro.eval.reporting.ExperimentTable`.
Benchmarks, the ``examples/run_experiments.py`` script and the tests all go
through this registry, so an experiment cannot silently disappear from one
of them.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.errors import EvaluationError
from repro.eval.ablation import run_ablation_distinct, run_ablation_dominance, run_ablation_selector
from repro.eval.efficiency import (
    run_search_engine_scaling,
    run_time_vs_bound,
    run_time_vs_docsize,
    run_time_vs_results,
)
from repro.eval.figures import run_figure1, run_figure2, run_figure3, run_figure5
from repro.eval.quality import (
    run_feature_quality,
    run_greedy_vs_optimal,
    run_snippet_quality_by_dataset,
)
from repro.eval.reporting import ExperimentTable
from repro.eval.userstudy import run_distinguishability_study, run_user_study


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment."""

    experiment_id: str
    description: str
    runner: Callable[..., ExperimentTable]

    def run(self, **kwargs) -> ExperimentTable:
        return self.runner(**kwargs)


EXPERIMENTS: dict[str, ExperimentSpec] = {
    spec.experiment_id: spec
    for spec in (
        ExperimentSpec("F1", "Figure 1 value-occurrence statistics of the running example", run_figure1),
        ExperimentSpec("F2", "Figure 2 snippet of the running example", run_figure2),
        ExperimentSpec("F3", "Figure 3 IList and §2.3 dominance scores", run_figure3),
        ExperimentSpec("F5", 'Figure 5 demo walk-through ("store texas", bound 6)', run_figure5),
        ExperimentSpec("E1", "Snippet generation time vs. number of results", run_time_vs_results),
        ExperimentSpec("E2", "Snippet generation time vs. snippet size bound", run_time_vs_bound),
        ExperimentSpec("E3", "Per-phase time vs. document size", run_time_vs_docsize),
        ExperimentSpec("E4", "Greedy vs. optimal vs. baselines (IList items covered)", run_greedy_vs_optimal),
        ExperimentSpec("E5", "Feature identification: dominance score vs. raw frequency", run_feature_quality),
        ExperimentSpec("E5b", "Snippet quality metrics per dataset", run_snippet_quality_by_dataset),
        ExperimentSpec("E6", "Simulated user study: identification accuracy and effort", run_user_study),
        ExperimentSpec("E6b", "Snippet distinguishability per method", run_distinguishability_study),
        ExperimentSpec("E7", "Search semantics scaling (SLCA / ELCA / brute force)", run_search_engine_scaling),
        ExperimentSpec("A1", "Ablation: dominance score vs. raw frequency feature ranking", run_ablation_dominance),
        ExperimentSpec("A2", "Ablation: instance selection strategy", run_ablation_selector),
        ExperimentSpec(
            "A3",
            "Ablation: result-set-aware distinct snippets on an ambiguous catalogue",
            run_ablation_distinct,
        ),
    )
}


def list_experiments() -> list[str]:
    """All registered experiment ids, in registry order."""
    return list(EXPERIMENTS)


def run_experiment(experiment_id: str, **kwargs) -> ExperimentTable:
    """Run one experiment by id.

    >>> table = run_experiment("F1")
    >>> table.experiment_id
    'F1'
    """
    spec = EXPERIMENTS.get(experiment_id)
    if spec is None:
        raise EvaluationError(
            f"unknown experiment {experiment_id!r}; known: {', '.join(EXPERIMENTS)}"
        )
    return spec.run(**kwargs)


def run_all(**kwargs) -> dict[str, ExperimentTable]:
    """Run every registered experiment (used by examples/run_experiments.py)."""
    return {experiment_id: spec.run() for experiment_id, spec in EXPERIMENTS.items()}
