"""Evaluation harness: workloads, metrics and the experiment suite.

The demo paper defers its evaluation details to the companion full paper
("User study and performance evaluation showed that eXtract can effectively
generate high-quality snippets", §3).  This package implements a complete
evaluation in that spirit — efficiency sweeps, quality comparisons against
baselines and an optimal selector, a simulated user study and ablations —
and each experiment is registered so the benchmark targets and
EXPERIMENTS.md stay in sync.

* :mod:`repro.eval.workload` — query workload generation per dataset,
* :mod:`repro.eval.loadgen` — the closed-loop load harness: seeded mixed
  traffic against the real HTTP server, measured through the obs stack,
  plus the baseline-plus-one-flip serving-flag ablation matrix,
* :mod:`repro.eval.metrics` — snippet quality metrics,
* :mod:`repro.eval.reporting` — experiment tables and text rendering,
* :mod:`repro.eval.efficiency` — experiments E1, E2, E3, E7,
* :mod:`repro.eval.quality` — experiments E4, E5,
* :mod:`repro.eval.userstudy` — experiment E6,
* :mod:`repro.eval.ablation` — experiments A1, A2,
* :mod:`repro.eval.experiments` — the registry tying experiment ids
  (F1–F5, E1–E7, A1–A2) to runnable functions.
"""

from repro.eval.reporting import ExperimentTable
from repro.eval.workload import QueryWorkload, WorkloadGenerator
from repro.eval.metrics import SnippetQuality, evaluate_snippet, distinguishability
from repro.eval.experiments import EXPERIMENTS, run_experiment, list_experiments

#: loadgen names re-exported lazily — the load harness imports the serving
#: stack (repro.api), which itself imports repro.eval.metrics during
#: package init, so an eager import here would be circular
_LOADGEN_EXPORTS = (
    "AblationConfig",
    "AblationFlag",
    "FlagValue",
    "LoadProfile",
    "LoadReport",
    "RequestPlan",
    "SMOKE_PROFILE",
    "ablation_matrix",
    "build_plan",
    "default_flags",
    "run_ablation",
    "run_load",
    "smoke_flags",
)


def __getattr__(name: str):
    if name in _LOADGEN_EXPORTS:
        from repro.eval import loadgen

        return getattr(loadgen, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ExperimentTable",
    "QueryWorkload",
    "WorkloadGenerator",
    "AblationConfig",
    "AblationFlag",
    "FlagValue",
    "LoadProfile",
    "LoadReport",
    "RequestPlan",
    "SMOKE_PROFILE",
    "ablation_matrix",
    "build_plan",
    "default_flags",
    "run_ablation",
    "run_load",
    "smoke_flags",
    "SnippetQuality",
    "evaluate_snippet",
    "distinguishability",
    "EXPERIMENTS",
    "run_experiment",
    "list_experiments",
]
