"""Evaluation harness: workloads, metrics and the experiment suite.

The demo paper defers its evaluation details to the companion full paper
("User study and performance evaluation showed that eXtract can effectively
generate high-quality snippets", §3).  This package implements a complete
evaluation in that spirit — efficiency sweeps, quality comparisons against
baselines and an optimal selector, a simulated user study and ablations —
and each experiment is registered so the benchmark targets and
EXPERIMENTS.md stay in sync.

* :mod:`repro.eval.workload` — query workload generation per dataset,
* :mod:`repro.eval.metrics` — snippet quality metrics,
* :mod:`repro.eval.reporting` — experiment tables and text rendering,
* :mod:`repro.eval.efficiency` — experiments E1, E2, E3, E7,
* :mod:`repro.eval.quality` — experiments E4, E5,
* :mod:`repro.eval.userstudy` — experiment E6,
* :mod:`repro.eval.ablation` — experiments A1, A2,
* :mod:`repro.eval.experiments` — the registry tying experiment ids
  (F1–F5, E1–E7, A1–A2) to runnable functions.
"""

from repro.eval.reporting import ExperimentTable
from repro.eval.workload import QueryWorkload, WorkloadGenerator
from repro.eval.metrics import SnippetQuality, evaluate_snippet, distinguishability
from repro.eval.experiments import EXPERIMENTS, run_experiment, list_experiments

__all__ = [
    "ExperimentTable",
    "QueryWorkload",
    "WorkloadGenerator",
    "SnippetQuality",
    "evaluate_snippet",
    "distinguishability",
    "EXPERIMENTS",
    "run_experiment",
    "list_experiments",
]
