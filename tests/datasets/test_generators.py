"""Tests for the parametric dataset generators (retail, movies, auctions, dblp)."""

from __future__ import annotations

import pytest

from repro.datasets.auctions import AuctionConfig, generate_auction_document
from repro.datasets.base import DatasetRandom, spread_counts, require_positive
from repro.datasets.bibliography import BibliographyConfig, generate_bibliography_document
from repro.datasets.movies import MoviesConfig, generate_movies_document
from repro.datasets.retail import RetailConfig, figure5_document, generate_retail_document
from repro.errors import DatasetError
from repro.index.builder import IndexBuilder


class TestBaseHelpers:
    def test_pick_from_empty_pool_raises(self):
        with pytest.raises(DatasetError):
            DatasetRandom(0).pick([])

    def test_name_phrase_capitalised(self):
        phrase = DatasetRandom(1).name_phrase(2)
        assert len(phrase.split()) == 2
        assert all(word[0].isupper() for word in phrase.split())

    def test_skewed_index_bounds(self):
        rng = DatasetRandom(2)
        for _ in range(200):
            assert 0 <= rng.skewed_index(5) < 5
        assert rng.skewed_index(1) == 0

    def test_skewed_index_is_skewed(self):
        rng = DatasetRandom(3)
        draws = [rng.skewed_index(8, skew=1.5) for _ in range(2000)]
        assert draws.count(0) > draws.count(7)

    def test_skewed_index_invalid_size(self):
        with pytest.raises(DatasetError):
            DatasetRandom(0).skewed_index(0)

    def test_spread_counts(self):
        assert spread_counts(10, 3) == [4, 3, 3]
        assert sum(spread_counts(1070, 10)) == 1070
        with pytest.raises(DatasetError):
            spread_counts(5, 0)

    def test_require_positive(self):
        assert require_positive("x", 3) == 3
        for bad in (0, -1, 1.5, True):
            with pytest.raises(DatasetError):
                require_positive("x", bad)


class TestRetail:
    def test_structure_counts(self):
        config = RetailConfig(retailers=3, stores_per_retailer=2, clothes_per_store=4, seed=1)
        tree = generate_retail_document(config)
        assert len(tree.root.find_children("retailer")) == 3
        assert len(tree.find_by_tag("store")) == 6
        assert len(tree.find_by_tag("clothes")) == 24

    def test_deterministic(self):
        config = RetailConfig(retailers=2, seed=9)
        first = generate_retail_document(config)
        second = generate_retail_document(config)
        assert [n.text for n in first.iter_nodes()] == [n.text for n in second.iter_nodes()]

    def test_invalid_config_rejected(self):
        with pytest.raises(DatasetError):
            generate_retail_document(RetailConfig(retailers=0))

    def test_approximate_nodes_close_to_actual(self):
        config = RetailConfig(retailers=3, stores_per_retailer=3, clothes_per_store=3, seed=2)
        tree = generate_retail_document(config)
        assert abs(config.approximate_nodes - tree.size_nodes) / tree.size_nodes < 0.2

    def test_entities_detected(self):
        tree = generate_retail_document(RetailConfig(retailers=3, seed=4))
        index = IndexBuilder().build(tree)
        assert {"retailer", "store", "clothes"} <= index.analyzer.entity_tags()

    def test_figure5_document_shape(self):
        tree = figure5_document()
        stores = tree.root.find_children("store")
        names = [store.find_child("name").text for store in stores]
        assert names[:2] == ["Levis", "ESprit"]
        texas_stores = [s for s in stores if s.find_child("state").text == "Texas"]
        assert len(texas_stores) == 2


class TestMovies:
    def test_structure_counts(self):
        config = MoviesConfig(movies=5, actors_per_movie=2, reviews_per_movie=1, seed=1)
        tree = generate_movies_document(config)
        assert len(tree.find_by_tag("movie")) == 5
        assert len(tree.find_by_tag("actor")) == 10
        assert len(tree.find_by_tag("review")) == 5

    def test_titles_unique(self):
        tree = generate_movies_document(MoviesConfig(movies=15, seed=2))
        titles = [node.text for node in tree.find_by_tag("title")]
        assert len(titles) == len(set(titles))

    def test_years_in_range(self):
        config = MoviesConfig(movies=10, year_range=(2000, 2003), seed=3)
        tree = generate_movies_document(config)
        years = {int(node.text) for node in tree.find_by_tag("year")}
        assert years <= set(range(2000, 2004))

    def test_invalid_year_range(self):
        with pytest.raises(ValueError):
            generate_movies_document(MoviesConfig(year_range=(2010, 2000)))

    def test_entities_detected(self, movies_idx):
        assert {"movie", "actor", "review"} <= movies_idx.analyzer.entity_tags()
        movie_type = movies_idx.analyzer.entity_type_by_tag("movie")
        assert movie_type.key is not None and movie_type.key.attribute_tag == "title"


class TestAuctions:
    def test_scale_controls_size(self):
        small = generate_auction_document(AuctionConfig(scale=1, items_per_region=2, seed=1))
        large = generate_auction_document(AuctionConfig(scale=3, items_per_region=2, seed=1))
        assert large.size_nodes > small.size_nodes * 2

    def test_sections_present(self):
        tree = generate_auction_document(AuctionConfig(scale=1, items_per_region=1, seed=2))
        assert [child.tag for child in tree.root.children] == ["regions", "people", "auctions"]

    def test_config_totals(self):
        config = AuctionConfig(scale=2, items_per_region=3)
        tree = generate_auction_document(config)
        assert len(tree.find_by_tag("item")) == config.total_items
        assert len(tree.find_by_tag("person")) == config.total_people
        assert len(tree.find_by_tag("auction")) == config.total_auctions

    def test_invalid_scale(self):
        with pytest.raises(DatasetError):
            generate_auction_document(AuctionConfig(scale=0))


class TestBibliography:
    def test_structure_counts(self):
        config = BibliographyConfig(conferences=2, papers_per_conference=4, seed=1)
        tree = generate_bibliography_document(config)
        assert len(tree.find_by_tag("conference")) == 2
        assert len(tree.find_by_tag("paper")) == 8
        assert len(tree.find_by_tag("author")) >= 8

    def test_authors_bounded(self):
        config = BibliographyConfig(conferences=1, papers_per_conference=10, max_authors=2, seed=3)
        tree = generate_bibliography_document(config)
        for paper in tree.find_by_tag("paper"):
            assert 1 <= len(paper.find_children("author")) <= 2

    def test_entities_detected(self):
        tree = generate_bibliography_document(BibliographyConfig(conferences=2, seed=5))
        index = IndexBuilder().build(tree)
        assert {"conference", "paper", "author"} <= index.analyzer.entity_tags()

    def test_invalid_config(self):
        with pytest.raises(DatasetError):
            generate_bibliography_document(BibliographyConfig(conferences=0))
