"""Tests for the Figure 1 dataset generator."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.datasets.paper_example import (
    FIGURE1_EXPECTED_ILIST,
    FIGURE1_EXPECTED_SCORES,
    FIGURE1_QUERY,
    figure1_document,
    figure1_query,
    figure1_statistics,
)


class TestDocumentShape:
    def test_three_retailers(self, figure1_tree):
        assert len(figure1_tree.root.find_children("retailer")) == 3

    def test_brook_brothers_has_ten_stores(self, figure1_tree):
        brook = figure1_tree.root.find_children("retailer")[0]
        assert brook.find_child("name").text == "Brook Brothers"
        assert len(brook.find_children("store")) == 10

    def test_store_names_unique(self, figure1_tree):
        names = [node.text for node in figure1_tree.find_by_tag("name")]
        store_names = [
            node.text
            for node in figure1_tree.find_by_tag("name")
            if node.parent is not None and node.parent.tag == "store"
        ]
        assert len(store_names) == len(set(store_names))
        assert len(names) >= 13

    def test_deterministic_for_same_seed(self):
        first = figure1_document(seed=7)
        second = figure1_document(seed=7)
        assert [n.tag for n in first.iter_nodes()] == [n.tag for n in second.iter_nodes()]
        assert [n.text for n in first.iter_nodes()] == [n.text for n in second.iter_nodes()]

    def test_query_constant(self):
        assert figure1_query() == FIGURE1_QUERY == "Texas, apparel, retailer"


class TestPublishedCounts:
    def test_city_occurrences(self, figure1_tree):
        brook = figure1_tree.root.find_children("retailer")[0]
        cities = Counter(node.text for node in brook.find_descendants("city"))
        assert cities["Houston"] == 6
        assert cities["Austin"] == 1
        assert sum(cities.values()) == 10
        assert len(cities) == 5

    def test_fitting_occurrences(self, figure1_tree):
        brook = figure1_tree.root.find_children("retailer")[0]
        fittings = Counter(node.text for node in brook.find_descendants("fitting"))
        assert fittings == {"man": 600, "woman": 360, "children": 40}

    def test_situation_occurrences(self, figure1_tree):
        brook = figure1_tree.root.find_children("retailer")[0]
        situations = Counter(node.text for node in brook.find_descendants("situation"))
        assert situations == {"casual": 700, "formal": 300}

    def test_category_occurrences(self, figure1_tree):
        brook = figure1_tree.root.find_children("retailer")[0]
        categories = Counter(node.text for node in brook.find_descendants("category"))
        assert categories["outwear"] == 220
        assert categories["suit"] == 120
        assert categories["skirt"] == 80
        assert categories["sweaters"] == 70
        assert sum(categories.values()) == 1070
        assert len(categories) == 11

    def test_statistics_helper_matches_generator(self):
        stats = figure1_statistics()
        assert stats[("store", "city")]["houston"] == 6
        assert sum(stats[("clothes", "category")].values()) == 1070


class TestExpectedConstants:
    def test_expected_ilist_matches_figure3(self):
        assert FIGURE1_EXPECTED_ILIST[:3] == ("texas", "apparel", "retailer")
        assert FIGURE1_EXPECTED_ILIST[5] == "brook brothers"
        assert FIGURE1_EXPECTED_ILIST[-1] == "woman"
        assert len(FIGURE1_EXPECTED_ILIST) == 12

    def test_expected_scores_are_decreasing_in_ilist_order(self):
        ordered = [FIGURE1_EXPECTED_SCORES[v] for v in FIGURE1_EXPECTED_ILIST if v in FIGURE1_EXPECTED_SCORES]
        assert ordered == sorted(ordered, reverse=True)
