"""Baseline behaviour: round trip, matching identity, stale detection."""

from __future__ import annotations

import json

import pytest

from repro.analysis import (
    BASELINE_VERSION,
    BaselineEntry,
    Finding,
    apply_baseline,
    entry_for,
    read_baseline,
    write_baseline,
)
from repro.errors import AnalysisError


def _finding(path="repro/x.py", line=3, rule="no-print-in-library", message="m"):
    return Finding(path=path, line=line, column=1, rule_id=rule, message=message)


class TestRoundTrip:
    def test_write_then_read(self, tmp_path):
        target = str(tmp_path / "baseline.json")
        written = write_baseline(target, [_finding(), _finding(path="repro/y.py")])
        assert read_baseline(target) == written
        payload = json.loads((tmp_path / "baseline.json").read_text())
        assert payload["version"] == BASELINE_VERSION

    def test_entries_deduplicated_and_sorted(self, tmp_path):
        target = str(tmp_path / "baseline.json")
        # Same (rule, path, message) at two different lines is ONE entry.
        entries = write_baseline(
            target,
            [_finding(line=3), _finding(line=90), _finding(path="repro/a.py")],
        )
        assert len(entries) == 2
        assert entries == sorted(entries, key=BaselineEntry.key)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(AnalysisError, match="cannot read"):
            read_baseline(str(tmp_path / "missing.json"))

    def test_invalid_json_raises(self, tmp_path):
        target = tmp_path / "bad.json"
        target.write_text("{not json", encoding="utf-8")
        with pytest.raises(AnalysisError, match="not valid JSON"):
            read_baseline(str(target))

    def test_version_mismatch_raises(self, tmp_path):
        target = tmp_path / "old.json"
        target.write_text(json.dumps({"version": 99, "entries": []}), encoding="utf-8")
        with pytest.raises(AnalysisError, match="version"):
            read_baseline(str(target))

    def test_malformed_entry_raises(self, tmp_path):
        target = tmp_path / "bad-entry.json"
        target.write_text(
            json.dumps({"version": BASELINE_VERSION, "entries": [{"rule": "x"}]}),
            encoding="utf-8",
        )
        with pytest.raises(AnalysisError, match="missing key"):
            read_baseline(str(target))


class TestApply:
    def test_covered_finding_is_filtered(self):
        finding = _finding()
        new, stale = apply_baseline([finding], [entry_for(finding)])
        assert new == []
        assert stale == []

    def test_line_change_does_not_expire_entry(self):
        # The whole point of the (rule, path, message) identity: code moved,
        # the grandfathered finding still matches.
        entry = entry_for(_finding(line=3))
        new, stale = apply_baseline([_finding(line=41)], [entry])
        assert new == []
        assert stale == []

    def test_uncovered_finding_passes_through(self):
        baseline = [entry_for(_finding(message="old"))]
        fresh = _finding(message="new")
        new, stale = apply_baseline([fresh], baseline)
        assert new == [fresh]
        assert [e.message for e in stale] == ["old"]

    def test_fixed_finding_makes_entry_stale(self):
        entry = entry_for(_finding())
        new, stale = apply_baseline([], [entry])
        assert new == []
        assert stale == [entry]

    def test_empty_baseline_passes_everything(self):
        findings = [_finding(), _finding(path="repro/y.py")]
        new, stale = apply_baseline(findings, [])
        assert new == findings
        assert stale == []
