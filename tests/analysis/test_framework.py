"""Tests for the analysis framework: suppressions, paths, registry,
report shape — everything below the individual rules."""

from __future__ import annotations

import json

import pytest

from repro.analysis import (
    REPORT_SCHEMA_VERSION,
    SYNTAX_ERROR_RULE,
    AnalysisContext,
    Analyzer,
    Finding,
    build_rules,
    finding_from_dict,
    parse_suppressions,
    path_matches,
    register_rule,
    registered_rule_ids,
    report_to_dict,
)
from repro.analysis.framework import RULE_REGISTRY, Rule
from repro.errors import AnalysisError


class TestSuppressionParsing:
    def test_single_rule(self):
        text = "x = 1  # repro: ignore[lock-discipline]\n"
        assert parse_suppressions(text) == {1: frozenset({"lock-discipline"})}

    def test_multiple_rules_one_comment(self):
        text = "x = 1  # repro: ignore[rule-a, rule-b]\n"
        assert parse_suppressions(text) == {1: frozenset({"rule-a", "rule-b"})}

    def test_standalone_comment_line(self):
        text = "# repro: ignore[wire-determinism]\nx = 1\n"
        assert parse_suppressions(text) == {1: frozenset({"wire-determinism"})}

    def test_spacing_variants(self):
        text = "x = 1  #repro:ignore[rule-a]\ny = 2  #  repro:  ignore[rule-b]\n"
        parsed = parse_suppressions(text)
        assert parsed[1] == frozenset({"rule-a"})
        assert parsed[2] == frozenset({"rule-b"})

    def test_plain_comments_are_not_suppressions(self):
        assert parse_suppressions("x = 1  # a normal comment\n") == {}

    def test_empty_rule_list_raises(self):
        with pytest.raises(AnalysisError, match="names no"):
            parse_suppressions("x = 1  # repro: ignore[]\n")

    def test_suppression_in_string_literal_is_ignored(self):
        text = 'x = "# repro: ignore[rule-a]"\n'
        assert parse_suppressions(text) == {}


class TestModuleSuppression:
    def _analyze(self, tmp_path, source: str):
        (tmp_path / "module.py").write_text(source, encoding="utf-8")
        analyzer = Analyzer(build_rules(["no-print-in-library"]))
        return analyzer.analyze_paths([str(tmp_path)]).findings

    def test_same_line_suppression(self, tmp_path):
        findings = self._analyze(
            tmp_path, "print('x')  # repro: ignore[no-print-in-library]\n"
        )
        assert findings == []

    def test_line_above_suppression(self, tmp_path):
        findings = self._analyze(
            tmp_path, "# repro: ignore[no-print-in-library]\nprint('x')\n"
        )
        assert findings == []

    def test_wrong_rule_id_does_not_suppress(self, tmp_path):
        findings = self._analyze(
            tmp_path, "print('x')  # repro: ignore[lock-discipline]\n"
        )
        assert [f.rule_id for f in findings] == ["no-print-in-library"]

    def test_suppression_is_per_line(self, tmp_path):
        findings = self._analyze(
            tmp_path,
            "print('a')  # repro: ignore[no-print-in-library]\n\nprint('b')\n",
        )
        assert [f.line for f in findings] == [3]


class TestPathMatching:
    def test_exact_and_suffix(self):
        assert path_matches("repro/api/protocol.py", ("repro/api/protocol.py",))
        assert path_matches("src/repro/api/protocol.py", ("repro/api/protocol.py",))
        assert not path_matches("repro/api/protocol.py", ("repro/api/service.py",))

    def test_partial_component_does_not_match(self):
        assert not path_matches("myrepro/api/protocol.py", ("repro/api/protocol.py",))

    def test_directory_suffix(self):
        assert path_matches("repro/api/http.py", ("repro/api/",))
        assert path_matches("src/repro/api/deep/x.py", ("repro/api/",))
        assert not path_matches("repro/cluster/router.py", ("repro/api/",))

    def test_context_find_module_by_suffix(self, tmp_path):
        (tmp_path / "repro").mkdir()
        (tmp_path / "repro" / "errors.py").write_text("X = 1\n", encoding="utf-8")
        analyzer = Analyzer(build_rules(["no-print-in-library"]))
        analyzer.analyze_paths([str(tmp_path)])
        modules = []
        (tmp_path / "repro" / "other.py").write_text("Y = 2\n", encoding="utf-8")
        loaded = analyzer.load_module(
            str(tmp_path / "repro" / "errors.py"), "repro/errors.py"
        )
        modules.append(loaded)
        context = AnalysisContext(modules)
        assert context.find_module("repro/errors.py") is loaded
        assert context.find_module("errors.py") is loaded
        assert context.find_module("missing.py") is None


class TestRegistry:
    def test_builtin_rules_registered(self):
        ids = registered_rule_ids()
        for expected in (
            "lock-discipline",
            "wire-determinism",
            "error-contract",
            "no-silent-swallow",
            "executor-lifecycle",
            "no-print-in-library",
        ):
            assert expected in ids
        assert len(ids) >= 6

    def test_unknown_rule_id_raises(self):
        with pytest.raises(AnalysisError, match="unknown rule"):
            build_rules(["no-such-rule"])

    def test_bad_rule_id_rejected_at_registration(self):
        with pytest.raises(AnalysisError, match="kebab-case"):

            @register_rule
            class BadRule(Rule):
                rule_id = "Not_Kebab"
                description = "x"

                def check(self, module, context):
                    return iter(())

    def test_reserved_syntax_error_id_rejected(self):
        with pytest.raises(AnalysisError, match="reserved"):

            @register_rule
            class ReservedRule(Rule):
                rule_id = SYNTAX_ERROR_RULE
                description = "x"

                def check(self, module, context):
                    return iter(())

    def test_duplicate_rule_id_rejected(self):
        with pytest.raises(AnalysisError, match="duplicate"):

            @register_rule
            class DuplicateRule(Rule):
                rule_id = "no-print-in-library"
                description = "x"

                def check(self, module, context):
                    return iter(())

        assert RULE_REGISTRY["no-print-in-library"].__name__ != "DuplicateRule"


class TestAnalyzer:
    def test_syntax_error_becomes_finding(self, tmp_path):
        (tmp_path / "broken.py").write_text("def f(:\n", encoding="utf-8")
        report = Analyzer(build_rules(["no-print-in-library"])).analyze_paths(
            [str(tmp_path)]
        )
        assert [f.rule_id for f in report.findings] == [SYNTAX_ERROR_RULE]
        assert report.files_analyzed == 1

    def test_missing_path_raises(self):
        with pytest.raises(AnalysisError, match="no such file"):
            Analyzer(build_rules(["no-print-in-library"])).analyze_paths(
                ["/does/not/exist"]
            )

    def test_hidden_and_pycache_skipped(self, tmp_path):
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "x.py").write_text("print(1)\n", encoding="utf-8")
        (tmp_path / ".hidden").mkdir()
        (tmp_path / ".hidden" / "y.py").write_text("print(1)\n", encoding="utf-8")
        (tmp_path / "ok.py").write_text("x = 1\n", encoding="utf-8")
        report = Analyzer(build_rules(["no-print-in-library"])).analyze_paths(
            [str(tmp_path)]
        )
        assert report.files_analyzed == 1
        assert report.findings == []

    def test_single_file_argument(self, tmp_path):
        target = tmp_path / "one.py"
        target.write_text("print(1)\n", encoding="utf-8")
        report = Analyzer(build_rules(["no-print-in-library"])).analyze_paths(
            [str(target)]
        )
        assert [f.path for f in report.findings] == ["one.py"]

    def test_findings_sorted(self, tmp_path):
        (tmp_path / "b.py").write_text("print(1)\n", encoding="utf-8")
        (tmp_path / "a.py").write_text("print(1)\nprint(2)\n", encoding="utf-8")
        report = Analyzer(build_rules(["no-print-in-library"])).analyze_paths(
            [str(tmp_path)]
        )
        assert [(f.path, f.line) for f in report.findings] == [
            ("a.py", 1), ("a.py", 2), ("b.py", 1),
        ]


class TestReportShape:
    def _finding(self, **overrides):
        base = dict(
            path="repro/x.py", line=3, column=1,
            rule_id="no-print-in-library", message="print() in library code",
        )
        base.update(overrides)
        return Finding(**base)

    def test_finding_round_trip(self):
        finding = self._finding()
        assert finding_from_dict(finding.to_dict()) == finding

    def test_finding_from_dict_rejects_malformed(self):
        with pytest.raises(AnalysisError):
            finding_from_dict({"path": "x.py"})
        with pytest.raises(AnalysisError):
            finding_from_dict("not an object")

    def test_format_is_stable(self):
        assert self._finding().format() == (
            "repro/x.py:3:1: no-print-in-library: print() in library code"
        )

    def test_report_schema_keys(self):
        findings = [self._finding(), self._finding(line=9, rule_id="wire-determinism")]
        payload = report_to_dict(
            findings, rules_run=["a", "b"], files_analyzed=4, baselined=2,
            stale_baseline=[{"rule": "a", "path": "x.py", "message": "m"}],
        )
        # The stable contract CI consumers parse: exactly these top-level keys.
        assert sorted(payload) == [
            "baseline", "counts", "files_analyzed", "findings", "rules",
            "schema_version",
        ]
        assert payload["schema_version"] == REPORT_SCHEMA_VERSION
        assert payload["counts"]["total"] == 2
        assert payload["counts"]["by_rule"] == {
            "no-print-in-library": 1, "wire-determinism": 1,
        }
        assert payload["baseline"] == {
            "suppressed": 2,
            "stale": [{"rule": "a", "path": "x.py", "message": "m"}],
        }
        # JSON-serialisable as-is.
        round_tripped = json.loads(json.dumps(payload))
        assert round_tripped == payload
