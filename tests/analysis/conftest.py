"""Shared helpers for the static-analysis test suite.

Rule fixtures are tiny source snippets written into a tmp directory that
mirrors the real package layout (``repro/api/...``), because several
rules scope themselves by path suffix.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis import Analyzer, build_rules


@pytest.fixture()
def lint_tree(tmp_path):
    """Write ``{rel_path: source}`` files and lint them with one rule.

    Returns a callable: ``lint_tree(files, rule_id) -> list[Finding]``.
    """

    def run(files: dict[str, str], rule_id: str):
        for rel_path, source in files.items():
            target = tmp_path / rel_path
            os.makedirs(target.parent, exist_ok=True)
            target.write_text(source, encoding="utf-8")
        analyzer = Analyzer(build_rules([rule_id]))
        return analyzer.analyze_paths([str(tmp_path)]).findings

    return run
