"""The acceptance gate, as a test: the repository's own source tree is
clean under every shipped rule (modulo the committed baseline)."""

from __future__ import annotations

import json
import os

import repro
from repro.analysis import Analyzer, apply_baseline, build_rules, read_baseline

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
BASELINE = os.path.join(REPO_ROOT, "analysis-baseline.json")


def test_source_tree_is_clean_under_all_rules():
    report = Analyzer(build_rules()).analyze_paths([SRC_DIR])
    entries = read_baseline(BASELINE) if os.path.exists(BASELINE) else []
    new_findings, stale = apply_baseline(report.findings, entries)
    assert new_findings == [], "\n".join(f.format() for f in new_findings)
    assert stale == [], f"stale baseline entries: {[e.key() for e in stale]}"
    # Sanity: the run actually analysed the package, with all six rules.
    assert report.files_analyzed > 50
    assert len(report.rules_run) >= 6


def test_committed_baseline_carries_no_unexplained_debt():
    # The acceptance criterion pins an empty baseline: every real finding
    # was either fixed or suppressed in-line with a justifying comment.
    with open(BASELINE, encoding="utf-8") as handle:
        payload = json.load(handle)
    assert payload["entries"] == []
