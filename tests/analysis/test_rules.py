"""Per-rule fixture tests: each rule fires on a positive snippet, stays
quiet on a negative one, and honours ``# repro: ignore[rule-id]``."""

from __future__ import annotations


# ---------------------------------------------------------------------- #
# lock-discipline
# ---------------------------------------------------------------------- #
_LOCKED_CLASS_HEADER = """\
import threading

class Corpus:
    def __init__(self):
        self._serving_lock = threading.Lock()
        self._entries = {}
"""


class TestLockDiscipline:
    RULE = "lock-discipline"

    def test_unlocked_write_fires(self, lint_tree):
        source = _LOCKED_CLASS_HEADER + """\

    def register(self, name, entry):
        self._entries[name] = entry
"""
        findings = lint_tree({"repro/corpus.py": source}, self.RULE)
        assert [f.rule_id for f in findings] == [self.RULE]
        assert "_entries" in findings[0].message

    def test_locked_write_is_clean(self, lint_tree):
        source = _LOCKED_CLASS_HEADER + """\

    def register(self, name, entry):
        with self._serving_lock:
            self._entries[name] = entry
"""
        assert lint_tree({"repro/corpus.py": source}, self.RULE) == []

    def test_mutating_method_call_fires(self, lint_tree):
        source = _LOCKED_CLASS_HEADER + """\

    def clear(self):
        self._entries.clear()
"""
        findings = lint_tree({"repro/corpus.py": source}, self.RULE)
        assert [f.rule_id for f in findings] == [self.RULE]

    def test_delete_outside_lock_fires(self, lint_tree):
        source = _LOCKED_CLASS_HEADER + """\

    def remove(self, name):
        del self._entries[name]
"""
        assert len(lint_tree({"repro/corpus.py": source}, self.RULE)) == 1

    def test_reassignment_outside_lock_fires(self, lint_tree):
        source = _LOCKED_CLASS_HEADER + """\

    def reset(self):
        self._entries = {}
"""
        assert len(lint_tree({"repro/corpus.py": source}, self.RULE)) == 1

    def test_read_is_not_flagged(self, lint_tree):
        source = _LOCKED_CLASS_HEADER + """\

    def get(self, name):
        return self._entries.get(name)

    def names(self):
        return sorted(self._entries)
"""
        assert lint_tree({"repro/corpus.py": source}, self.RULE) == []

    def test_init_writes_exempt(self, lint_tree):
        assert lint_tree({"repro/corpus.py": _LOCKED_CLASS_HEADER}, self.RULE) == []

    def test_class_without_lock_is_ignored(self, lint_tree):
        source = """\
class Plain:
    def __init__(self):
        self._entries = {}

    def register(self, name, entry):
        self._entries[name] = entry
"""
        assert lint_tree({"repro/corpus.py": source}, self.RULE) == []

    def test_nested_lock_scope_applies(self, lint_tree):
        source = _LOCKED_CLASS_HEADER + """\

    def swap(self, name, entry):
        with self._serving_lock:
            if name in self._entries:
                self._entries[name] = entry
"""
        assert lint_tree({"repro/corpus.py": source}, self.RULE) == []

    def test_suppression(self, lint_tree):
        source = _LOCKED_CLASS_HEADER + """\

    def register(self, name, entry):
        self._entries[name] = entry  # repro: ignore[lock-discipline]
"""
        assert lint_tree({"repro/corpus.py": source}, self.RULE) == []


# ---------------------------------------------------------------------- #
# wire-determinism
# ---------------------------------------------------------------------- #
class TestWireDeterminism:
    RULE = "wire-determinism"

    def test_time_time_fires_in_wire_module(self, lint_tree):
        source = "import time\n\ndef stamp():\n    return time.time()\n"
        findings = lint_tree({"repro/api/protocol.py": source}, self.RULE)
        assert [f.rule_id for f in findings] == [self.RULE]
        assert "time.time" in findings[0].message

    def test_builtin_hash_fires(self, lint_tree):
        source = "def shard_of(name, shards):\n    return hash(name) % shards\n"
        findings = lint_tree({"repro/cluster/partition.py": source}, self.RULE)
        assert len(findings) == 1
        assert "hash()" in findings[0].message

    def test_random_fires(self, lint_tree):
        source = "import random\n\ndef pick():\n    return random.choice([1, 2])\n"
        assert len(lint_tree({"repro/api/service.py": source}, self.RULE)) == 1

    def test_id_fires(self, lint_tree):
        source = "def tag(obj):\n    return id(obj)\n"
        assert len(lint_tree({"repro/api/http.py": source}, self.RULE)) == 1

    def test_datetime_now_fires(self, lint_tree):
        source = "import datetime\n\ndef when():\n    return datetime.datetime.now()\n"
        assert len(lint_tree({"repro/api/protocol.py": source}, self.RULE)) == 1

    def test_perf_counter_is_sanctioned(self, lint_tree):
        source = "import time\n\ndef elapsed(t0):\n    return time.perf_counter() - t0\n"
        assert lint_tree({"repro/api/service.py": source}, self.RULE) == []

    def test_hashlib_is_clean(self, lint_tree):
        source = (
            "import hashlib\n\n"
            "def shard_of(name, shards):\n"
            "    digest = hashlib.sha1(name.encode()).digest()\n"
            "    return digest[0] % shards\n"
        )
        assert lint_tree({"repro/cluster/partition.py": source}, self.RULE) == []

    def test_non_wire_module_is_out_of_scope(self, lint_tree):
        source = "import time\n\ndef stamp():\n    return time.time()\n"
        assert lint_tree({"repro/eval/timing.py": source}, self.RULE) == []

    def test_suppression(self, lint_tree):
        source = (
            "import time\n\n"
            "def stamp():\n"
            "    return time.time()  # repro: ignore[wire-determinism]\n"
        )
        assert lint_tree({"repro/api/protocol.py": source}, self.RULE) == []


# ---------------------------------------------------------------------- #
# telemetry-discipline
# ---------------------------------------------------------------------- #
class TestTelemetryDiscipline:
    RULE = "telemetry-discipline"

    def test_perf_counter_fires_in_serving_module(self, lint_tree):
        source = "import time\n\ndef elapsed(t0):\n    return time.perf_counter() - t0\n"
        findings = lint_tree({"repro/api/gateway.py": source}, self.RULE)
        assert [f.rule_id for f in findings] == [self.RULE]
        assert "repro.obs.clock.perf_counter" in findings[0].message

    def test_monotonic_fires(self, lint_tree):
        source = "import time\n\ndef deadline(t):\n    return time.monotonic() + t\n"
        findings = lint_tree({"repro/cluster/remote.py": source}, self.RULE)
        assert len(findings) == 1
        assert "monotonic" in findings[0].message

    def test_wall_clock_fires(self, lint_tree):
        source = "import time\n\ndef stamp():\n    return time.time()\n"
        findings = lint_tree({"repro/utils/timing.py": source}, self.RULE)
        assert len(findings) == 1
        assert "wall_clock" in findings[0].message

    def test_obs_clock_seam_is_clean(self, lint_tree):
        source = (
            "from repro.obs.clock import perf_counter\n\n"
            "def elapsed(t0):\n"
            "    return perf_counter() - t0\n"
        )
        assert lint_tree({"repro/api/gateway.py": source}, self.RULE) == []

    def test_time_sleep_is_allowed(self, lint_tree):
        source = "import time\n\ndef pace():\n    time.sleep(0.02)\n"
        assert lint_tree({"repro/cluster/remote.py": source}, self.RULE) == []

    def test_non_serving_module_is_out_of_scope(self, lint_tree):
        source = "import time\n\ndef elapsed(t0):\n    return time.perf_counter() - t0\n"
        assert lint_tree({"repro/eval/harness.py": source}, self.RULE) == []

    def test_suppression(self, lint_tree):
        source = (
            "import time\n\n"
            "def elapsed(t0):\n"
            "    return time.perf_counter() - t0  # repro: ignore[telemetry-discipline]\n"
        )
        assert lint_tree({"repro/api/gateway.py": source}, self.RULE) == []


# ---------------------------------------------------------------------- #
# error-contract
# ---------------------------------------------------------------------- #
_ERRORS_MODULE = """\
class ExtractError(Exception):
    pass

class PagingError(ExtractError):
    pass

class OverloadedError(ExtractError):
    pass
"""


def _protocol_module(codes, statuses, mapping):
    lines = ["ERROR_CODES = (" + ", ".join(repr(c) for c in codes) + ",)"]
    lines.append(
        "HTTP_STATUS_BY_CODE = {"
        + ", ".join(f"{code!r}: {status}" for code, status in statuses)
        + "}"
    )
    lines.append(
        "_CODE_BY_EXCEPTION = ("
        + ", ".join(f"({name}, {code!r})" for name, code in mapping)
        + ("," if mapping else "")
        + ")"
    )
    return _ERRORS_MODULE + "\n" + "\n".join(lines) + "\n"


class TestErrorContract:
    RULE = "error-contract"

    def _files(self, codes, statuses, mapping):
        return {
            "repro/errors.py": _ERRORS_MODULE,
            "repro/api/protocol.py": _protocol_module(codes, statuses, mapping),
        }

    def test_consistent_tables_are_clean(self, lint_tree):
        files = self._files(
            codes=("invalid_page", "overloaded", "internal"),
            statuses=[("invalid_page", 400), ("overloaded", 503), ("internal", 500)],
            mapping=[("PagingError", "invalid_page"), ("OverloadedError", "overloaded")],
        )
        assert lint_tree(files, self.RULE) == []

    def test_code_without_http_status_fires(self, lint_tree):
        files = self._files(
            codes=("invalid_page", "internal"),
            statuses=[("internal", 500)],
            mapping=[("PagingError", "invalid_page")],
        )
        findings = lint_tree(files, self.RULE)
        assert len(findings) == 1
        assert "invalid_page" in findings[0].message
        assert "HTTP_STATUS_BY_CODE" in findings[0].message

    def test_status_for_undeclared_code_fires(self, lint_tree):
        files = self._files(
            codes=("internal",),
            statuses=[("internal", 500), ("ghost_code", 418)],
            mapping=[],
        )
        findings = lint_tree(files, self.RULE)
        assert len(findings) == 1
        assert "ghost_code" in findings[0].message

    def test_mapping_to_undeclared_code_fires(self, lint_tree):
        files = self._files(
            codes=("internal",),
            statuses=[("internal", 500)],
            mapping=[("PagingError", "invalid_page")],
        )
        findings = lint_tree(files, self.RULE)
        assert any("undeclared code 'invalid_page'" in f.message for f in findings)

    def test_missing_internal_fallback_fires(self, lint_tree):
        files = self._files(
            codes=("invalid_page",),
            statuses=[("invalid_page", 400)],
            mapping=[("PagingError", "invalid_page")],
        )
        findings = lint_tree(files, self.RULE)
        assert any("'internal' fallback" in f.message for f in findings)

    def test_unknown_exception_class_fires(self, lint_tree):
        files = self._files(
            codes=("internal",),
            statuses=[("internal", 500)],
            mapping=[("GhostError", "internal")],
        )
        findings = lint_tree(files, self.RULE)
        assert any("GhostError" in f.message for f in findings)

    def test_real_protocol_module_is_clean(self, lint_tree):
        import repro.api.protocol as protocol_mod
        import repro.errors as errors_mod

        files = {
            "repro/errors.py": open(errors_mod.__file__, encoding="utf-8").read(),
            "repro/api/protocol.py": open(
                protocol_mod.__file__, encoding="utf-8"
            ).read(),
        }
        assert lint_tree(files, self.RULE) == []

    def test_suppression(self, lint_tree):
        protocol = _protocol_module(
            codes=("invalid_page",),
            statuses=[("invalid_page", 400)],
            mapping=[],
        )
        # The missing-'internal' finding anchors at the ERROR_CODES line.
        protocol = protocol.replace(
            "ERROR_CODES = ",
            "# repro: ignore[error-contract]\nERROR_CODES = ",
        )
        files = {"repro/errors.py": _ERRORS_MODULE, "repro/api/protocol.py": protocol}
        assert lint_tree(files, self.RULE) == []


# ---------------------------------------------------------------------- #
# no-silent-swallow
# ---------------------------------------------------------------------- #
class TestNoSilentSwallow:
    RULE = "no-silent-swallow"

    def test_broad_except_pass_fires(self, lint_tree):
        source = """\
def handle(request):
    try:
        return request()
    except Exception:
        pass
"""
        findings = lint_tree({"repro/api/gateway.py": source}, self.RULE)
        assert [f.rule_id for f in findings] == [self.RULE]

    def test_bare_except_fires(self, lint_tree):
        source = """\
def handle(request):
    try:
        return request()
    except:
        return None
"""
        findings = lint_tree({"repro/corpus.py": source}, self.RULE)
        assert len(findings) == 1
        assert "bare" in findings[0].message

    def test_base_exception_in_tuple_fires(self, lint_tree):
        source = """\
def handle(request):
    try:
        return request()
    except (ValueError, BaseException) as exc:
        return exc
"""
        assert len(lint_tree({"repro/cluster/router.py": source}, self.RULE)) == 1

    def test_narrow_except_is_clean(self, lint_tree):
        source = """\
from repro.errors import ExtractError

def handle(request):
    try:
        return request()
    except (ValueError, ExtractError):
        return None
"""
        assert lint_tree({"repro/api/gateway.py": source}, self.RULE) == []

    def test_pure_reraise_is_clean(self, lint_tree):
        source = """\
def handle(request):
    try:
        return request()
    except Exception:
        raise
"""
        assert lint_tree({"repro/api/gateway.py": source}, self.RULE) == []

    def test_non_serving_path_is_out_of_scope(self, lint_tree):
        source = """\
def best_effort(fn):
    try:
        return fn()
    except Exception:
        return None
"""
        assert lint_tree({"repro/eval/harness.py": source}, self.RULE) == []

    def test_suppression(self, lint_tree):
        source = """\
def handle(request):
    try:
        return request()
    # justified: the boundary answers 500 for any crash
    # repro: ignore[no-silent-swallow]
    except Exception:
        return None
"""
        assert lint_tree({"repro/api/http.py": source}, self.RULE) == []


# ---------------------------------------------------------------------- #
# executor-lifecycle
# ---------------------------------------------------------------------- #
class TestExecutorLifecycle:
    RULE = "executor-lifecycle"

    def test_submit_without_require_open_fires(self, lint_tree):
        source = """\
from repro.api.executors import ConcurrentExecutor

class EagerExecutor(ConcurrentExecutor):
    def submit(self, fn, *args):
        return fn(*args)
"""
        findings = lint_tree({"repro/cluster/router.py": source}, self.RULE)
        assert len(findings) == 1
        assert "_require_open" in findings[0].message

    def test_submit_with_require_open_is_clean(self, lint_tree):
        source = """\
from repro.api.executors import ConcurrentExecutor

class GatedExecutor(ConcurrentExecutor):
    def submit(self, fn, *args):
        self._require_open()
        return fn(*args)
"""
        assert lint_tree({"repro/cluster/router.py": source}, self.RULE) == []

    def test_submit_delegating_to_super_is_clean(self, lint_tree):
        source = """\
from repro.api.executors import ConcurrentExecutor

class LoggingExecutor(ConcurrentExecutor):
    def submit(self, fn, *args):
        return super().submit(fn, *args)
"""
        assert lint_tree({"repro/cluster/router.py": source}, self.RULE) == []

    def test_close_without_closed_flag_fires(self, lint_tree):
        source = """\
from repro.api.executors import Executor

class LeakyExecutor(Executor):
    def close(self):
        self._pool = None
"""
        findings = lint_tree({"repro/api/pool.py": source}, self.RULE)
        assert len(findings) == 1
        assert "close" in findings[0].message

    def test_close_setting_flag_is_clean(self, lint_tree):
        source = """\
from repro.api.executors import Executor

class HonestExecutor(Executor):
    def close(self):
        self._closed = True
"""
        assert lint_tree({"repro/api/pool.py": source}, self.RULE) == []

    def test_close_calling_super_is_clean(self, lint_tree):
        source = """\
from repro.api.executors import ConcurrentExecutor

class ChainedExecutor(ConcurrentExecutor):
    def close(self):
        super().close()
"""
        assert lint_tree({"repro/api/pool.py": source}, self.RULE) == []

    def test_pool_outside_executors_module_fires(self, lint_tree):
        source = """\
from concurrent.futures import ThreadPoolExecutor

def fan_out(tasks):
    with ThreadPoolExecutor(max_workers=4) as pool:
        return list(pool.map(lambda t: t(), tasks))
"""
        findings = lint_tree({"repro/cluster/router.py": source}, self.RULE)
        assert len(findings) == 1
        assert "Executor seam" in findings[0].message

    def test_pool_inside_executors_module_is_clean(self, lint_tree):
        source = """\
from concurrent.futures import ThreadPoolExecutor

def make_pool(workers):
    return ThreadPoolExecutor(max_workers=workers)
"""
        assert lint_tree({"repro/api/executors.py": source}, self.RULE) == []

    def test_unrelated_class_is_ignored(self, lint_tree):
        source = """\
class Service:
    def submit(self, fn):
        return fn()

    def close(self):
        pass
"""
        assert lint_tree({"repro/api/service.py": source}, self.RULE) == []

    def test_suppression(self, lint_tree):
        source = """\
from repro.api.executors import ConcurrentExecutor

class EagerExecutor(ConcurrentExecutor):
    # repro: ignore[executor-lifecycle]
    def submit(self, fn, *args):
        return fn(*args)
"""
        assert lint_tree({"repro/cluster/router.py": source}, self.RULE) == []


# ---------------------------------------------------------------------- #
# no-print-in-library
# ---------------------------------------------------------------------- #
class TestNoPrintInLibrary:
    RULE = "no-print-in-library"

    def test_library_print_fires(self, lint_tree):
        source = "def render(tree):\n    print(tree)\n"
        findings = lint_tree({"repro/xmltree/serialize.py": source}, self.RULE)
        assert [f.rule_id for f in findings] == [self.RULE]

    def test_cli_module_exempt(self, lint_tree):
        source = "def main():\n    print('hello')\n"
        assert lint_tree({"repro/cli.py": source}, self.RULE) == []

    def test_tests_and_examples_exempt(self, lint_tree):
        source = "def show():\n    print('x')\n"
        findings = lint_tree(
            {"examples/demo.py": source, "tests/test_demo.py": source}, self.RULE
        )
        assert findings == []

    def test_method_named_print_is_clean(self, lint_tree):
        source = "def render(report):\n    report.print()\n"
        assert lint_tree({"repro/eval/report.py": source}, self.RULE) == []

    def test_suppression(self, lint_tree):
        source = (
            "def render(tree):\n"
            "    print(tree)  # repro: ignore[no-print-in-library]\n"
        )
        assert lint_tree({"repro/xmltree/serialize.py": source}, self.RULE) == []


# ---------------------------------------------------------------------- #
# no-unbounded-retry
# ---------------------------------------------------------------------- #
class TestNoUnboundedRetry:
    RULE = "no-unbounded-retry"

    def test_while_true_retry_fires(self, lint_tree):
        source = """\
def fetch(client):
    while True:
        try:
            return client.get()
        except OSError:
            continue
"""
        findings = lint_tree({"repro/api/client.py": source}, self.RULE)
        assert [f.rule_id for f in findings] == [self.RULE]
        assert "no attempt bound" in findings[0].message or "forever" in findings[0].message

    def test_bounded_retry_without_backoff_fires(self, lint_tree):
        source = """\
def fetch(client):
    for attempt in range(5):
        try:
            return client.get()
        except ConnectionError:
            pass
"""
        findings = lint_tree({"repro/api/client.py": source}, self.RULE)
        assert [f.rule_id for f in findings] == [self.RULE]
        assert "backoff" in findings[0].message

    def test_bounded_retry_with_backoff_is_clean(self, lint_tree):
        source = """\
import time

def fetch(client):
    for attempt in range(5):
        try:
            return client.get()
        except OSError:
            if attempt == 4:
                raise
            time.sleep(0.05 * 2 ** attempt)
"""
        assert lint_tree({"repro/api/client.py": source}, self.RULE) == []

    def test_terminal_handler_is_not_a_retry(self, lint_tree):
        source = """\
def serve(reader):
    while True:
        try:
            reader.read()
        except ConnectionError:
            break
"""
        assert lint_tree({"repro/api/http.py": source}, self.RULE) == []

    def test_non_transport_exception_is_out_of_scope(self, lint_tree):
        source = """\
def parse_all(items):
    while True:
        try:
            return [int(item) for item in items.pop()]
        except ValueError:
            continue
"""
        assert lint_tree({"repro/corpus.py": source}, self.RULE) == []

    def test_dotted_transport_name_fires(self, lint_tree):
        source = """\
import http.client

def fetch(client):
    while True:
        try:
            return client.get()
        except http.client.HTTPException:
            continue
"""
        findings = lint_tree({"repro/api/client.py": source}, self.RULE)
        assert [f.rule_id for f in findings] == [self.RULE]

    def test_transport_constant_name_fires(self, lint_tree):
        source = """\
_TRANSPORT_ERRORS = (OSError,)

def fetch(client):
    while True:
        try:
            return client.get()
        except _TRANSPORT_ERRORS:
            continue
"""
        findings = lint_tree({"repro/cluster/remote.py": source}, self.RULE)
        assert [f.rule_id for f in findings] == [self.RULE]

    def test_handler_in_nested_loop_belongs_to_inner(self, lint_tree):
        # The inner for is bounded and backs off -> clean, even though the
        # outer loop is while True (the handler retries the inner loop).
        source = """\
import time

def drain(client):
    while True:
        for attempt in range(3):
            try:
                client.poll()
            except OSError:
                time.sleep(0.1)
        client.commit()
"""
        assert lint_tree({"repro/api/client.py": source}, self.RULE) == []

    def test_broad_except_is_not_transport(self, lint_tree):
        # except Exception is no-silent-swallow's territory, not a retry.
        source = """\
def serve(handler):
    while True:
        try:
            handler.step()
        except Exception:
            handler.log_failure()
"""
        assert lint_tree({"repro/api/http.py": source}, self.RULE) == []

    def test_suppression(self, lint_tree):
        source = """\
def probe(endpoints):
    for endpoint in endpoints:
        try:
            endpoint.health()
        # repro: ignore[no-unbounded-retry]
        except OSError:
            endpoint.mark_down()
"""
        assert lint_tree({"repro/cluster/health.py": source}, self.RULE) == []


# ---------------------------------------------------------------------- #
# format-version
# ---------------------------------------------------------------------- #
class TestFormatVersion:
    RULE = "format-version"

    def test_inline_text_magic_fires(self, lint_tree):
        source = '''\
TEXT_FORMAT_VERSION = 3

def save(handle):
    handle.write("#extract-index v3\\n")
'''
        findings = lint_tree({"repro/index/storage.py": source}, self.RULE)
        assert [f.rule_id for f in findings] == [self.RULE]
        assert "inline format magic" in findings[0].message

    def test_inline_binary_magic_fires(self, lint_tree):
        source = '''\
BINARY_FORMAT_VERSION = 4

def save(handle):
    handle.write(b"EXIDXBIN")
'''
        findings = lint_tree({"repro/index/binfmt.py": source}, self.RULE)
        assert [f.rule_id for f in findings] == [self.RULE]

    def test_magic_constant_with_version_is_clean(self, lint_tree):
        source = '''\
TEXT_FORMAT_VERSION = 3
_MAGIC = f"#extract-index v{TEXT_FORMAT_VERSION}"

def save(handle):
    handle.write(_MAGIC + "\\n")
'''
        assert lint_tree({"repro/index/storage.py": source}, self.RULE) == []

    def test_magic_without_format_version_fires(self, lint_tree):
        source = '''\
_HEADER_MAGIC = b"EXIDXBIN"

def save(handle):
    handle.write(_HEADER_MAGIC)
'''
        findings = lint_tree({"repro/index/binfmt.py": source}, self.RULE)
        assert [f.rule_id for f in findings] == [self.RULE]
        assert "_FORMAT_VERSION" in findings[0].message

    def test_legacy_magic_tuple_is_clean(self, lint_tree):
        source = '''\
CLUSTER_MANIFEST_FORMAT_VERSION = 1
_MAGIC = f"#extract-cluster v{CLUSTER_MANIFEST_FORMAT_VERSION}"
_KNOWN_MAGICS = (_MAGIC, "#extract-cluster v0")
'''
        assert lint_tree({"repro/cluster/partition.py": source}, self.RULE) == []

    def test_module_outside_paths_is_ignored(self, lint_tree):
        source = '''\
def save(handle):
    handle.write("#extract-index v3\\n")
'''
        assert lint_tree({"repro/search/engine.py": source}, self.RULE) == []

    def test_suppression(self, lint_tree):
        source = '''\
TEXT_FORMAT_VERSION = 3

def save(handle):
    handle.write("#extract-index v3\\n")  # repro: ignore[format-version]
'''
        assert lint_tree({"repro/index/storage.py": source}, self.RULE) == []


# ---------------------------------------------------------------------- #
# seeded-rng
# ---------------------------------------------------------------------- #
class TestSeededRng:
    RULE = "seeded-rng"

    def test_module_level_draw_fires(self, lint_tree):
        source = "import random\n\ndef pick(pool):\n    return random.choice(pool)\n"
        findings = lint_tree({"repro/eval/loadgen.py": source}, self.RULE)
        assert [f.rule_id for f in findings] == [self.RULE]
        assert "random.choice" in findings[0].message

    def test_bare_imported_draw_fires(self, lint_tree):
        source = "from random import random\n\ndef draw():\n    return random()\n"
        assert len(lint_tree({"repro/eval/workload.py": source}, self.RULE)) == 1

    def test_system_random_fires(self, lint_tree):
        source = "import random\n\ndef rng():\n    return random.SystemRandom()\n"
        assert len(lint_tree({"repro/eval/loadgen.py": source}, self.RULE)) == 1

    def test_seedless_random_fires(self, lint_tree):
        source = "import random\n\ndef rng():\n    return random.Random()\n"
        findings = lint_tree({"repro/eval/loadgen.py": source}, self.RULE)
        assert len(findings) == 1
        assert "seed" in findings[0].message

    def test_seeded_constructor_is_sanctioned(self, lint_tree):
        source = (
            "import random\n\n"
            "def rng(seed):\n"
            "    return random.Random(seed)\n"
        )
        assert lint_tree({"repro/eval/loadgen.py": source}, self.RULE) == []

    def test_injected_instance_draws_are_clean(self, lint_tree):
        source = (
            "import random\n\n"
            "def plan(seed, pool):\n"
            "    rng = random.Random(seed)\n"
            "    return [rng.choice(pool), rng.random(), rng.expovariate(1.0)]\n"
        )
        assert lint_tree({"repro/eval/loadgen.py": source}, self.RULE) == []

    def test_non_eval_module_is_out_of_scope(self, lint_tree):
        source = "import random\n\ndef pick(pool):\n    return random.choice(pool)\n"
        assert lint_tree({"repro/datasets/base.py": source}, self.RULE) == []

    def test_suppression(self, lint_tree):
        source = (
            "import random\n\n"
            "def jitter():\n"
            "    return random.random()  # repro: ignore[seeded-rng]\n"
        )
        assert lint_tree({"repro/eval/loadgen.py": source}, self.RULE) == []
