"""The ``lint`` CLI command: exit codes, JSON round trip, baseline flags."""

from __future__ import annotations

import io
import json
import os

from repro.analysis import REPORT_SCHEMA_VERSION, finding_from_dict, registered_rule_ids
from repro.cli import main


def run_cli(*argv: str) -> tuple[int, str]:
    buffer = io.StringIO()
    code = main(list(argv), out=buffer)
    return code, buffer.getvalue()


def _write_tree(tmp_path, files: dict[str, str]) -> str:
    for rel_path, source in files.items():
        target = tmp_path / rel_path
        os.makedirs(target.parent, exist_ok=True)
        target.write_text(source, encoding="utf-8")
    return str(tmp_path)


_CLEAN = {"repro/util.py": "def double(x):\n    return 2 * x\n"}
_DIRTY = {"repro/util.py": "def show(x):\n    print(x)\n    print(x)\n"}


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path):
        code, output = run_cli("lint", _write_tree(tmp_path, _CLEAN))
        assert code == 0
        assert "0 finding(s)" in output

    def test_findings_exit_one(self, tmp_path):
        code, output = run_cli("lint", _write_tree(tmp_path, _DIRTY))
        assert code == 1
        assert "no-print-in-library" in output
        assert "2 finding(s)" in output

    def test_unknown_rule_is_usage_error(self, tmp_path):
        code, output = run_cli(
            "lint", "--rule", "no-such-rule", _write_tree(tmp_path, _CLEAN)
        )
        assert code == 2
        assert "unknown rule" in output

    def test_missing_path_is_usage_error(self, tmp_path):
        code, output = run_cli("lint", str(tmp_path / "missing"))
        assert code == 2
        assert "no such file" in output

    def test_rule_filter_limits_findings(self, tmp_path):
        code, _ = run_cli(
            "lint", "--rule", "wire-determinism", _write_tree(tmp_path, _DIRTY)
        )
        assert code == 0  # the print findings belong to a rule not selected


class TestJsonOutput:
    def test_json_parses_and_round_trips(self, tmp_path):
        code, output = run_cli("lint", "--json", _write_tree(tmp_path, _DIRTY))
        assert code == 1
        payload = json.loads(output)
        assert payload["schema_version"] == REPORT_SCHEMA_VERSION
        assert payload["counts"]["total"] == 2
        assert payload["counts"]["by_rule"] == {"no-print-in-library": 2}
        assert payload["rules"] == registered_rule_ids()
        # Every finding entry rebuilds into a Finding losslessly.
        rebuilt = [finding_from_dict(entry) for entry in payload["findings"]]
        assert [f.to_dict() for f in rebuilt] == payload["findings"]

    def test_json_clean_tree(self, tmp_path):
        code, output = run_cli("lint", "--json", _write_tree(tmp_path, _CLEAN))
        assert code == 0
        payload = json.loads(output)
        assert payload["findings"] == []
        assert payload["baseline"] == {"suppressed": 0, "stale": []}


class TestListRules:
    def test_lists_every_registered_rule(self):
        code, output = run_cli("lint", "--list-rules")
        assert code == 0
        for rule_id in registered_rule_ids():
            assert rule_id in output


class TestBaselineFlags:
    def test_update_baseline_then_clean(self, tmp_path):
        tree = _write_tree(tmp_path, _DIRTY)
        baseline = str(tmp_path / "baseline.json")
        code, output = run_cli("lint", "--update-baseline", "--baseline", baseline, tree)
        assert code == 0
        assert "wrote 1 baseline entry" in output  # two findings, one identity
        code, output = run_cli("lint", "--strict", "--baseline", baseline, tree)
        assert code == 0
        assert "baselined" in output

    def test_stale_entry_fails_only_strict(self, tmp_path):
        tree = _write_tree(tmp_path, _DIRTY)
        baseline = str(tmp_path / "baseline.json")
        assert run_cli("lint", "--update-baseline", "--baseline", baseline, tree)[0] == 0
        # Fix the finding: the baseline entry goes stale.
        _write_tree(tmp_path, _CLEAN)
        code, output = run_cli("lint", "--baseline", baseline, tree)
        assert code == 0
        assert "stale baseline entry" in output
        code, output = run_cli("lint", "--strict", "--baseline", baseline, tree)
        assert code == 1
        assert "stale baseline entry" in output

    def test_new_finding_fails_despite_baseline(self, tmp_path):
        tree = _write_tree(tmp_path, _DIRTY)
        baseline = str(tmp_path / "baseline.json")
        assert run_cli("lint", "--update-baseline", "--baseline", baseline, tree)[0] == 0
        _write_tree(
            tmp_path,
            {"repro/other.py": "import time\n\ndef f():\n    print(time.asctime())\n"},
        )
        code, output = run_cli("lint", "--baseline", baseline, tree)
        assert code == 1
        assert "repro/other.py" in output

    def test_corrupt_baseline_is_usage_error(self, tmp_path):
        tree = _write_tree(tmp_path, _CLEAN)
        baseline = tmp_path / "baseline.json"
        baseline.write_text("{broken", encoding="utf-8")
        code, output = run_cli("lint", "--baseline", str(baseline), tree)
        assert code == 2
        assert "not valid JSON" in output
