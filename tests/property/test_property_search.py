"""Property-based tests: SLCA/ELCA agree with their brute-force definitions."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings

from repro.index.postings import PostingList
from repro.search.elca import compute_elca
from repro.search.lca import brute_force_elca, brute_force_slca
from repro.search.slca import compute_slca
from tests.property.strategies import posting_list_groups

COMMON_SETTINGS = settings(
    max_examples=80, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@COMMON_SETTINGS
@given(posting_list_groups())
def test_slca_matches_brute_force(posting_lists):
    assert compute_slca(posting_lists) == brute_force_slca(posting_lists)


@COMMON_SETTINGS
@given(posting_list_groups())
def test_elca_matches_brute_force(posting_lists):
    assert compute_elca(posting_lists) == brute_force_elca(posting_lists)


@COMMON_SETTINGS
@given(posting_list_groups())
def test_slca_subset_of_elca(posting_lists):
    assert set(compute_slca(posting_lists)) <= set(compute_elca(posting_lists))


@COMMON_SETTINGS
@given(posting_list_groups())
def test_slca_is_antichain_and_contains_all_keywords(posting_lists):
    slcas = compute_slca(posting_lists)
    for first in slcas:
        for second in slcas:
            if first != second:
                assert not first.is_ancestor_of(second)
        for postings in posting_lists:
            assert postings.has_descendant_of(first)


@COMMON_SETTINGS
@given(posting_list_groups())
def test_every_elca_contains_all_keywords(posting_lists):
    for elca in compute_elca(posting_lists):
        for postings in posting_lists:
            assert postings.has_descendant_of(elca)


@COMMON_SETTINGS
@given(posting_list_groups())
def test_posting_list_neighbours_consistent(posting_lists):
    merged = PostingList.union_all(posting_lists)
    for label in merged:
        assert merged.left_neighbour(label) == label or merged.left_neighbour(label) < label
        assert merged.right_neighbour(label) == label
