"""Property-based tests for Dewey label algebra."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmltree.dewey import Dewey, remove_ancestors, remove_descendants
from tests.property.strategies import dewey_labels, label_sets


@given(dewey_labels(), dewey_labels())
def test_common_ancestor_is_commutative(a, b):
    assert Dewey.common_ancestor(a, b) == Dewey.common_ancestor(b, a)


@given(dewey_labels(), dewey_labels())
def test_common_ancestor_is_ancestor_or_self_of_both(a, b):
    lca = Dewey.common_ancestor(a, b)
    assert lca.is_ancestor_or_self(a)
    assert lca.is_ancestor_or_self(b)


@given(dewey_labels(), dewey_labels())
def test_common_ancestor_is_deepest(a, b):
    lca = Dewey.common_ancestor(a, b)
    # any strictly deeper prefix of `a` must not be an ancestor-or-self of `b`
    if lca.depth < a.depth:
        deeper = a.prefix(lca.depth + 1)
        assert not deeper.is_ancestor_or_self(b)


@given(dewey_labels())
def test_parse_str_round_trip(label):
    assert Dewey.parse(str(label)) == label


@given(dewey_labels(), dewey_labels())
def test_document_order_matches_prefix_semantics(a, b):
    if a.is_ancestor_of(b):
        assert a < b
    if a < b and a.is_ancestor_or_self(b):
        assert a.is_ancestor_of(b)


@given(dewey_labels(), dewey_labels())
def test_tree_distance_symmetric_and_triangle_with_zero(a, b):
    assert a.tree_distance(b) == b.tree_distance(a)
    assert a.tree_distance(a) == 0
    assert a.tree_distance(b) >= 0


@given(label_sets())
def test_remove_ancestors_returns_antichain_preserving_maximal_elements(labels):
    result = remove_ancestors(labels)
    as_set = set(result)
    assert as_set <= set(labels)
    # no pair is in ancestor/descendant relation
    for first in result:
        for second in result:
            if first != second:
                assert not first.is_ancestor_of(second)
    # every dropped label has a descendant that was kept
    for label in labels:
        if label not in as_set:
            assert any(label.is_ancestor_of(kept) for kept in result)


@given(label_sets())
def test_remove_descendants_returns_antichain_preserving_minimal_elements(labels):
    result = remove_descendants(labels)
    as_set = set(result)
    assert as_set <= set(labels)
    for first in result:
        for second in result:
            if first != second:
                assert not first.is_ancestor_of(second)
    for label in labels:
        if label not in as_set:
            assert any(kept.is_ancestor_of(label) for kept in result)


@given(label_sets())
def test_sorted_labels_are_preorder(labels):
    ordered = sorted(labels)
    # ancestors always precede their descendants in the sorted order
    for index, label in enumerate(ordered):
        for later in ordered[index + 1 :]:
            assert not later.is_ancestor_of(label)
