"""Property test: incremental corpus state is byte-identical to a rebuild.

For randomized edit sequences (add / update / remove, with text-only and
structural edits mixed in) applied through the incremental lifecycle —
with queries interleaved so caches are populated, carried over and
selectively invalidated along the way — the corpus must serve
``SearchResponse``/``BatchResponse`` wire forms byte-identical to a corpus
registered from scratch with the final document set (ISSUE 3 acceptance
criterion).
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import BatchRequest, SearchRequest, SnippetService
from repro.corpus import Corpus
from repro.xmltree.diff import clone_tree
from repro.xmltree.node import XMLNode
from repro.xmltree.tree import XMLTree

TAGS = ("store", "item", "name", "city", "category", "info")
VALUES = ("texas", "houston", "austin", "suit", "outwear", "alpha", "beta")
QUERIES = ("store texas", "city houston", "item suit", "alpha", "name beta")
DOC_NAMES = ("doc-a", "doc-b", "doc-c")


@st.composite
def small_trees(draw):
    """A small random document over the shared vocabulary."""

    def build(depth: int) -> XMLNode:
        node = XMLNode(draw(st.sampled_from(TAGS)))
        if depth >= 3 or draw(st.booleans()):
            node.text = draw(st.sampled_from(VALUES))
            return node
        for _ in range(draw(st.integers(min_value=1, max_value=3))):
            node.append_child(build(depth + 1))
        return node

    root = XMLNode("root")
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        root.append_child(build(1))
    return XMLTree(root, name="property-doc")


@st.composite
def text_edit(draw, tree: XMLTree):
    """A text-only edited copy of ``tree`` (1-3 value changes)."""
    copy = clone_tree(tree)
    candidates = [node for node in copy.iter_nodes() if node.has_text_value]
    if not candidates:
        return copy
    victims = draw(
        st.lists(
            st.sampled_from(candidates),
            min_size=1,
            max_size=min(3, len(candidates)),
            unique_by=id,
        )
    )
    for node in victims:
        # "" occasionally: blanking a value flips has_text_value, which
        # must route through the structural-rebuild fallback.
        node.text = draw(st.sampled_from(VALUES + ("",)))
    return copy


@st.composite
def edit_sequences(draw):
    """Initial documents plus a sequence of lifecycle operations.

    Each operation is ("add"|"update-text"|"update-structural"|"remove",
    name, tree-or-None); updates on unregistered names become adds, removes
    of unregistered names are skipped at application time.
    """
    initial = {
        name: draw(small_trees())
        for name in draw(
            st.lists(st.sampled_from(DOC_NAMES), min_size=1, max_size=3, unique=True)
        )
    }
    operations = []
    registered = dict(initial)
    for _ in range(draw(st.integers(min_value=1, max_value=6))):
        name = draw(st.sampled_from(DOC_NAMES))
        if name in registered and draw(st.integers(min_value=0, max_value=9)) < 2:
            operations.append(("remove", name, None))
            del registered[name]
            continue
        if name in registered and draw(st.booleans()):
            edited = draw(text_edit(registered[name]))
            operations.append(("update", name, edited))
            registered[name] = edited
        else:
            tree = draw(small_trees())  # structural replace or brand-new add
            operations.append(("upsert", name, tree))
            registered[name] = tree
    return initial, operations, registered


def wire_search(service: SnippetService, document: str, query: str) -> str:
    response = service.run(
        SearchRequest(query=query, document=document, size_bound=6, page_size=2)
    )
    return json.dumps(response.to_dict(), sort_keys=True)


def wire_batch(service: SnippetService) -> str:
    response = service.run_batch(BatchRequest(queries=QUERIES[:3], size_bound=6))
    return json.dumps(response.to_dict(), sort_keys=True)


@settings(max_examples=25, deadline=None)
@given(edit_sequences())
def test_incremental_lifecycle_matches_from_scratch_rebuild(sequence):
    initial, operations, final = sequence

    corpus = Corpus()
    for name, tree in initial.items():
        corpus.add_tree(name, clone_tree(tree, name=name))
    service = SnippetService(corpus)

    def touch_caches() -> None:
        # Populate caches between operations so the carried-over entries
        # (not just cold evaluations) are what the final comparison serves.
        for name in corpus.names():
            for query in QUERIES[:2]:
                service.run(
                    SearchRequest(query=query, document=name, size_bound=6)
                )

    touch_caches()
    for kind, name, tree in operations:
        if kind == "remove":
            if name in corpus:
                corpus.remove_document(name)
        elif kind == "update":
            corpus.update_document(name, clone_tree(tree, name=name))
        else:
            corpus.apply_update(name, clone_tree(tree, name=name))
        touch_caches()

    rebuilt = Corpus()
    for name, tree in final.items():
        rebuilt.add_tree(name, clone_tree(tree, name=name))
    reference = SnippetService(rebuilt)

    assert sorted(corpus.names()) == sorted(rebuilt.names())
    for name in rebuilt.names():
        for query in QUERIES:
            assert wire_search(service, name, query) == wire_search(
                reference, name, query
            ), (name, query)
    if len(rebuilt) > 0:
        assert wire_batch(service) == wire_batch(reference)
