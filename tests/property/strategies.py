"""Hypothesis strategies shared by the property-based tests.

Random XML documents are drawn from a small tag/value vocabulary so that
tags repeat (producing entities) and values collide (producing non-trivial
feature statistics), which is the regime the algorithms care about.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.xmltree.dewey import Dewey
from repro.xmltree.node import XMLNode
from repro.xmltree.tree import XMLTree

TAGS = ("store", "item", "clothes", "name", "city", "category", "info", "box")
VALUES = ("texas", "houston", "austin", "suit", "outwear", "alpha", "beta", "gamma")


@st.composite
def dewey_labels(draw, max_depth: int = 6, max_ordinal: int = 4):
    """A random Dewey label (possibly the root)."""
    depth = draw(st.integers(min_value=0, max_value=max_depth))
    return Dewey(tuple(draw(st.integers(min_value=0, max_value=max_ordinal)) for _ in range(depth)))


@st.composite
def label_sets(draw, min_size: int = 1, max_size: int = 12):
    """A non-empty set of random Dewey labels."""
    return draw(st.lists(dewey_labels(), min_size=min_size, max_size=max_size, unique=True))


@st.composite
def xml_trees(draw, max_children: int = 4, max_depth: int = 4):
    """A random XML document over the small tag/value vocabulary."""

    def build(depth: int) -> XMLNode:
        tag = draw(st.sampled_from(TAGS))
        node = XMLNode(tag)
        if depth >= max_depth or draw(st.booleans()):
            # leaf: usually carries a value
            if draw(st.integers(min_value=0, max_value=3)):
                node.text = draw(st.sampled_from(VALUES))
            return node
        for _ in range(draw(st.integers(min_value=0, max_value=max_children))):
            node.append_child(build(depth + 1))
        if not node.children and draw(st.booleans()):
            node.text = draw(st.sampled_from(VALUES))
        return node

    root = XMLNode("root")
    for _ in range(draw(st.integers(min_value=1, max_value=max_children))):
        root.append_child(build(1))
    return XMLTree(root, name="hypothesis")


@st.composite
def posting_list_groups(draw, max_keywords: int = 3):
    """1-3 posting lists of random labels (keyword match lists)."""
    from repro.index.postings import PostingList

    count = draw(st.integers(min_value=1, max_value=max_keywords))
    return [PostingList(draw(label_sets(max_size=8))) for _ in range(count)]
