"""Property-based tests for the snippet pipeline invariants.

For random documents, random in-vocabulary queries and random size bounds:

* every snippet respects the bound and is a connected subtree of its result,
* the greedy selector never covers more items than the exact selector,
* feature statistics satisfy the §2.3 identities (the mean dominance score
  of a feature type is exactly 1).
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.index.builder import IndexBuilder
from repro.search.engine import SearchEngine
from repro.snippet.features import extract_features
from repro.snippet.generator import SnippetGenerator
from repro.snippet.optimal import OptimalInstanceSelector
from tests.property.strategies import VALUES, xml_trees

COMMON_SETTINGS = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@COMMON_SETTINGS
@given(xml_trees(), st.sampled_from(VALUES), st.integers(min_value=1, max_value=12))
def test_snippet_invariants_on_random_documents(tree, keyword, bound):
    index = IndexBuilder().build(tree)
    if index.keyword_matches(keyword).is_empty:
        return
    result_set = SearchEngine(index).search(keyword)
    if not result_set:
        return
    generator = SnippetGenerator(index.analyzer)
    for result in result_set:
        generated = generator.generate(result, size_bound=bound)
        snippet = generated.snippet
        # size bound respected
        assert snippet.size_edges <= bound
        # connected subtree rooted at the result root
        assert snippet.is_connected()
        assert snippet.contains_label(result.root)
        # every selected node belongs to the result subtree
        for label in snippet.node_labels:
            assert result.contains_label(label)
        # covered items really have their chosen instance inside the snippet
        for item in snippet.covered_items:
            assert snippet.contains_label(snippet.chosen_instances[item.identity])


@COMMON_SETTINGS
@given(xml_trees(), st.sampled_from(VALUES), st.integers(min_value=1, max_value=8))
def test_greedy_never_beats_optimal(tree, keyword, bound):
    index = IndexBuilder().build(tree)
    if not index.keyword_matches(keyword):
        return
    engine = SearchEngine(index)
    result_set = engine.search(keyword)
    if not result_set:
        return
    generator = SnippetGenerator(index.analyzer)
    optimal = OptimalInstanceSelector(max_instances_per_item=4)
    result = result_set[0]
    generated = generator.generate(result, size_bound=bound)
    best = optimal.select(result, generated.ilist, bound)
    assert len(generated.snippet.covered_items) <= len(best.covered_items)


@COMMON_SETTINGS
@given(xml_trees(), st.sampled_from(VALUES))
def test_mean_dominance_score_per_type_is_one(tree, keyword):
    index = IndexBuilder().build(tree)
    if not index.keyword_matches(keyword):
        return
    result_set = SearchEngine(index).search(keyword)
    if not result_set:
        return
    statistics = extract_features(index.analyzer, result_set[0])
    by_type: dict[tuple[str, str], list[float]] = {}
    for feature in statistics.features():
        by_type.setdefault(feature.feature_type, []).append(statistics.dominance_score(feature))
    for scores in by_type.values():
        assert abs(sum(scores) / len(scores) - 1.0) < 1e-9


@COMMON_SETTINGS
@given(xml_trees(), st.sampled_from(VALUES), st.integers(min_value=2, max_value=20))
def test_coverage_is_monotone_in_bound(tree, keyword, bound):
    index = IndexBuilder().build(tree)
    if not index.keyword_matches(keyword):
        return
    result_set = SearchEngine(index).search(keyword)
    if not result_set:
        return
    generator = SnippetGenerator(index.analyzer)
    result = result_set[0]
    small = generator.generate(result, size_bound=max(1, bound // 2))
    large = generator.generate(result, size_bound=bound)
    assert small.covered_items <= large.covered_items
