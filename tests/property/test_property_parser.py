"""Property-based tests: parser/serialiser round trips and tree invariants."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings

from repro.xmltree.parser import parse_xml
from repro.xmltree.serialize import from_plain_dict, to_plain_dict, to_xml_string
from tests.property.strategies import xml_trees

COMMON_SETTINGS = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@COMMON_SETTINGS
@given(xml_trees())
def test_xml_round_trip_preserves_structure_and_text(tree):
    reparsed = parse_xml(to_xml_string(tree)).tree
    assert [node.tag for node in reparsed.iter_nodes()] == [node.tag for node in tree.iter_nodes()]
    assert [node.text for node in reparsed.iter_nodes()] == [node.text for node in tree.iter_nodes()]


@COMMON_SETTINGS
@given(xml_trees())
def test_plain_dict_round_trip(tree):
    rebuilt = from_plain_dict(to_plain_dict(tree))
    assert [node.tag for node in rebuilt.iter_nodes()] == [node.tag for node in tree.iter_nodes()]
    assert [node.text for node in rebuilt.iter_nodes()] == [node.text for node in tree.iter_nodes()]


@COMMON_SETTINGS
@given(xml_trees())
def test_dewey_registry_consistent(tree):
    for node in tree.iter_nodes():
        assert tree.node(node.dewey) is node
        if node.parent is not None:
            assert node.dewey.parent() == node.parent.dewey
            assert node.parent.children[node.dewey.ordinal] is node


@COMMON_SETTINGS
@given(xml_trees())
def test_document_order_of_registry_matches_preorder(tree):
    preorder = [node.dewey for node in tree.iter_nodes()]
    assert preorder == sorted(preorder)


@COMMON_SETTINGS
@given(xml_trees())
def test_subtree_sizes_add_up(tree):
    assert tree.size_edges == tree.size_nodes - 1
    assert tree.root.subtree_size_nodes() == tree.size_nodes
    child_total = sum(child.subtree_size_nodes() for child in tree.root.children)
    assert child_total == tree.size_nodes - 1
