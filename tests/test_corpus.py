"""Tests for the corpus manager."""

from __future__ import annotations

import pytest

from repro.corpus import Corpus, builtin_dataset_names
from repro.errors import DatasetError, ExtractError
from repro.xmltree.serialize import to_xml_string


class TestRegistration:
    def test_add_tree_and_query(self, small_retailer_tree):
        corpus = Corpus()
        entry = corpus.add_tree("retailer", small_retailer_tree)
        assert entry.name == "retailer"
        assert entry.node_count == small_retailer_tree.size_nodes
        assert "store" in entry.entity_tags
        outcome = corpus.query("retailer", "store texas", size_bound=6)
        assert len(outcome) == 2

    def test_add_xml(self):
        corpus = Corpus()
        corpus.add_xml("tiny", "<db><item><name>a</name></item><item><name>b</name></item></db>")
        assert "tiny" in corpus
        assert corpus.entry("tiny").node_count == 5

    def test_add_file(self, small_retailer_tree, tmp_path):
        path = tmp_path / "doc.xml"
        path.write_text(to_xml_string(small_retailer_tree), encoding="utf-8")
        corpus = Corpus()
        entry = corpus.add_file(path)
        assert entry.name == "doc"
        assert len(corpus) == 1

    def test_add_builtin(self):
        corpus = Corpus()
        entry = corpus.add_builtin("figure5-stores")
        assert entry.node_count > 100
        assert "store" in entry.entity_tags

    def test_builtin_names_stable(self):
        names = builtin_dataset_names()
        assert {"figure1", "figure5-stores", "retail", "movies", "auctions", "bibliography"} <= set(names)

    def test_unknown_builtin_rejected(self):
        with pytest.raises(DatasetError):
            Corpus().add_builtin("not-a-dataset")

    def test_duplicate_name_rejected(self, small_retailer_tree):
        corpus = Corpus()
        corpus.add_tree("doc", small_retailer_tree)
        with pytest.raises(ExtractError):
            corpus.add_tree("doc", small_retailer_tree)

    def test_remove(self, small_retailer_tree):
        corpus = Corpus()
        corpus.add_tree("doc", small_retailer_tree)
        corpus.remove("doc")
        assert "doc" not in corpus
        with pytest.raises(ExtractError):
            corpus.remove("doc")


class TestAccessAndQuerying:
    @pytest.fixture()
    def corpus(self, small_retailer_tree):
        corpus = Corpus()
        corpus.add_tree("retailer", small_retailer_tree)
        corpus.add_builtin("figure5-stores", name="stores")
        return corpus

    def test_names_sorted(self, corpus):
        assert corpus.names() == ["retailer", "stores"]

    def test_unknown_entry_raises_with_hint(self, corpus):
        with pytest.raises(ExtractError) as excinfo:
            corpus.entry("missing")
        assert "registered" in str(excinfo.value)

    def test_query_all_covers_every_document(self, corpus):
        outcomes = corpus.query_all("store texas", size_bound=6)
        assert set(outcomes) == {"retailer", "stores"}
        assert all(len(outcome) >= 1 for outcome in outcomes.values())

    def test_query_all_includes_empty_outcomes(self, corpus):
        outcomes = corpus.query_all("zebra quagga")
        assert set(outcomes) == {"retailer", "stores"}
        assert all(len(outcome) == 0 for outcome in outcomes.values())

    def test_summary_rows(self, corpus):
        rows = corpus.summary()
        assert [row["name"] for row in rows] == ["retailer", "stores"]
        assert all(row["nodes"] > 0 for row in rows)

    def test_iteration_and_len(self, corpus):
        assert len(corpus) == 2
        assert {entry.name for entry in corpus} == {"retailer", "stores"}

    def test_repr(self, corpus):
        assert "documents=2" in repr(corpus)
