"""Tests for the corpus manager."""

from __future__ import annotations

import pytest

from repro.corpus import Corpus, builtin_dataset_names
from repro.errors import DatasetError, ExtractError
from repro.xmltree.serialize import to_xml_string


class TestRegistration:
    def test_add_tree_and_query(self, small_retailer_tree):
        corpus = Corpus()
        entry = corpus.add_tree("retailer", small_retailer_tree)
        assert entry.name == "retailer"
        assert entry.node_count == small_retailer_tree.size_nodes
        assert "store" in entry.entity_tags
        outcome = corpus.query("retailer", "store texas", size_bound=6)
        assert len(outcome) == 2

    def test_add_xml(self):
        corpus = Corpus()
        corpus.add_xml("tiny", "<db><item><name>a</name></item><item><name>b</name></item></db>")
        assert "tiny" in corpus
        assert corpus.entry("tiny").node_count == 5

    def test_add_file(self, small_retailer_tree, tmp_path):
        path = tmp_path / "doc.xml"
        path.write_text(to_xml_string(small_retailer_tree), encoding="utf-8")
        corpus = Corpus()
        entry = corpus.add_file(path)
        assert entry.name == "doc"
        assert len(corpus) == 1

    def test_add_builtin(self):
        corpus = Corpus()
        entry = corpus.add_builtin("figure5-stores")
        assert entry.node_count > 100
        assert "store" in entry.entity_tags

    def test_builtin_names_stable(self):
        names = builtin_dataset_names()
        assert {"figure1", "figure5-stores", "retail", "movies", "auctions", "bibliography"} <= set(names)

    def test_unknown_builtin_rejected(self):
        with pytest.raises(DatasetError):
            Corpus().add_builtin("not-a-dataset")

    def test_duplicate_name_rejected(self, small_retailer_tree):
        corpus = Corpus()
        corpus.add_tree("doc", small_retailer_tree)
        with pytest.raises(ExtractError):
            corpus.add_tree("doc", small_retailer_tree)

    def test_remove(self, small_retailer_tree):
        corpus = Corpus()
        corpus.add_tree("doc", small_retailer_tree)
        corpus.remove("doc")
        assert "doc" not in corpus
        with pytest.raises(ExtractError):
            corpus.remove("doc")


class TestAccessAndQuerying:
    @pytest.fixture()
    def corpus(self, small_retailer_tree):
        corpus = Corpus()
        corpus.add_tree("retailer", small_retailer_tree)
        corpus.add_builtin("figure5-stores", name="stores")
        return corpus

    def test_names_sorted(self, corpus):
        assert corpus.names() == ["retailer", "stores"]

    def test_unknown_entry_raises_with_hint(self, corpus):
        with pytest.raises(ExtractError) as excinfo:
            corpus.entry("missing")
        assert "registered" in str(excinfo.value)

    def test_query_all_covers_every_document(self, corpus):
        outcomes = corpus.query_all("store texas", size_bound=6)
        assert set(outcomes) == {"retailer", "stores"}
        assert all(len(outcome) >= 1 for outcome in outcomes.values())

    def test_query_all_includes_empty_outcomes(self, corpus):
        outcomes = corpus.query_all("zebra quagga")
        assert set(outcomes) == {"retailer", "stores"}
        assert all(len(outcome) == 0 for outcome in outcomes.values())

    def test_summary_rows(self, corpus):
        rows = corpus.summary()
        assert [row["name"] for row in rows] == ["retailer", "stores"]
        assert all(row["nodes"] > 0 for row in rows)

    def test_iteration_and_len(self, corpus):
        assert len(corpus) == 2
        assert {entry.name for entry in corpus} == {"retailer", "stores"}

    def test_repr(self, corpus):
        assert "documents=2" in repr(corpus)


class TestReplaceRegistration:
    def test_duplicate_without_replace_raises(self, small_retailer_tree):
        corpus = Corpus()
        corpus.add_tree("doc", small_retailer_tree)
        with pytest.raises(ExtractError):
            corpus.add_tree("doc", small_retailer_tree)

    def test_replace_swaps_document(self, small_retailer_tree):
        from repro.xmltree.builder import tree_from_dict

        corpus = Corpus()
        corpus.add_tree("doc", small_retailer_tree)
        other = tree_from_dict("db", {"item": [{"name": "zeta"}]}, name="doc")
        corpus.add_tree("doc", other, replace=True)
        assert corpus.entry("doc").node_count == other.size_nodes

    def test_replace_invalidates_old_caches(self, small_retailer_tree):
        corpus = Corpus()
        corpus.add_tree("doc", small_retailer_tree)
        old_system = corpus.system("doc")
        corpus.query("doc", "store texas")          # populate the cache
        assert len(old_system.cache) > 0
        corpus.add_tree("doc", small_retailer_tree, replace=True)
        assert len(old_system.cache) == 0           # explicitly invalidated
        assert corpus.system("doc") is not old_system
        # Fresh system: first query is a cold (uncached) evaluation.
        assert corpus.query("doc", "store texas").from_cache is False

    def test_remove_invalidates_caches(self, small_retailer_tree):
        corpus = Corpus()
        corpus.add_tree("doc", small_retailer_tree)
        system = corpus.system("doc")
        corpus.query("doc", "store texas")
        corpus.remove("doc")
        assert len(system.cache) == 0


class TestBatchExecution:
    @pytest.fixture()
    def batch_corpus(self, small_retailer_tree):
        corpus = Corpus()
        corpus.add_tree("retailer", small_retailer_tree)
        corpus.add_builtin("figure5-stores", name="stores")
        return corpus

    def test_batch_covers_all_queries_and_documents(self, batch_corpus):
        report = batch_corpus.search_batch(["store texas", "clothes casual"])
        assert len(report) == 2
        assert report.document_names == ["retailer", "stores"]
        for entry in report:
            assert set(entry.outcomes) == {"retailer", "stores"}
            assert entry.seconds >= 0.0

    def test_batch_matches_individual_queries(self, batch_corpus):
        report = batch_corpus.search_batch(["store texas"], size_bound=6)
        individual = batch_corpus.query("retailer", "store texas", size_bound=6, use_cache=False)
        batch_outcome = report.entry("store texas").outcomes["retailer"]
        assert batch_outcome.render_text() == individual.render_text()

    def test_batch_shares_parsed_queries(self, batch_corpus):
        # Same keywords in the same order (keyword order matters to the
        # IList) but different raw spellings share one parsed query object.
        report = batch_corpus.search_batch(["store texas", "STORE,  texas!"])
        first, second = report.entries
        assert first.query is second.query  # same normalised keyword tuple

    def test_batch_respects_names_subset(self, batch_corpus):
        report = batch_corpus.search_batch(["store texas"], names=["stores"])
        assert report.document_names == ["stores"]
        assert set(report.entry("store texas").outcomes) == {"stores"}

    def test_batch_timings_have_one_phase_per_query(self, batch_corpus):
        report = batch_corpus.search_batch(["store texas", "clothes casual"])
        assert set(report.timings.phases) == {"query:store texas", "query:clothes casual"}

    def test_batch_accepts_parsed_queries(self, batch_corpus):
        from repro.search.query import KeywordQuery

        report = batch_corpus.search_batch([KeywordQuery.parse("store texas")])
        assert report.entry("store texas").total_results >= 1

    def test_format_table(self, batch_corpus):
        report = batch_corpus.search_batch(["store texas"])
        table = report.format_table()
        assert "store texas" in table
        assert "TOTAL" in table

    def test_empty_batch(self, batch_corpus):
        report = batch_corpus.search_batch([])
        assert len(report) == 0
        assert report.format_table() == "(no queries executed)"

    def test_warm_batch_is_served_from_cache(self, batch_corpus):
        batch_corpus.search_batch(["store texas"])
        warm = batch_corpus.search_batch(["store texas"])
        outcomes = warm.entry("store texas").outcomes
        assert all(outcome.from_cache for outcome in outcomes.values())


class TestCorpusPersistence:
    @pytest.fixture()
    def populated(self, small_retailer_tree):
        corpus = Corpus()
        corpus.add_tree("retailer", small_retailer_tree)
        corpus.add_builtin("figure5-stores", name="stores")
        corpus.add_builtin("movies")
        return corpus

    def test_save_dir_layout(self, populated, tmp_path):
        subdirs = populated.save_dir(tmp_path / "corpus")
        assert sorted(subdirs) == ["movies", "retailer", "stores"]
        assert (tmp_path / "corpus" / "corpus.manifest").exists()
        for subdir in subdirs:
            assert (tmp_path / "corpus" / subdir / "inverted.idx").exists()
            assert (tmp_path / "corpus" / subdir / "document.xml").exists()

    def test_round_trip_restores_names_and_sizes(self, populated, tmp_path):
        populated.save_dir(tmp_path / "corpus")
        loaded = Corpus.load_dir(tmp_path / "corpus")
        assert loaded.names() == populated.names()
        for name in populated.names():
            assert loaded.entry(name).node_count == populated.entry(name).node_count

    def test_round_trip_search_results_byte_identical(self, populated, tmp_path):
        queries = ["store texas", "movie drama", "clothes casual"]
        populated.save_dir(tmp_path / "corpus")
        loaded = Corpus.load_dir(tmp_path / "corpus")
        for query in queries:
            for name in populated.names():
                before = populated.query(name, query, size_bound=8, use_cache=False)
                after = loaded.query(name, query, size_bound=8, use_cache=False)
                assert before.render_text() == after.render_text(), (query, name)

    def test_load_dir_preserves_algorithm(self, small_retailer_tree, tmp_path):
        corpus = Corpus(algorithm="elca")
        corpus.add_tree("doc", small_retailer_tree)
        corpus.save_dir(tmp_path / "corpus")
        loaded = Corpus.load_dir(tmp_path / "corpus")
        assert loaded.algorithm == "elca"
        override = Corpus.load_dir(tmp_path / "corpus", algorithm="slca")
        assert override.algorithm == "slca"

    def test_load_missing_directory_raises(self, tmp_path):
        from repro.errors import StorageError

        with pytest.raises(StorageError):
            Corpus.load_dir(tmp_path / "nope")

    def test_load_bad_manifest_raises(self, tmp_path):
        from repro.errors import StorageError

        (tmp_path / "corpus.manifest").write_text("garbage\n", encoding="utf-8")
        with pytest.raises(StorageError):
            Corpus.load_dir(tmp_path)

    def test_awkward_document_names(self, small_retailer_tree, tmp_path):
        corpus = Corpus()
        corpus.add_tree("my doc / with ~ chars", small_retailer_tree)
        corpus.save_dir(tmp_path / "corpus")
        loaded = Corpus.load_dir(tmp_path / "corpus")
        assert loaded.names() == ["my doc / with ~ chars"]
        outcome = loaded.query("my doc / with ~ chars", "store texas")
        assert len(outcome) == 2

    def test_round_trip_preserves_document_name(self, tmp_path):
        # Registered under a different name than the tree's own: both must
        # survive the round trip unchanged (ResultSet.document_name comes
        # from the tree, the registry key from the manifest).
        corpus = Corpus()
        corpus.add_builtin("figure5-stores", name="stores")
        tree_name = corpus.system("stores").index.tree.name
        before = corpus.query("stores", "store texas", use_cache=False)
        corpus.save_dir(tmp_path / "corpus")
        loaded = Corpus.load_dir(tmp_path / "corpus")
        assert loaded.names() == ["stores"]
        assert loaded.system("stores").index.tree.name == tree_name
        after = loaded.query("stores", "store texas", use_cache=False)
        assert after.results.document_name == before.results.document_name

    def test_case_colliding_names_get_distinct_subdirs(self, small_retailer_tree, tmp_path):
        from repro.xmltree.builder import tree_from_dict

        corpus = Corpus()
        corpus.add_tree("Doc", small_retailer_tree)
        corpus.add_tree("doc", tree_from_dict("db", {"item": [{"name": "zeta"}]}))
        subdirs = corpus.save_dir(tmp_path / "corpus")
        assert len({subdir.lower() for subdir in subdirs}) == 2
        loaded = Corpus.load_dir(tmp_path / "corpus")
        assert loaded.entry("Doc").node_count == small_retailer_tree.size_nodes
        assert loaded.entry("doc").node_count == 3
