"""Tests for IList construction (§2, Figure 3)."""

from __future__ import annotations

import pytest

from repro.datasets.paper_example import FIGURE1_EXPECTED_ILIST
from repro.search.engine import SearchEngine
from repro.search.query import KeywordQuery
from repro.snippet.ilist import IListBuilder, ItemKind


@pytest.fixture()
def figure1_ilist(figure1_idx, figure1_result):
    builder = IListBuilder(figure1_idx.analyzer)
    return builder.build(KeywordQuery.parse("Texas, apparel, retailer"), figure1_result)


class TestFigure3:
    def test_exact_ilist_order(self, figure1_ilist):
        assert tuple(text.lower() for text in figure1_ilist.texts()) == FIGURE1_EXPECTED_ILIST

    def test_item_kinds_in_paper_order(self, figure1_ilist):
        kinds = [item.kind for item in figure1_ilist]
        assert kinds[:3] == [ItemKind.KEYWORD] * 3
        assert kinds[3:5] == [ItemKind.ENTITY_NAME] * 2
        assert kinds[5] == ItemKind.RESULT_KEY
        assert all(kind == ItemKind.DOMINANT_FEATURE for kind in kinds[6:])

    def test_feature_items_sorted_by_score(self, figure1_ilist):
        features = figure1_ilist.items_of_kind(ItemKind.DOMINANT_FEATURE)
        scores = [item.score for item in features]
        assert scores == sorted(scores, reverse=True)

    def test_no_duplicate_identities(self, figure1_ilist):
        identities = figure1_ilist.identities()
        assert len(identities) == len(set(identities))

    def test_retailer_not_repeated_as_entity_name(self, figure1_ilist):
        # "retailer" is a keyword; the entity-name group must not add it again
        assert figure1_ilist.texts().count("retailer") == 1

    def test_texas_not_repeated_as_feature(self, figure1_ilist):
        # (store, state, texas) is trivially dominant but already a keyword
        assert [text.lower() for text in figure1_ilist.texts()].count("texas") == 1

    def test_every_item_has_instances_inside_result(self, figure1_ilist, figure1_result):
        for item in figure1_ilist:
            assert item.has_instances
            assert all(figure1_result.contains_label(label) for label in item.instances)

    def test_entity_names_ordered_by_instance_count(self, figure1_ilist):
        entity_items = figure1_ilist.items_of_kind(ItemKind.ENTITY_NAME)
        counts = [len(item.instances) for item in entity_items]
        assert counts == sorted(counts, reverse=True)
        assert [item.text for item in entity_items] == ["clothes", "store"]


class TestGeneralProperties:
    def test_keywords_without_matches_have_no_instances(self, small_index):
        result = SearchEngine(small_index).search("texas")[0]
        builder = IListBuilder(small_index.analyzer)
        ilist = builder.build(KeywordQuery.parse("texas zebra"), result)
        zebra = next(item for item in ilist if item.text == "zebra")
        assert not zebra.has_instances
        assert zebra not in ilist.coverable_items()

    def test_keyword_instances_fallback_scan(self, small_index):
        # result.matches empty → the builder scans the result itself
        result = SearchEngine(small_index).search("texas")[0]
        result.matches.clear()
        ilist = IListBuilder(small_index.analyzer).build(KeywordQuery.parse("texas"), result)
        texas_item = ilist[0]
        assert texas_item.has_instances

    def test_key_item_for_figure5(self, figure5_idx):
        results = SearchEngine(figure5_idx).search("store texas")
        ilist = IListBuilder(figure5_idx.analyzer).build(KeywordQuery.parse("store texas"), results[0])
        keys = ilist.items_of_kind(ItemKind.RESULT_KEY)
        assert len(keys) == 1
        assert keys[0].text in {"Levis", "ESprit"}

    def test_ilist_dunder_protocol(self, figure1_ilist):
        assert len(figure1_ilist) == 12
        assert figure1_ilist[0].text == "texas"
        assert [item.text for item in figure1_ilist] == figure1_ilist.texts()
        assert "texas" in repr(figure1_ilist)

    def test_statistics_and_decision_attached(self, figure1_ilist):
        assert figure1_ilist.statistics is not None
        assert figure1_ilist.return_entity_decision is not None
        assert figure1_ilist.return_entity_decision.primary == "retailer"
