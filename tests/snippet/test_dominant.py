"""Tests for the Dominant Feature Identifier (§2.3)."""

from __future__ import annotations

import pytest

from repro.search.engine import SearchEngine
from repro.snippet.dominant import DominantFeatureIdentifier
from repro.snippet.features import extract_features


@pytest.fixture()
def figure1_identifier(figure1_idx):
    return DominantFeatureIdentifier(figure1_idx.analyzer)


class TestScoreAll:
    def test_sorted_by_decreasing_score(self, figure1_identifier, figure1_result):
        scored = figure1_identifier.score_all(figure1_result)
        scores = [item.score for item in scored]
        assert scores == sorted(scores, reverse=True)

    def test_contains_every_extracted_feature(self, figure1_idx, figure1_identifier, figure1_result):
        statistics = extract_features(figure1_idx.analyzer, figure1_result)
        scored = figure1_identifier.score_all(figure1_result, statistics)
        assert len(scored) == len(statistics)

    def test_statistics_fields_consistent(self, figure1_identifier, figure1_result):
        for item in figure1_identifier.score_all(figure1_result):
            assert item.value_count <= item.type_count
            assert item.domain_size >= 1
            assert len(item.instances) == item.value_count

    def test_deterministic_ordering(self, figure1_identifier, figure1_result):
        first = [str(item.feature) for item in figure1_identifier.score_all(figure1_result)]
        second = [str(item.feature) for item in figure1_identifier.score_all(figure1_result)]
        assert first == second


class TestIdentify:
    def test_paper_dominant_features_in_order(self, figure1_identifier, figure1_result):
        dominant = figure1_identifier.identify(figure1_result)
        # drop trivially dominant single-value types (texas, brook brothers,
        # apparel) to compare with the contested features of §2.3
        contested = [item for item in dominant if item.domain_size > 1]
        values = [item.feature.value for item in contested]
        assert values == ["houston", "outwear", "man", "casual", "suit", "woman"]

    def test_dominant_scores_match_paper(self, figure1_identifier, figure1_result):
        dominant = {item.feature.value: item.score for item in figure1_identifier.identify(figure1_result)}
        paper = {"houston": 3.0, "outwear": 2.2, "man": 1.8, "casual": 1.4, "suit": 1.2, "woman": 1.1}
        for value, expected in paper.items():
            assert dominant[value] == pytest.approx(expected, abs=0.08)

    def test_non_dominant_features_excluded(self, figure1_identifier, figure1_result):
        dominant_values = {item.feature.value for item in figure1_identifier.identify(figure1_result)}
        # children (DS 0.12), formal (0.6), skirt (0.82) must not be dominant
        assert {"children", "formal", "skirt"}.isdisjoint(dominant_values)

    def test_trivially_dominant_single_value_types_included(self, figure1_identifier, figure1_result):
        dominant = figure1_identifier.identify(figure1_result)
        trivial = [item for item in dominant if item.is_trivially_dominant]
        assert {item.feature.value for item in trivial} >= {"texas", "brook brothers", "apparel"}

    def test_every_dominant_has_score_at_least_one(self, figure1_identifier, figure1_result):
        for item in figure1_identifier.identify(figure1_result):
            assert item.score >= 1.0 - 1e-9


class TestDominanceTable:
    def test_table_keys_are_values(self, figure1_identifier, figure1_result):
        table = figure1_identifier.dominance_table(figure1_result)
        assert table["houston"] == pytest.approx(3.0)
        assert table["children"] == pytest.approx(0.12)

    def test_table_on_small_dataset(self, small_index):
        result = SearchEngine(small_index).search("texas apparel")[0]
        table = DominantFeatureIdentifier(small_index.analyzer).dominance_table(result)
        assert table["outwear"] == pytest.approx(4 / 3)

    def test_repr(self, figure1_identifier, figure1_result):
        item = figure1_identifier.identify(figure1_result)[0]
        assert "DS=" in repr(item)
