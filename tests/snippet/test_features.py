"""Tests for feature extraction and dominance scores (§2.3)."""

from __future__ import annotations

import pytest

from repro.search.engine import SearchEngine
from repro.snippet.features import Feature, FeatureStatistics, extract_features


@pytest.fixture()
def small_result(small_index):
    return SearchEngine(small_index).search("texas apparel")[0]


@pytest.fixture()
def small_stats(small_index, small_result):
    return extract_features(small_index.analyzer, small_result)


class TestFeatureTriples:
    def test_feature_type_and_str(self):
        feature = Feature("store", "city", "houston")
        assert feature.feature_type == ("store", "city")
        assert str(feature) == "(store, city, houston)"

    def test_features_are_hashable_value_objects(self):
        assert Feature("a", "b", "c") == Feature("a", "b", "c")
        assert len({Feature("a", "b", "c"), Feature("a", "b", "c")}) == 1


class TestExtraction:
    def test_attribute_owned_by_nearest_entity(self, small_stats):
        assert Feature("store", "city", "houston") in small_stats
        assert Feature("clothes", "category", "suit") in small_stats

    def test_attribute_without_entity_ancestor_uses_result_root(self, small_stats):
        # retailer name/product hang directly off the (non-repeating) root
        assert Feature("retailer", "name", "brook brothers") in small_stats
        assert Feature("retailer", "product", "apparel") in small_stats

    def test_counts(self, small_stats):
        assert small_stats.value_count(Feature("store", "state", "texas")) == 2
        assert small_stats.type_count("store", "city") == 2
        assert small_stats.domain_size("store", "city") == 2
        assert small_stats.type_count("clothes", "category") == 3
        assert small_stats.domain_size("clothes", "category") == 2

    def test_instances_recorded(self, small_stats, small_result):
        instances = small_stats.instances_of(Feature("clothes", "category", "outwear"))
        assert len(instances) == 2
        assert all(small_result.contains_label(label) for label in instances)

    def test_display_value_keeps_original_case(self, small_stats):
        assert small_stats.display_value(Feature("store", "city", "houston")) == "Houston"

    def test_unseen_feature_defaults(self, small_stats):
        ghost = Feature("store", "city", "atlantis")
        assert small_stats.value_count(ghost) == 0
        assert small_stats.dominance_score(ghost) == 0.0
        assert not small_stats.is_dominant(ghost)
        assert small_stats.instances_of(ghost) == []
        assert small_stats.occurrences(ghost) is None
        assert small_stats.display_value(ghost) == "atlantis"

    def test_empty_values_ignored(self, small_index):
        statistics = FeatureStatistics()
        statistics.add_occurrence("store", "city", "   ", small_index.tree.root.dewey)
        assert len(statistics) == 0


class TestDominanceScore:
    def test_definition(self, small_stats):
        # outwear occurs 2 of 3 category occurrences over 2 distinct values:
        # DS = 2 / (3/2) = 4/3
        assert small_stats.dominance_score(Feature("clothes", "category", "outwear")) == pytest.approx(4 / 3)
        assert small_stats.dominance_score(Feature("clothes", "category", "suit")) == pytest.approx(2 / 3)

    def test_dominant_iff_score_above_one(self, small_stats):
        assert small_stats.is_dominant(Feature("clothes", "category", "outwear"))
        assert not small_stats.is_dominant(Feature("clothes", "category", "suit"))

    def test_single_value_domain_trivially_dominant(self, small_stats):
        texas = Feature("store", "state", "texas")
        assert small_stats.domain_size("store", "state") == 1
        assert small_stats.dominance_score(texas) == pytest.approx(1.0)
        assert small_stats.is_dominant(texas)

    def test_uniform_distribution_not_dominant(self, small_stats):
        # city: Houston 1, Austin 1 → DS = 1 for both, not dominant (domain 2)
        assert not small_stats.is_dominant(Feature("store", "city", "houston"))


class TestStatisticsTable:
    def test_value_statistics_sorted_by_count(self, small_stats):
        table = small_stats.value_statistics()
        categories = table[("clothes", "category")]
        assert categories[0] == ("outwear", 2)

    def test_features_and_types_listing(self, small_stats):
        assert Feature("store", "name", "galleria") in small_stats.features()
        assert ("store", "city") in small_stats.feature_types()

    def test_repr(self, small_stats):
        assert "features=" in repr(small_stats)


class TestFigure1Statistics:
    def test_paper_counts_hold(self, figure1_idx, figure1_result):
        statistics = extract_features(figure1_idx.analyzer, figure1_result)
        assert statistics.value_count(Feature("store", "city", "houston")) == 6
        assert statistics.type_count("store", "city") == 10
        assert statistics.domain_size("store", "city") == 5
        assert statistics.type_count("clothes", "fitting") == 1000
        assert statistics.domain_size("clothes", "fitting") == 3
        assert statistics.type_count("clothes", "category") == 1070
        assert statistics.domain_size("clothes", "category") == 11

    def test_paper_dominance_scores_hold(self, figure1_idx, figure1_result):
        statistics = extract_features(figure1_idx.analyzer, figure1_result)
        assert statistics.dominance_score(Feature("store", "city", "houston")) == pytest.approx(3.0)
        assert statistics.dominance_score(Feature("clothes", "fitting", "man")) == pytest.approx(1.8)
        assert statistics.dominance_score(Feature("clothes", "situation", "casual")) == pytest.approx(1.4)
        assert statistics.dominance_score(Feature("clothes", "fitting", "woman")) == pytest.approx(1.08)
        assert statistics.dominance_score(Feature("clothes", "category", "outwear")) == pytest.approx(2.262, abs=0.01)
        assert statistics.dominance_score(Feature("clothes", "category", "suit")) == pytest.approx(1.234, abs=0.01)
