"""Tests for the SnippetGenerator façade."""

from __future__ import annotations

import pytest

from repro.errors import InvalidSizeBoundError
from repro.search.engine import SearchEngine
from repro.snippet.generator import DEFAULT_SIZE_BOUND, SnippetGenerator
from repro.snippet.ilist import ItemKind


class TestGenerate:
    def test_generated_snippet_structure(self, figure5_idx):
        results = SearchEngine(figure5_idx).search("store texas")
        generator = SnippetGenerator(figure5_idx.analyzer)
        generated = generator.generate(results[0], size_bound=6)
        assert generated.size_bound == 6
        assert generated.snippet.size_edges <= 6
        assert 0.0 < generated.coverage <= 1.0
        assert generated.covered_items == len(generated.snippet.covered_items)

    def test_default_bound(self, figure5_idx):
        results = SearchEngine(figure5_idx).search("store texas")
        generated = SnippetGenerator(figure5_idx.analyzer).generate(results[0])
        assert generated.size_bound == DEFAULT_SIZE_BOUND

    def test_invalid_bound_rejected(self, figure5_idx):
        results = SearchEngine(figure5_idx).search("store texas")
        generator = SnippetGenerator(figure5_idx.analyzer)
        with pytest.raises(InvalidSizeBoundError):
            generator.generate(results[0], size_bound=0)
        with pytest.raises(InvalidSizeBoundError):
            generator.generate(results[0], size_bound=True)

    def test_snippet_contains_result_key_when_budget_allows(self, figure5_idx):
        results = SearchEngine(figure5_idx).search("store texas")
        generator = SnippetGenerator(figure5_idx.analyzer)
        for result in results:
            generated = generator.generate(result, size_bound=6)
            key_items = generated.ilist.items_of_kind(ItemKind.RESULT_KEY)
            assert key_items and generated.snippet.covers(key_items[0].identity)

    def test_query_override(self, figure5_idx):
        from repro.search.query import KeywordQuery

        results = SearchEngine(figure5_idx).search("store texas")
        generator = SnippetGenerator(figure5_idx.analyzer)
        generated = generator.generate(results[0], size_bound=6, query=KeywordQuery.parse("jeans"))
        assert generated.ilist[0].text == "jeans"

    def test_build_ilist_exposed(self, figure5_idx):
        results = SearchEngine(figure5_idx).search("store texas")
        generator = SnippetGenerator(figure5_idx.analyzer)
        ilist = generator.build_ilist(results[0])
        assert len(ilist) > 0

    def test_timings_recorded(self, figure5_idx):
        results = SearchEngine(figure5_idx).search("store texas")
        generator = SnippetGenerator(figure5_idx.analyzer)
        generator.generate(results[0], size_bound=6)
        assert {"ilist", "instance_selection"} <= set(generator.timings.phases)

    def test_repr(self, figure5_idx):
        results = SearchEngine(figure5_idx).search("store texas")
        generated = SnippetGenerator(figure5_idx.analyzer).generate(results[0], size_bound=6)
        assert "edges=" in repr(generated)


class TestGenerateAll:
    def test_one_snippet_per_result(self, figure5_idx):
        results = SearchEngine(figure5_idx).search("store texas")
        batch = SnippetGenerator(figure5_idx.analyzer).generate_all(results, size_bound=6)
        assert len(batch) == len(results)
        assert [generated.result for generated in batch] == list(results)

    def test_batch_protocol(self, figure5_idx):
        results = SearchEngine(figure5_idx).search("store texas")
        batch = SnippetGenerator(figure5_idx.analyzer).generate_all(results, size_bound=6)
        assert batch[0] is list(batch)[0]
        assert 0.0 < batch.mean_coverage() <= 1.0

    def test_empty_result_set(self, figure5_idx):
        results = SearchEngine(figure5_idx).search("store antarctica")
        batch = SnippetGenerator(figure5_idx.analyzer).generate_all(results, size_bound=6)
        assert len(batch) == 0
        assert batch.mean_coverage() == 0.0

    def test_coverage_definition(self, figure5_idx):
        results = SearchEngine(figure5_idx).search("store texas")
        batch = SnippetGenerator(figure5_idx.analyzer).generate_all(results, size_bound=1000)
        assert batch.mean_coverage() == pytest.approx(1.0)


class TestEndToEndInvariants:
    @pytest.mark.parametrize("bound", [3, 6, 10, 16])
    def test_all_results_respect_bound(self, retail_idx, retail_results, retail_generator, bound):
        batch = retail_generator.generate_all(retail_results, size_bound=bound)
        for generated in batch:
            assert generated.snippet.size_edges <= bound
            assert generated.snippet.is_connected()
            # every selected node belongs to the generating result
            for label in generated.snippet.node_labels:
                assert generated.result.contains_label(label)

    def test_snippet_is_subtree_of_result(self, retail_results, retail_generator):
        generated = retail_generator.generate(retail_results[0], size_bound=8)
        snippet_tree = generated.snippet.to_tree()
        assert snippet_tree.root.tag == retail_results[0].root_node.tag
        assert snippet_tree.size_edges == generated.snippet.size_edges
