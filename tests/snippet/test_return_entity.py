"""Tests for the Return Entity Identifier (§2.2)."""

from __future__ import annotations

import pytest

from repro.search.engine import SearchEngine
from repro.search.query import KeywordQuery
from repro.snippet.return_entity import ReturnEntityIdentifier


class TestNameMatchRule:
    def test_entity_name_matches_keyword(self, figure1_idx, figure1_result):
        identifier = ReturnEntityIdentifier(figure1_idx.analyzer)
        decision = identifier.identify(KeywordQuery.parse("Texas, apparel, retailer"), figure1_result)
        assert decision.return_entities == ["retailer"]
        assert decision.reasons["retailer"] == "name-match"
        assert set(decision.supporting_entities) == {"store", "clothes"}

    def test_plural_keyword_matches_entity_name(self, figure5_idx):
        results = SearchEngine(figure5_idx).search("stores texas")
        identifier = ReturnEntityIdentifier(figure5_idx.analyzer)
        decision = identifier.identify(KeywordQuery.parse("stores texas"), results[0])
        assert decision.primary == "store"

    def test_multiple_entity_names_match(self, figure1_idx, figure1_result):
        identifier = ReturnEntityIdentifier(figure1_idx.analyzer)
        decision = identifier.identify(KeywordQuery.parse("retailer store"), figure1_result)
        assert set(decision.return_entities) == {"retailer", "store"}


class TestAttributeMatchRule:
    def test_attribute_name_matches_keyword(self, figure5_idx):
        results = SearchEngine(figure5_idx).search("city texas")
        identifier = ReturnEntityIdentifier(figure5_idx.analyzer)
        decision = identifier.identify(KeywordQuery.parse("city texas"), results[0])
        # no entity is called "city"/"texas", but store has a "city" attribute
        assert decision.primary == "store"
        assert decision.reasons["store"] == "attribute-match"

    def test_attribute_match_only_used_when_no_name_match(self, figure5_idx):
        results = SearchEngine(figure5_idx).search("store city")
        identifier = ReturnEntityIdentifier(figure5_idx.analyzer)
        decision = identifier.identify(KeywordQuery.parse("store city"), results[0])
        assert decision.reasons["store"] == "name-match"


class TestDefaultHighestRule:
    def test_default_highest_entity(self, figure1_idx, figure1_result):
        identifier = ReturnEntityIdentifier(figure1_idx.analyzer)
        # neither "texas" nor "houston" names an entity or attribute
        decision = identifier.identify(KeywordQuery.parse("texas houston"), figure1_result)
        assert decision.primary == "retailer"
        assert decision.reasons["retailer"] == "default-highest"

    def test_result_root_counts_as_entity_even_without_repetition(self, small_index):
        results = SearchEngine(small_index).search("houston suit")
        identifier = ReturnEntityIdentifier(small_index.analyzer)
        decision = identifier.identify(KeywordQuery.parse("houston suit"), results[0])
        assert decision.primary is not None


class TestDecisionContents:
    def test_entities_in_result_document_order(self, figure1_idx, figure1_result):
        identifier = ReturnEntityIdentifier(figure1_idx.analyzer)
        decision = identifier.identify(KeywordQuery.parse("retailer apparel texas"), figure1_result)
        assert decision.entities_in_result[0] == "retailer"
        assert set(decision.entities_in_result) == {"retailer", "store", "clothes"}

    def test_return_instances_point_into_result(self, figure1_idx, figure1_result):
        identifier = ReturnEntityIdentifier(figure1_idx.analyzer)
        decision = identifier.identify(KeywordQuery.parse("retailer"), figure1_result)
        for labels in decision.return_instances.values():
            assert all(figure1_result.contains_label(label) for label in labels)

    def test_is_return_entity_and_repr(self, figure1_idx, figure1_result):
        identifier = ReturnEntityIdentifier(figure1_idx.analyzer)
        decision = identifier.identify(KeywordQuery.parse("retailer"), figure1_result)
        assert decision.is_return_entity("retailer")
        assert not decision.is_return_entity("store")
        assert "retailer" in repr(decision)

    def test_primary_none_for_empty_decision(self):
        from repro.snippet.return_entity import ReturnEntityDecision

        assert ReturnEntityDecision().primary is None
