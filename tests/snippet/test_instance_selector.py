"""Tests for the greedy Instance Selector (§2.4)."""

from __future__ import annotations

import pytest

from repro.errors import InvalidSizeBoundError
from repro.search.engine import SearchEngine
from repro.search.query import KeywordQuery
from repro.snippet.ilist import IListBuilder, IListItem, ItemKind
from repro.snippet.instance_selector import GreedyInstanceSelector, SelectionStrategy


@pytest.fixture()
def figure1_setup(figure1_idx, figure1_result):
    query = KeywordQuery.parse("Texas, apparel, retailer")
    ilist = IListBuilder(figure1_idx.analyzer).build(query, figure1_result)
    return figure1_result, ilist


class TestSizeBound:
    @pytest.mark.parametrize("bound", [1, 2, 4, 6, 10, 14, 20, 40])
    def test_never_exceeds_bound(self, figure1_setup, bound):
        result, ilist = figure1_setup
        snippet = GreedyInstanceSelector().select(result, ilist, bound)
        assert snippet.size_edges <= bound
        assert snippet.is_connected()

    @pytest.mark.parametrize("bad_bound", [0, -1, 2.5, "10", None, True])
    def test_invalid_bounds_rejected(self, figure1_setup, bad_bound):
        result, ilist = figure1_setup
        with pytest.raises(InvalidSizeBoundError):
            GreedyInstanceSelector().select(result, ilist, bad_bound)

    def test_coverage_monotone_in_bound(self, figure1_setup):
        result, ilist = figure1_setup
        selector = GreedyInstanceSelector()
        covered = [
            len(selector.select(result, ilist, bound).covered_items) for bound in (2, 4, 8, 14, 30)
        ]
        assert covered == sorted(covered)

    def test_large_bound_covers_everything(self, figure1_setup):
        result, ilist = figure1_setup
        snippet = GreedyInstanceSelector().select(result, ilist, 10_000)
        assert len(snippet.covered_items) == len(ilist.coverable_items())


class TestItemOrderAndSkipping:
    def test_items_covered_in_importance_order(self, figure1_setup):
        result, ilist = figure1_setup
        snippet = GreedyInstanceSelector().select(result, ilist, 14)
        order = [item.text for item in snippet.covered_items]
        positions = [ilist.texts().index(text) for text in order]
        assert positions == sorted(positions)

    def test_skip_unfitting_items_continues(self, figure1_setup):
        result, ilist = figure1_setup
        skipping = GreedyInstanceSelector(skip_unfitting_items=True).select(result, ilist, 6)
        stopping = GreedyInstanceSelector(skip_unfitting_items=False).select(result, ilist, 6)
        assert len(skipping.covered_items) >= len(stopping.covered_items)

    def test_items_without_instances_are_ignored(self, figure1_setup):
        result, ilist = figure1_setup
        ilist.items.insert(
            0, IListItem(kind=ItemKind.KEYWORD, text="ghost", identity="ghost", instances=[])
        )
        snippet = GreedyInstanceSelector().select(result, ilist, 8)
        assert "ghost" not in snippet.covered_texts

    def test_duplicate_identity_not_covered_twice(self, figure1_setup):
        result, ilist = figure1_setup
        duplicate = IListItem(
            kind=ItemKind.KEYWORD,
            text="texas",
            identity="texas",
            instances=list(ilist[0].instances),
        )
        ilist.items.append(duplicate)
        snippet = GreedyInstanceSelector().select(result, ilist, 20)
        assert snippet.covered_texts.count("texas") == 1


class TestInstanceChoice:
    def test_closest_instance_chosen(self, small_index):
        # after covering the Houston store, the "outwear" instance inside that
        # store must be preferred over the one in the other store (the paper's
        # outwear3 vs outwear4 example)
        results = SearchEngine(small_index).search("houston outwear")
        result = results[0]
        ilist = IListBuilder(small_index.analyzer).build(KeywordQuery.parse("houston outwear"), result)
        snippet = GreedyInstanceSelector().select(result, ilist, 20)
        outwear_instance = snippet.chosen_instances.get("outwear")
        houston_instance = snippet.chosen_instances.get("houston")
        assert outwear_instance is not None and houston_instance is not None
        # both chosen instances lie under the same store node
        assert outwear_instance.prefix(houston_instance.depth - 1) == houston_instance.parent()

    def test_first_instance_strategy(self, figure1_setup):
        result, ilist = figure1_setup
        selector = GreedyInstanceSelector(strategy=SelectionStrategy.FIRST_INSTANCE)
        snippet = selector.select(result, ilist, 14)
        for item in snippet.covered_items:
            chosen = snippet.chosen_instances[item.identity]
            assert chosen == min(
                label for label in item.instances if result.root.is_ancestor_or_self(label)
            )

    def test_random_strategy_is_seeded(self, figure1_setup):
        result, ilist = figure1_setup
        first = GreedyInstanceSelector(strategy=SelectionStrategy.RANDOM_INSTANCE, random_seed=7)
        second = GreedyInstanceSelector(strategy=SelectionStrategy.RANDOM_INSTANCE, random_seed=7)
        assert (
            first.select(result, ilist, 10).chosen_instances
            == second.select(result, ilist, 10).chosen_instances
        )

    def test_greedy_no_worse_than_alternatives(self, figure1_setup):
        result, ilist = figure1_setup
        greedy = GreedyInstanceSelector(strategy=SelectionStrategy.GREEDY_CLOSEST)
        first = GreedyInstanceSelector(strategy=SelectionStrategy.FIRST_INSTANCE)
        for bound in (6, 10, 14):
            assert len(greedy.select(result, ilist, bound).covered_items) >= len(
                first.select(result, ilist, bound).covered_items
            ) - 1  # allow a one-item wobble: greedy is not globally optimal

    def test_repr(self):
        assert "greedy_closest" in repr(GreedyInstanceSelector())
