"""Tests for the exact (branch-and-bound) instance selector."""

from __future__ import annotations

import pytest

from repro.errors import InvalidSizeBoundError, SnippetError
from repro.search.engine import SearchEngine
from repro.search.query import KeywordQuery
from repro.snippet.ilist import IListBuilder
from repro.snippet.instance_selector import GreedyInstanceSelector
from repro.snippet.optimal import OptimalInstanceSelector


@pytest.fixture()
def small_setup(small_index):
    result = SearchEngine(small_index).search("texas apparel")[0]
    ilist = IListBuilder(small_index.analyzer).build(KeywordQuery.parse("texas apparel"), result)
    return result, ilist


class TestOptimality:
    @pytest.mark.parametrize("bound", [2, 4, 6, 8, 12])
    def test_respects_bound_and_connectivity(self, small_setup, bound):
        result, ilist = small_setup
        snippet = OptimalInstanceSelector().select(result, ilist, bound)
        assert snippet.size_edges <= bound
        assert snippet.is_connected()

    @pytest.mark.parametrize("bound", [2, 4, 6, 8, 12, 20])
    def test_never_worse_than_greedy(self, small_setup, bound):
        result, ilist = small_setup
        optimal = OptimalInstanceSelector().select(result, ilist, bound)
        greedy = GreedyInstanceSelector().select(result, ilist, bound)
        assert len(optimal.covered_items) >= len(greedy.covered_items)

    def test_large_bound_covers_everything(self, small_setup):
        result, ilist = small_setup
        snippet = OptimalInstanceSelector().select(result, ilist, 1000)
        assert len(snippet.covered_items) == len(ilist.coverable_items())

    def test_zero_coverage_feasible_with_tiny_tree(self, small_setup):
        result, ilist = small_setup
        snippet = OptimalInstanceSelector().select(result, ilist, 1)
        assert snippet.size_edges <= 1

    def test_invalid_bound_rejected(self, small_setup):
        result, ilist = small_setup
        with pytest.raises(InvalidSizeBoundError):
            OptimalInstanceSelector().select(result, ilist, 0)

    def test_expanded_states_tracked(self, small_setup):
        result, ilist = small_setup
        selector = OptimalInstanceSelector()
        selector.select(result, ilist, 6)
        assert selector.expanded_states > 0

    def test_search_budget_enforced(self, small_setup):
        result, ilist = small_setup
        selector = OptimalInstanceSelector(max_search_nodes=5)
        with pytest.raises(SnippetError):
            selector.select(result, ilist, 10)

    def test_candidate_cap_limits_branching(self, small_setup):
        result, ilist = small_setup
        narrow = OptimalInstanceSelector(max_instances_per_item=1)
        wide = OptimalInstanceSelector(max_instances_per_item=8)
        narrow_snippet = narrow.select(result, ilist, 8)
        wide_snippet = wide.select(result, ilist, 8)
        assert narrow.expanded_states <= wide.expanded_states
        assert len(wide_snippet.covered_items) >= len(narrow_snippet.covered_items) - 1
