"""Tests for the baseline snippet generators."""

from __future__ import annotations

import pytest

from repro.errors import InvalidSizeBoundError
from repro.search.engine import SearchEngine
from repro.snippet.baselines import (
    FirstEdgesSnippetGenerator,
    RandomSubtreeSnippetGenerator,
    RawFrequencySnippetGenerator,
    TextWindowSnippetGenerator,
)
from repro.snippet.ilist import ItemKind


@pytest.fixture()
def figure5_results(figure5_idx):
    return SearchEngine(figure5_idx).search("store texas")


class TestTextWindow:
    def test_flat_text_snippet(self, figure5_results):
        snippet = TextWindowSnippetGenerator().generate(figure5_results[0], size_bound=8)
        assert snippet.word_count <= 8 + 8  # a window may straddle the budget boundary
        assert snippet.text
        assert "texas" in snippet.text.lower()

    def test_contains_keyword_context(self, figure5_results):
        snippet = TextWindowSnippetGenerator(words_per_window=4).generate(
            figure5_results[0], size_bound=12
        )
        assert snippet.window_words == 4

    def test_no_keyword_hits_falls_back_to_prefix(self, figure5_results):
        from repro.search.query import KeywordQuery

        snippet = TextWindowSnippetGenerator().generate(
            figure5_results[0], size_bound=5, query=KeywordQuery.parse("zebra")
        )
        assert snippet.word_count <= 5

    def test_invalid_bound(self, figure5_results):
        with pytest.raises(InvalidSizeBoundError):
            TextWindowSnippetGenerator().generate(figure5_results[0], size_bound=0)

    def test_repr(self, figure5_results):
        snippet = TextWindowSnippetGenerator().generate(figure5_results[0], size_bound=6)
        assert "TextSnippet" in repr(snippet)


class TestFirstEdges:
    def test_respects_bound(self, figure5_idx, figure5_results):
        generator = FirstEdgesSnippetGenerator(figure5_idx.analyzer)
        for bound in (2, 5, 9):
            generated = generator.generate(figure5_results[0], bound)
            assert generated.snippet.size_edges <= bound
            assert generated.snippet.is_connected()

    def test_takes_document_order_prefix(self, figure5_idx, figure5_results):
        generated = FirstEdgesSnippetGenerator(figure5_idx.analyzer).generate(figure5_results[0], 3)
        tags = [node.tag for node in generated.snippet.to_tree().iter_nodes()]
        assert tags == ["store", "name", "state", "city"]

    def test_covered_items_reattributed_to_real_ilist(self, figure5_idx, figure5_results):
        generated = FirstEdgesSnippetGenerator(figure5_idx.analyzer).generate(figure5_results[0], 6)
        identities = {item.identity for item in generated.ilist.coverable_items()}
        for item in generated.snippet.covered_items:
            assert item.identity in identities

    def test_invalid_bound(self, figure5_idx, figure5_results):
        with pytest.raises(InvalidSizeBoundError):
            FirstEdgesSnippetGenerator(figure5_idx.analyzer).generate(figure5_results[0], -3)


class TestRawFrequency:
    def test_same_non_feature_prefix_as_extract(self, figure5_idx, figure5_results):
        generator = RawFrequencySnippetGenerator(figure5_idx.analyzer)
        ilist = generator.build_ilist(figure5_results[0])
        kinds = [item.kind for item in ilist]
        # keywords, entities and key come first exactly as in eXtract
        assert kinds[0] == ItemKind.KEYWORD
        assert ItemKind.RESULT_KEY in kinds

    def test_features_ranked_by_raw_count(self, figure1_idx, figure1_result):
        generator = RawFrequencySnippetGenerator(figure1_idx.analyzer)
        ilist = generator.build_ilist(figure1_result)
        features = [item for item in ilist if item.kind == ItemKind.DOMINANT_FEATURE]
        counts = [item.score for item in features]
        assert counts == sorted(counts, reverse=True)
        # raw-frequency ranking puts a high-volume fitting value first, not Houston
        assert features[0].text.lower() != "houston"

    def test_generates_within_bound(self, figure5_idx, figure5_results):
        generator = RawFrequencySnippetGenerator(figure5_idx.analyzer)
        generated = generator.generate(figure5_results[0], 6)
        assert generated.snippet.size_edges <= 6

    def test_invalid_bound(self, figure5_idx, figure5_results):
        with pytest.raises(InvalidSizeBoundError):
            RawFrequencySnippetGenerator(figure5_idx.analyzer).generate(figure5_results[0], 0)


class TestRandomSubtree:
    def test_respects_bound_and_connectivity(self, figure5_idx, figure5_results):
        generator = RandomSubtreeSnippetGenerator(figure5_idx.analyzer, seed=3)
        generated = generator.generate(figure5_results[0], 5)
        assert generated.snippet.size_edges <= 5
        assert generated.snippet.is_connected()

    def test_deterministic_for_same_seed(self, figure5_idx, figure5_results):
        first = RandomSubtreeSnippetGenerator(figure5_idx.analyzer, seed=3).generate(
            figure5_results[0], 5
        )
        second = RandomSubtreeSnippetGenerator(figure5_idx.analyzer, seed=3).generate(
            figure5_results[0], 5
        )
        assert first.snippet.node_labels == second.snippet.node_labels

    def test_invalid_bound(self, figure5_idx, figure5_results):
        with pytest.raises(InvalidSizeBoundError):
            RandomSubtreeSnippetGenerator(figure5_idx.analyzer).generate(figure5_results[0], 0)


class TestComparative:
    def test_extract_covers_at_least_as_many_items_as_baselines(self, figure5_idx, figure5_results):
        from repro.snippet.generator import SnippetGenerator

        extract = SnippetGenerator(figure5_idx.analyzer)
        first_edges = FirstEdgesSnippetGenerator(figure5_idx.analyzer)
        random_baseline = RandomSubtreeSnippetGenerator(figure5_idx.analyzer, seed=1)
        for result in figure5_results:
            bound = 6
            extract_count = extract.generate(result, size_bound=bound).covered_items
            assert extract_count >= len(first_edges.generate(result, bound).snippet.covered_items) - 1
            assert extract_count >= len(random_baseline.generate(result, bound).snippet.covered_items) - 1
