"""Tests for result-set-aware (distinct) snippet generation."""

from __future__ import annotations

import pytest

from repro.eval.metrics import distinguishability, snippet_signature
from repro.index.builder import IndexBuilder
from repro.search.engine import SearchEngine
from repro.snippet.distinct import DistinctSnippetGenerator
from repro.snippet.generator import SnippetGenerator
from repro.xmltree.builder import tree_from_dict


@pytest.fixture()
def clashing_index():
    """Stores engineered to produce identical base snippets.

    Both Texas stores are key-less (state and city values repeat across
    stores, so no attribute is unique) and share the same dominant
    category/fitting; they differ only in one minority clothes item
    (scarves vs. socks), which the per-result pipeline never selects within
    a tight bound — so the base snippets come out identical.
    """
    stores = []
    for extra in ("scarves", "socks"):
        stores.append(
            {
                "state": "Texas",
                "city": "Houston",
                "merchandises": {
                    "clothes": [
                        {"category": "jeans", "fitting": "man"},
                        {"category": "jeans", "fitting": "man"},
                        {"category": "jeans", "fitting": "man"},
                        {"category": extra, "fitting": "woman"},
                    ]
                },
            }
        )
    tree = tree_from_dict("stores", {"store": stores}, name="clashing")
    return IndexBuilder().build(tree)


class TestClashResolution:
    def test_base_snippets_clash_and_distinct_resolves(self, clashing_index):
        results = SearchEngine(clashing_index).search("store texas jeans")
        assert len(results) == 2
        bound = 6

        base = SnippetGenerator(clashing_index.analyzer).generate_all(results, size_bound=bound)
        base_signatures = [snippet_signature(generated) for generated in base]
        # the engineered documents make the per-result snippets identical
        assert base_signatures[0] == base_signatures[1]

        distinct = DistinctSnippetGenerator(clashing_index.analyzer).generate_all(
            results, size_bound=bound
        )
        signatures = [snippet_signature(generated) for generated in distinct]
        assert signatures[0] != signatures[1]
        assert distinguishability(list(distinct)) == 1.0

    def test_bound_still_respected_after_resolution(self, clashing_index):
        results = SearchEngine(clashing_index).search("store texas jeans")
        for bound in (3, 4, 6):
            batch = DistinctSnippetGenerator(clashing_index.analyzer).generate_all(results, size_bound=bound)
            for generated in batch:
                assert generated.snippet.size_edges <= bound
                assert generated.snippet.is_connected()

    def test_no_change_when_snippets_already_differ(self, figure5_idx):
        results = SearchEngine(figure5_idx).search("store texas")
        base = SnippetGenerator(figure5_idx.analyzer).generate_all(results, size_bound=6)
        distinct = DistinctSnippetGenerator(figure5_idx.analyzer).generate_all(results, size_bound=6)
        assert [snippet_signature(g) for g in base] == [snippet_signature(g) for g in distinct]

    def test_single_result_untouched(self, figure5_idx):
        results = SearchEngine(figure5_idx).search("jeans houston")
        batch = DistinctSnippetGenerator(figure5_idx.analyzer).generate_all(results, size_bound=6)
        assert len(batch) == len(results)

    def test_max_rounds_zero_is_base_behaviour(self, clashing_index):
        results = SearchEngine(clashing_index).search("store texas jeans")
        generator = DistinctSnippetGenerator(clashing_index.analyzer, max_rounds=0)
        batch = generator.generate_all(results, size_bound=6)
        signatures = [snippet_signature(generated) for generated in batch]
        assert signatures[0] == signatures[1]
