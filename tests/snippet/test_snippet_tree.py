"""Tests for the snippet tree (size accounting, growth, materialisation)."""

from __future__ import annotations

import pytest

from repro.errors import SnippetError
from repro.search.engine import SearchEngine
from repro.snippet.ilist import IListItem, ItemKind
from repro.snippet.snippet_tree import Snippet
from repro.xmltree.dewey import Dewey


@pytest.fixture()
def result(small_index):
    return SearchEngine(small_index).search("texas apparel")[0]


def make_item(text: str, instances) -> IListItem:
    return IListItem(kind=ItemKind.KEYWORD, text=text, identity=text, instances=list(instances))


class TestEmptySnippet:
    def test_contains_only_root(self, result):
        snippet = Snippet(result)
        assert snippet.size_edges == 0
        assert snippet.size_nodes == 1
        assert snippet.contains_label(result.root)
        assert snippet.is_connected()

    def test_to_tree_of_empty_snippet(self, result):
        tree = Snippet(result).to_tree()
        assert tree.size_nodes == 1
        assert tree.root.tag == result.root_node.tag


class TestCostAndGrowth:
    def test_cost_is_path_length(self, result, small_retailer_tree):
        snippet = Snippet(result)
        city = small_retailer_tree.find_by_tag("city")[0]
        assert snippet.cost_of(city.dewey) == city.dewey.depth - result.root.depth

    def test_cost_of_root_is_zero(self, result):
        assert Snippet(result).cost_of(result.root) == 0

    def test_cost_decreases_after_overlap(self, result, small_retailer_tree):
        snippet = Snippet(result)
        store = small_retailer_tree.find_by_tag("store")[0]
        city = store.find_child("city")
        name = store.find_child("name")
        snippet.add_instance(make_item("city", [city.dewey]), city.dewey)
        # the path to the sibling "name" now shares the store node
        assert snippet.cost_of(name.dewey) == 1

    def test_add_instance_updates_everything(self, result, small_retailer_tree):
        snippet = Snippet(result)
        city = small_retailer_tree.find_by_tag("city")[0]
        item = make_item("houston", [city.dewey])
        added = snippet.add_instance(item, city.dewey)
        assert added == snippet.size_edges == city.dewey.depth - result.root.depth
        assert snippet.covers("houston")
        assert snippet.chosen_instances["houston"] == city.dewey
        assert snippet.covered_texts == ["houston"]
        assert snippet.is_connected()

    def test_outside_instance_rejected(self, small_index, small_retailer_tree):
        results = SearchEngine(small_index).search("houston")
        store_result = results[0]  # rooted at the Houston store
        other_store_city = small_retailer_tree.find_by_tag("city")[1]
        snippet = Snippet(store_result)
        with pytest.raises(SnippetError):
            snippet.cost_of(other_store_city.dewey)

    def test_would_fit(self, result, small_retailer_tree):
        snippet = Snippet(result)
        city = small_retailer_tree.find_by_tag("city")[0]
        assert snippet.would_fit(city.dewey, bound=10)
        assert not snippet.would_fit(city.dewey, bound=1)


class TestCheapestInstance:
    def test_prefers_lowest_cost(self, result, small_retailer_tree):
        snippet = Snippet(result)
        store = small_retailer_tree.find_by_tag("store")[0]
        snippet.add_instance(make_item("store", [store.dewey]), store.dewey)
        # outwear occurs in both stores; the instance inside the already
        # selected store is cheaper
        categories = [
            node.dewey
            for node in small_retailer_tree.find_by_tag("category")
            if node.text == "outwear"
        ]
        chosen, cost = snippet.cheapest_instance(categories)
        assert store.dewey.is_ancestor_of(chosen)
        assert cost < max(snippet.cost_of(label) for label in categories)

    def test_tie_broken_by_document_order(self, result, small_retailer_tree):
        snippet = Snippet(result)
        cities = [node.dewey for node in small_retailer_tree.find_by_tag("city")]
        chosen, _ = snippet.cheapest_instance(cities)
        assert chosen == min(cities)

    def test_ignores_instances_outside_result(self, small_index, small_retailer_tree):
        results = SearchEngine(small_index).search("houston")
        snippet = Snippet(results[0])
        outside = small_retailer_tree.find_by_tag("city")[1].dewey
        assert snippet.cheapest_instance([outside]) is None


class TestMaterialisation:
    def test_to_tree_contains_exactly_selected_nodes(self, result, small_retailer_tree):
        snippet = Snippet(result)
        city = small_retailer_tree.find_by_tag("city")[0]
        snippet.add_instance(make_item("houston", [city.dewey]), city.dewey)
        tree = snippet.to_tree()
        assert tree.size_nodes == snippet.size_nodes
        assert [node.tag for node in tree.iter_nodes()] == ["retailer", "store", "city"]
        assert tree.find_by_tag("city")[0].text == "Houston"

    def test_selected_nodes_in_document_order(self, result, small_retailer_tree):
        snippet = Snippet(result)
        for node in small_retailer_tree.find_by_tag("city"):
            snippet.add_instance(make_item(node.text, [node.dewey]), node.dewey)
        labels = [node.dewey for node in snippet.selected_nodes()]
        assert labels == sorted(labels)

    def test_repr(self, result):
        assert "edges=0" in repr(Snippet(result))
