"""Tests for snippet rendering (text and HTML)."""

from __future__ import annotations

import pytest

from repro.search.engine import SearchEngine
from repro.snippet.baselines import TextWindowSnippetGenerator
from repro.snippet.generator import SnippetGenerator
from repro.snippet.render import (
    render_batch_text,
    render_result_page,
    render_snippet_html,
    render_snippet_text,
    render_text_snippet,
    write_result_page,
)


@pytest.fixture()
def figure5_batch(figure5_idx):
    results = SearchEngine(figure5_idx).search("store texas")
    return SnippetGenerator(figure5_idx.analyzer).generate_all(results, size_bound=6)


class TestTextRendering:
    def test_snippet_text_shows_tags_and_values(self, figure5_batch):
        text = render_snippet_text(figure5_batch[0])
        assert "store" in text
        assert "Texas" in text
        assert "edges" in text

    def test_snippet_text_header_contains_key(self, figure5_batch):
        text = render_snippet_text(figure5_batch[0])
        assert ("Levis" in text) or ("ESprit" in text)

    def test_show_ilist_flag(self, figure5_batch):
        with_ilist = render_snippet_text(figure5_batch[0], show_ilist=True)
        without = render_snippet_text(figure5_batch[0], show_ilist=False)
        assert "IList:" in with_ilist
        assert "IList:" not in without

    def test_batch_rendering_includes_query_and_all_results(self, figure5_batch):
        text = render_batch_text(figure5_batch)
        assert "store texas" in text
        assert text.count("Result #") == len(figure5_batch)

    def test_text_snippet_rendering(self, figure5_idx):
        results = SearchEngine(figure5_idx).search("store texas")
        flat = TextWindowSnippetGenerator().generate(results[0], 6)
        rendered = render_text_snippet(flat)
        assert rendered.startswith("Result #")
        assert "..." in rendered


class TestHtmlRendering:
    def test_fragment_contains_tags_and_values(self, figure5_batch):
        html_fragment = render_snippet_html(figure5_batch[0])
        assert '<div class="snippet">' in html_fragment
        assert "store" in html_fragment
        assert "Texas" in html_fragment

    def test_fragment_escapes_content(self, figure5_batch):
        html_fragment = render_snippet_html(figure5_batch[0])
        assert "<Texas>" not in html_fragment  # values are escaped/wrapped

    def test_full_page_structure(self, figure5_batch):
        page = render_result_page(figure5_batch)
        assert page.startswith("<!DOCTYPE html>")
        assert page.count('<div class="snippet">') == len(figure5_batch)
        assert "store texas" in page

    def test_full_result_embedded_for_drill_down(self, figure5_batch):
        page = render_result_page(figure5_batch)
        assert "<details>" in page and "full query result" in page

    def test_write_result_page(self, figure5_batch, tmp_path):
        target = tmp_path / "page.html"
        written = write_result_page(figure5_batch, target)
        assert written == str(target)
        assert target.read_text(encoding="utf-8").startswith("<!DOCTYPE html>")
