"""Tests for the Query Result Key Identifier (§2.2)."""

from __future__ import annotations

import pytest

from repro.index.builder import IndexBuilder
from repro.search.engine import SearchEngine
from repro.search.query import KeywordQuery
from repro.snippet.result_key import QueryResultKeyIdentifier
from repro.snippet.return_entity import ReturnEntityIdentifier
from repro.xmltree.builder import tree_from_dict


def identify_keys(index, result, query_text):
    query = KeywordQuery.parse(query_text)
    decision = ReturnEntityIdentifier(index.analyzer).identify(query, result)
    return QueryResultKeyIdentifier(index.analyzer).identify(result, decision)


class TestPaperExample:
    def test_brook_brothers_is_the_result_key(self, figure1_idx, figure1_result):
        keys = identify_keys(figure1_idx, figure1_result, "Texas, apparel, retailer")
        assert len(keys) == 1
        key = keys[0]
        assert key.value == "Brook Brothers"
        assert key.entity_tag == "retailer"
        assert key.attribute_tag == "name"
        assert key.mined
        assert str(key) == "Brook Brothers"

    def test_key_instances_inside_result(self, figure1_idx, figure1_result):
        keys = identify_keys(figure1_idx, figure1_result, "Texas, apparel, retailer")
        assert all(figure1_result.contains_label(label) for label in keys[0].instances)


class TestFigure5:
    def test_store_names_are_keys(self, figure5_idx):
        results = SearchEngine(figure5_idx).search("store texas")
        values = set()
        for result in results:
            keys = identify_keys(figure5_idx, result, "store texas")
            assert len(keys) == 1
            values.add(keys[0].value)
        assert values == {"Levis", "ESprit"}


class TestFallbacks:
    def test_fallback_to_first_attribute_when_no_mined_key(self):
        # both attributes repeat their values → no mined key for clothes;
        # fall back to the first attribute of the return-entity instance
        tree = tree_from_dict(
            "catalog",
            {"clothes": [
                {"category": "suit", "fitting": "man"},
                {"category": "suit", "fitting": "man"},
            ]},
        )
        index = IndexBuilder().build(tree)
        results = SearchEngine(index).search("clothes suit")
        keys = identify_keys(index, results[0], "clothes suit")
        assert len(keys) == 1
        assert keys[0].attribute_tag == "category"
        assert not keys[0].mined

    def test_no_key_when_entity_has_no_attributes(self):
        tree = tree_from_dict(
            "db",
            {"group": [{"member": [{"name": "a"}]}, {"member": [{"name": "b"}]}]},
        )
        index = IndexBuilder().build(tree)
        results = SearchEngine(index).search("group")
        keys = identify_keys(index, results[0], "group")
        # group has no attribute children at all → no key
        assert keys == []

    def test_duplicate_key_values_merged(self):
        tree = tree_from_dict(
            "db",
            {
                "shelf": [
                    {"label": "A", "book": [{"title": "X"}]},
                    {"label": "A", "book": [{"title": "Y"}]},
                ]
            },
        )
        index = IndexBuilder().build(tree)
        # query hits the whole db → both shelves are return instances with the
        # same (non-unique → fallback) key value "A"
        results = SearchEngine(index).search("shelf")
        all_keys = identify_keys(index, results[0], "shelf")
        values = [key.value for key in all_keys]
        assert values.count("A") <= 1
