"""Unit tests for the structured request log."""

from __future__ import annotations

import io
import json

import pytest

from repro.api.protocol import SearchRequest, SearchResponse
from repro.obs.reqlog import RequestLogger
from repro.obs.trace import Trace, activate


def _request() -> SearchRequest:
    return SearchRequest(query="store texas", document="stores")


def _response(**overrides) -> SearchResponse:
    defaults = dict(
        query="store texas", document="stores", keywords=("store", "texas"),
        algorithm="slca", total_results=0, page=1, page_size=None,
        next_page=None, results=(),
    )
    defaults.update(overrides)
    return SearchResponse(**defaults)


class TestRequestLogger:
    def test_one_json_line_per_request(self):
        sink = io.StringIO()
        logger = RequestLogger(sink)
        logger(_request(), _response(), 0.004)
        logger(_request(), _response(), 0.005)
        lines = sink.getvalue().splitlines()
        assert len(lines) == 2
        record = json.loads(lines[0])
        assert record["kind"] == "search"
        assert record["document"] == "stores"
        assert record["seconds"] == 0.004
        assert record["slow"] is False
        assert record["code"] is None

    def test_request_id_joins_the_active_trace(self):
        sink = io.StringIO()
        logger = RequestLogger(sink)
        trace = Trace(request_id="req-42")
        with activate(trace):
            logger(_request(), _response(), 0.001)
        record = json.loads(sink.getvalue())
        assert record["request_id"] == "req-42"

    def test_no_trace_means_null_request_id(self):
        sink = io.StringIO()
        RequestLogger(sink)(_request(), _response(), 0.001)
        assert json.loads(sink.getvalue())["request_id"] is None

    def test_slow_flag_at_threshold(self):
        sink = io.StringIO()
        logger = RequestLogger(sink, slow_query_ms=10.0)
        logger(_request(), _response(), 0.010)  # exactly at the threshold
        logger(_request(), _response(), 0.002)
        first, second = (json.loads(line) for line in sink.getvalue().splitlines())
        assert first["slow"] is True
        assert second["slow"] is False

    def test_only_slow_suppresses_fast_requests(self):
        sink = io.StringIO()
        logger = RequestLogger(sink, slow_query_ms=10.0, only_slow=True)
        logger(_request(), _response(), 0.002)
        assert sink.getvalue() == ""
        logger(_request(), _response(), 0.020)
        assert json.loads(sink.getvalue())["slow"] is True

    def test_only_slow_requires_threshold(self):
        with pytest.raises(ValueError):
            RequestLogger(io.StringIO(), only_slow=True)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            RequestLogger(io.StringIO(), slow_query_ms=-1)

    def test_shard_and_cache_provenance_logged_when_present(self):
        sink = io.StringIO()
        logger = RequestLogger(sink)
        logger(_request(), _response(shard=2, from_cache=True), 0.001)
        record = json.loads(sink.getvalue())
        assert record["shard"] == 2
        assert record["from_cache"] is True

    def test_absent_provenance_fields_are_omitted(self):
        # A non-sharded search response carries no shard provenance; an
        # object without the attributes (a batch response, say) omits both.
        sink = io.StringIO()
        logger = RequestLogger(sink)
        logger(_request(), _response(), 0.001)
        record = json.loads(sink.getvalue())
        assert "shard" not in record
        assert record["from_cache"] is False

        sink.truncate(0)
        sink.seek(0)
        logger(object(), object(), 0.001)
        record = json.loads(sink.getvalue())
        assert "shard" not in record
        assert "from_cache" not in record
        assert record["kind"] is None

    def test_failing_sink_never_raises(self):
        class BrokenSink:
            def write(self, _text):
                raise OSError("disk full")

            def flush(self):
                raise OSError("disk full")

        RequestLogger(BrokenSink())(_request(), _response(), 0.001)

    def test_closed_stringio_never_raises(self):
        sink = io.StringIO()
        sink.close()
        RequestLogger(sink)(_request(), _response(), 0.001)
