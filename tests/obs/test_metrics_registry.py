"""Unit tests for the metrics registry: counters, gauges, histograms."""

from __future__ import annotations

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    METRICS_SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_inc_and_value_by_label(self):
        counter = Counter("repro_requests_total", "requests", ("kind",))
        counter.inc(kind="search")
        counter.inc(2, kind="search")
        counter.inc(kind="batch")
        assert counter.value(kind="search") == 3
        assert counter.value(kind="batch") == 1
        assert counter.value(kind="update") == 0

    def test_negative_increment_rejected(self):
        counter = Counter("c_total", "help")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_label_mismatch_rejected(self):
        counter = Counter("c_total", "help", ("kind",))
        with pytest.raises(ValueError):
            counter.inc(code="oops")
        with pytest.raises(ValueError):
            counter.inc()

    def test_invalid_metric_name_rejected(self):
        with pytest.raises(ValueError):
            Counter("9starts_with_digit", "help")
        with pytest.raises(ValueError):
            Counter("has space", "help")

    def test_prometheus_render(self):
        counter = Counter("repro_requests_total", "Requests served.", ("kind",))
        counter.inc(kind="search")
        lines = counter.render()
        assert "# HELP repro_requests_total Requests served." in lines
        assert "# TYPE repro_requests_total counter" in lines
        assert 'repro_requests_total{kind="search"} 1' in lines


class TestGauge:
    def test_set_add_value(self):
        gauge = Gauge("repro_in_flight", "help")
        gauge.set(5)
        gauge.add(-2)
        assert gauge.value() == 3

    def test_render_without_labels(self):
        gauge = Gauge("repro_documents", "help")
        gauge.set(12)
        assert "repro_documents 12" in gauge.render()


class TestHistogram:
    def test_count_and_sum(self):
        histogram = Histogram("repro_seconds", "help", ("kind",))
        for value in (0.001, 0.002, 0.2):
            histogram.observe(value, kind="search")
        assert histogram.count(kind="search") == 3
        snapshot = histogram.snapshot()["series"][0]
        assert snapshot["count"] == 3
        assert snapshot["sum"] == pytest.approx(0.203)

    def test_buckets_are_cumulative_in_snapshot(self):
        histogram = Histogram("h_seconds", "help", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(5.0)  # overflow → +Inf only
        buckets = histogram.snapshot()["series"][0]["buckets"]
        assert buckets["0.1"] == 1
        assert buckets["1.0"] == 2
        assert buckets["+Inf"] == 3

    def test_quantiles_interpolate(self):
        histogram = Histogram("h_seconds", "help", buckets=(1.0, 2.0, 4.0))
        for value in (0.5,) * 50 + (1.5,) * 50:
            histogram.observe(value)
        # p50 falls on the boundary of the first bucket; p99 inside the second
        assert histogram.quantile(0.5) == pytest.approx(1.0)
        assert 1.0 < histogram.quantile(0.99) <= 2.0

    def test_quantile_of_empty_series_is_none(self):
        # An unobserved series has no quantiles — 0.0 would be a fabricated
        # measurement, and dashboards plot fabricated measurements.
        histogram = Histogram("h_seconds", "help")
        assert histogram.quantile(0.95) is None
        labelled = Histogram("h2_seconds", "help", ("kind",))
        labelled.labels(kind="search")  # bound but never observed
        assert labelled.quantile(0.5, kind="search") is None

    def test_quantile_of_single_sample_is_the_sample(self):
        # One observation: every quantile is that observation, not a value
        # interpolated inside the owning bucket that was never measured.
        histogram = Histogram("h_seconds", "help", buckets=(0.1, 1.0, 10.0))
        histogram.observe(0.42)
        for q in (0.0, 0.5, 0.95, 0.99, 1.0):
            assert histogram.quantile(q) == pytest.approx(0.42)

    def test_snapshot_quantiles_of_empty_series_are_null(self):
        histogram = Histogram("h_seconds", "help", ("kind",))
        histogram.labels(kind="search")  # series exists, zero observations
        quantiles = histogram.snapshot()["series"][0]["quantiles"]
        assert quantiles == {"p50": None, "p95": None, "p99": None}

    def test_quantile_overflow_returns_last_bound(self):
        histogram = Histogram("h_seconds", "help", buckets=(0.1, 1.0))
        histogram.observe(100.0)
        histogram.observe(200.0)
        assert histogram.quantile(0.99) == 1.0

    def test_quantile_range_checked(self):
        histogram = Histogram("h_seconds", "help")
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_snapshot_reports_p50_p95_p99(self):
        histogram = Histogram("h_seconds", "help")
        histogram.observe(0.01)
        quantiles = histogram.snapshot()["series"][0]["quantiles"]
        assert set(quantiles) == {"p50", "p95", "p99"}

    def test_prometheus_render_shape(self):
        histogram = Histogram("h_seconds", "help", ("kind",), buckets=(0.1, 1.0))
        histogram.observe(0.05, kind="search")
        text = "\n".join(histogram.render())
        assert 'h_seconds_bucket{kind="search",le="0.1"} 1' in text
        assert 'h_seconds_bucket{kind="search",le="+Inf"} 1' in text
        assert 'h_seconds_sum{kind="search"} 0.05' in text
        assert 'h_seconds_count{kind="search"} 1' in text

    def test_needs_at_least_one_bucket(self):
        with pytest.raises(ValueError):
            Histogram("h_seconds", "help", buckets=())

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestMetricsRegistry:
    def test_get_or_create_shares_series(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_requests_total", "help", ("kind",))
        second = registry.counter("repro_requests_total", "help", ("kind",))
        assert first is second

    def test_type_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_thing", "help")
        with pytest.raises(ValueError):
            registry.gauge("repro_thing", "help")

    def test_snapshot_is_schema_versioned(self):
        registry = MetricsRegistry()
        registry.counter("repro_a_total", "help").inc()
        snapshot = registry.snapshot()
        assert snapshot["schema_version"] == METRICS_SCHEMA_VERSION
        assert "repro_a_total" in snapshot["metrics"]

    def test_collector_runs_on_export(self):
        registry = MetricsRegistry()
        registry.register_collector(
            lambda reg: reg.gauge("repro_docs", "help").set(7)
        )
        snapshot = registry.snapshot()
        assert snapshot["metrics"]["repro_docs"]["series"][0]["value"] == 7

    def test_broken_collector_does_not_fail_export(self):
        registry = MetricsRegistry()

        def explode(_reg):
            raise RuntimeError("collector bug")

        registry.register_collector(explode)
        registry.counter("repro_ok_total", "help").inc()
        assert "repro_ok_total" in registry.snapshot()["metrics"]
        assert registry.render_prometheus().endswith("\n")

    def test_prometheus_export_concatenates_metrics(self):
        registry = MetricsRegistry()
        registry.counter("repro_a_total", "help a").inc()
        registry.histogram("repro_b_seconds", "help b").observe(0.01)
        text = registry.render_prometheus()
        assert "# TYPE repro_a_total counter" in text
        assert "# TYPE repro_b_seconds histogram" in text
