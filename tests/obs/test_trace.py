"""Unit tests for the trace model: spans, propagation, buffer, stitching."""

from __future__ import annotations

import threading

import pytest

from repro.obs.trace import (
    MAX_SPANS,
    Span,
    Trace,
    TraceBuffer,
    activate,
    current_span_id,
    current_trace,
    format_trace,
    parse_trace_header,
    trace_header_value,
)


class TestSpanRecording:
    def test_nested_spans_parent_automatically(self):
        trace = Trace()
        with trace.span("outer") as outer_id:
            with trace.span("inner") as inner_id:
                pass
        spans = {span.name: span for span in trace.spans}
        assert spans["outer"].parent_id is None
        assert spans["inner"].parent_id == outer_id
        assert spans["inner"].span_id == inner_id

    def test_span_ids_are_deterministic_per_process(self):
        trace = Trace(process="local")
        with trace.span("a"):
            pass
        with trace.span("b"):
            pass
        assert [span.span_id for span in trace.spans] == ["local:1", "local:2"]

    def test_sibling_spans_share_a_parent(self):
        trace = Trace()
        with trace.span("root") as root_id:
            with trace.span("first"):
                pass
            with trace.span("second"):
                pass
        spans = {span.name: span for span in trace.spans}
        assert spans["first"].parent_id == root_id
        assert spans["second"].parent_id == root_id

    def test_add_span_parents_under_open_span(self):
        trace = Trace()
        with trace.span("root") as root_id:
            leaf_id = trace.add_span("queue", 0.005)
        leaf = next(span for span in trace.spans if span.span_id == leaf_id)
        assert leaf.parent_id == root_id
        assert leaf.seconds == 0.005

    def test_add_span_explicit_parent_wins(self):
        trace = Trace()
        anchor = trace.add_span("anchor", 0.0)
        child = trace.add_span("child", 0.001, parent_id=anchor)
        recorded = next(span for span in trace.spans if span.span_id == child)
        assert recorded.parent_id == anchor

    def test_attributes_round_trip(self):
        trace = Trace()
        with trace.span("work", shard=3, role="primary"):
            pass
        wire = trace.to_wire()["spans"][0]
        assert wire["attributes"] == {"shard": 3, "role": "primary"}
        assert Span.from_wire(wire).attributes == {"shard": 3, "role": "primary"}

    def test_max_spans_cap_counts_drops(self):
        trace = Trace()
        for index in range(MAX_SPANS + 7):
            trace.add_span(f"s{index}", 0.0)
        wire = trace.to_wire()
        assert len(wire["spans"]) == MAX_SPANS
        assert wire["dropped_spans"] == 7

    def test_absorb_timings_prefixes_phases(self):
        trace = Trace()
        with trace.span("service"):
            trace.absorb_timings({"search": 0.01, "snippet": 0.02})
        names = {span.name for span in trace.spans}
        assert {"phase:search", "phase:snippet"} <= names


class TestContextPropagation:
    def test_no_trace_by_default(self):
        assert current_trace() is None
        assert current_span_id() is None

    def test_activate_scopes_the_trace(self):
        trace = Trace()
        with activate(trace):
            assert current_trace() is trace
        assert current_trace() is None

    def test_activate_seeds_parenting(self):
        trace = Trace()
        with activate(trace, parent_span_id="local:9"):
            span_id = trace.add_span("leaf", 0.0)
        leaf = next(span for span in trace.spans if span.span_id == span_id)
        assert leaf.parent_id == "local:9"

    def test_activate_none_masks_outer_trace(self):
        trace = Trace()
        with activate(trace):
            with activate(None):
                assert current_trace() is None
            assert current_trace() is trace

    def test_plain_thread_does_not_inherit(self):
        trace = Trace()
        seen: list[Trace | None] = []
        with activate(trace):
            worker = threading.Thread(target=lambda: seen.append(current_trace()))
            worker.start()
            worker.join()
        assert seen == [None]


class TestWireFormat:
    def test_to_wire_round_trips_through_span_from_wire(self):
        trace = Trace(request_id="req-1", process="local")
        with trace.span("root"):
            pass
        wire = trace.to_wire()
        assert wire["request_id"] == "req-1"
        restored = [Span.from_wire(span) for span in wire["spans"]]
        assert restored[0].name == "root"
        assert restored[0].process == "local"

    def test_absorb_wire_reparents_remote_roots(self):
        trace = Trace(process="local")
        remote = [
            {"name": "http:/v1/search", "id": "server:9:1", "parent": None,
             "seconds": 0.01, "start": 0.0, "process": "server:9"},
            {"name": "request:search", "id": "server:9:2", "parent": "server:9:1",
             "seconds": 0.009, "start": 0.001, "process": "server:9"},
        ]
        with trace.span("http:POST /v1/search") as anchor:
            trace.absorb_wire(remote)
        spans = {span.span_id: span for span in trace.spans}
        assert spans["server:9:1"].parent_id == anchor
        # interior links survive the stitch
        assert spans["server:9:2"].parent_id == "server:9:1"

    def test_absorb_wire_reparents_unknown_parents(self):
        trace = Trace()
        anchor = trace.add_span("anchor", 0.0)
        trace.absorb_wire(
            [{"name": "orphan", "id": "x:1", "parent": "never-shipped",
              "seconds": 0.0, "start": 0.0, "process": "x"}],
            parent_id=anchor,
        )
        orphan = next(span for span in trace.spans if span.span_id == "x:1")
        assert orphan.parent_id == anchor

    def test_absorb_wire_ignores_garbage_rows(self):
        trace = Trace()
        trace.absorb_wire(["not-a-dict", 42])  # type: ignore[list-item]
        assert trace.spans == []


class TestTraceHeader:
    def test_round_trip(self):
        trace = Trace()
        assert parse_trace_header(trace_header_value(trace)) == trace.request_id

    @pytest.mark.parametrize(
        "value", [None, "", "   ", "x" * 65, "bad header", "semi;colon", "a\nb"]
    )
    def test_malformed_values_are_absent(self, value):
        assert parse_trace_header(value) is None

    def test_token_characters_allowed(self):
        assert parse_trace_header("abc-DEF_1.2:3") == "abc-DEF_1.2:3"


class TestTraceBuffer:
    def test_put_get(self):
        buffer = TraceBuffer(capacity=4)
        trace = Trace(request_id="one")
        buffer.put(trace)
        assert buffer.get("one")["request_id"] == "one"
        assert buffer.get("missing") is None

    def test_capacity_evicts_oldest(self):
        buffer = TraceBuffer(capacity=2)
        for request_id in ("a", "b", "c"):
            buffer.put(Trace(request_id=request_id))
        assert len(buffer) == 2
        assert buffer.get("a") is None
        assert buffer.get("c") is not None

    def test_reinsert_moves_to_newest(self):
        buffer = TraceBuffer(capacity=2)
        buffer.put(Trace(request_id="a"))
        buffer.put(Trace(request_id="b"))
        buffer.put(Trace(request_id="a"))  # refresh
        buffer.put(Trace(request_id="c"))  # evicts b, not a
        assert buffer.get("a") is not None
        assert buffer.get("b") is None

    def test_newest_is_newest_first(self):
        buffer = TraceBuffer(capacity=8)
        for request_id in ("a", "b", "c"):
            buffer.put(Trace(request_id=request_id))
        assert [wire["request_id"] for wire in buffer.newest(2)] == ["c", "b"]

    @pytest.mark.parametrize("capacity", [0, -1, True, 1.5])
    def test_invalid_capacity_rejected(self, capacity):
        with pytest.raises(ValueError):
            TraceBuffer(capacity=capacity)


class TestFormatTrace:
    def test_renders_an_indented_tree(self):
        trace = Trace(request_id="req-7")
        with trace.span("request:search"):
            with trace.span("stage:metrics"):
                pass
        text = format_trace(trace.to_wire())
        lines = text.splitlines()
        assert lines[0] == "trace req-7"
        assert lines[1].startswith("  - request:search")
        assert lines[2].startswith("    - stage:metrics")

    def test_notes_dropped_spans(self):
        trace = Trace()
        for index in range(MAX_SPANS + 1):
            trace.add_span(f"s{index}", 0.0)
        assert "dropped" in format_trace(trace.to_wire())
