"""The unified stats() contract: one envelope shape, snapshots not handles.

Every serving backend's ``stats()`` returns the schema-versioned envelope
(``schema_version`` + ``backend`` + sections), and what it returns is a
*snapshot*: mutating the returned dict must never corrupt the live
counters a later caller reads.
"""

from __future__ import annotations

import pytest

from repro.api.backend import STATS_SCHEMA_VERSION, stats_envelope
from repro.api.gateway import build_gateway
from repro.api.protocol import SearchRequest
from repro.api.service import SnippetService
from repro.cluster.router import ClusterService
from tests.cluster.conftest import build_corpus


@pytest.fixture()
def service():
    backend = SnippetService(build_corpus())
    yield backend
    backend.close()


@pytest.fixture()
def cluster():
    backend = ClusterService.from_corpus(build_corpus(), shards=2)
    yield backend
    backend.close()


class TestEnvelope:
    def test_helper_shape(self):
        envelope = stats_envelope("some-backend", documents=3)
        assert envelope == {
            "schema_version": STATS_SCHEMA_VERSION,
            "backend": "some-backend",
            "documents": 3,
        }

    def test_snippet_service_envelope(self, service):
        stats = service.stats()
        assert stats["schema_version"] == STATS_SCHEMA_VERSION
        assert stats["backend"] == "snippet-service"
        assert stats["documents"] == 4
        assert "caches" in stats

    def test_cluster_service_envelope(self, cluster):
        stats = cluster.stats()
        assert stats["schema_version"] == STATS_SCHEMA_VERSION
        assert stats["backend"] == "cluster-service"
        assert stats["documents"] == 4
        assert [row["shard"] for row in stats["shards"]] == [0, 1]

    def test_gateway_preserves_the_inner_envelope(self, service):
        stack = build_gateway(service, max_in_flight=4)
        stats = stack.stats()
        # middleware sections merge INTO the backend envelope, flat
        assert stats["schema_version"] == STATS_SCHEMA_VERSION
        assert stats["backend"] == "snippet-service"
        assert "requests" in stats
        assert "admission" in stats


class TestStatsAreSnapshots:
    def test_mutating_gateway_stats_does_not_corrupt_counters(self, service):
        stack = build_gateway(service, max_in_flight=4)
        stack.execute(SearchRequest(query="store texas", document="stores"))

        first = stack.stats()
        assert first["requests"]["total"] == 1

        # Sabotage every nested section of the returned snapshot.
        first["requests"]["total"] = 10**6
        first["requests"]["by_kind"]["search"] = 10**6
        first["requests"]["by_kind"]["injected"] = 1
        first["admission"]["admitted"] = -5
        first["caches"].clear()

        second = stack.stats()
        assert second["requests"]["total"] == 1
        assert second["requests"]["by_kind"] == {"search": 1}
        assert second["admission"]["admitted"] == 1
        assert second["caches"]

    def test_backend_stats_are_snapshots_too(self, service, cluster):
        for backend in (service, cluster):
            first = backend.stats()
            first.clear()
            second = backend.stats()
            assert second["schema_version"] == STATS_SCHEMA_VERSION
            assert second["documents"] == 4

    def test_counters_survive_shard_row_mutation(self, cluster):
        first = cluster.stats()
        first["shards"][0]["documents"] = 999
        assert cluster.stats()["shards"][0]["documents"] != 999
