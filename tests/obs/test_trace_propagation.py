"""End-to-end trace propagation over a spawned remote cluster.

The tentpole acceptance test: one search through a 2-shard × 2-replica
:class:`~repro.cluster.remote.RemoteClusterService` behind the full
gateway stack yields ONE stitched trace — gateway stages, shard routing,
the coordinator→shard HTTP round trip and the shard backend's own spans,
joined across processes by the propagated ``X-Repro-Trace`` request_id —
while the default (meta-free) wire bytes stay byte-identical to a
single-corpus service with tracing enabled.
"""

from __future__ import annotations

import json

import pytest

from repro.api.client import ServiceClient
from repro.api.gateway import build_gateway
from repro.api.http import HttpServer
from repro.api.service import SnippetService
from repro.cluster.remote import RemoteClusterService
from repro.cluster.router import ClusterService
from tests.cluster.conftest import CLUSTER_DATASETS, QUERIES, build_corpus


def wire(backend, payload) -> str:
    if hasattr(payload, "to_dict"):
        payload = payload.to_dict()
    return backend.handle_json(json.dumps(payload, sort_keys=True))


def search_payload(document: str = "stores", **extra) -> dict:
    payload = {
        "kind": "search",
        "schema_version": 1,
        "query": "store texas",
        "document": document,
    }
    payload.update(extra)
    return payload


@pytest.fixture(scope="module")
def cluster_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("traced-cluster")
    service = ClusterService.from_corpus(build_corpus(), shards=2)
    service.save_dir(directory)
    service.close()
    return directory


@pytest.fixture(scope="module")
def traced_stack(cluster_dir):
    """The full coordinator stack: gateway over a spawned 2×2 cluster."""
    cluster = RemoteClusterService.spawn(cluster_dir, replicas=2)
    stack = build_gateway(cluster)
    yield stack
    stack.close()


@pytest.fixture(scope="module")
def single():
    service = SnippetService(build_corpus())
    yield service
    service.close()


class TestStitchedTrace:
    def _trace_for(self, stack, payload) -> dict:
        body = stack.handle_dict(payload)
        assert body["kind"] != "error", body
        assert "trace" in body["meta"]
        return body["meta"]["trace"]

    def test_one_trace_spans_both_processes(self, traced_stack):
        trace = self._trace_for(traced_stack, search_payload(include_meta=True))
        spans = trace["spans"]
        names = {span["name"] for span in spans}
        processes = {span["process"] for span in spans}

        # >= 4 distinct stages across the serving layers...
        assert "request:search" in names          # gateway root (coordinator)
        assert "stage:validation" in names        # middleware stage span
        assert any(name.startswith("shard:") for name in names)      # routing
        assert any(name.startswith("http:POST") for name in names)   # round trip
        assert any(name.startswith("service:") for name in names)    # shard backend
        assert any(name.startswith("phase:") for name in names)      # timing leaves

        # ...spanning both processes: the coordinator plus a shard server.
        assert "local" in processes
        assert any(process.startswith("server:") for process in processes)

    def test_spans_form_one_rooted_tree(self, traced_stack):
        trace = self._trace_for(traced_stack, search_payload(include_meta=True))
        spans = trace["spans"]
        by_id = {span["id"] for span in spans}
        roots = [span for span in spans if span["parent"] is None]
        assert len(roots) == 1
        assert roots[0]["name"] == "request:search"
        for span in spans:
            if span["parent"] is not None:
                assert span["parent"] in by_id, f"dangling parent in {span}"

    def test_remote_spans_nest_under_the_client_round_trip(self, traced_stack):
        trace = self._trace_for(traced_stack, search_payload(include_meta=True))
        spans = {span["id"]: span for span in trace["spans"]}
        remote = [span for span in spans.values() if span["process"] != "local"]
        assert remote, "no shard-server spans were stitched in"
        for span in remote:
            # Walking up from any remote span must reach the coordinator's
            # http round-trip span — the stitch anchor.
            current = span
            seen_http = False
            while current["parent"] is not None:
                current = spans[current["parent"]]
                if current["name"].startswith("http:POST"):
                    seen_http = True
            assert seen_http, f"remote span {span['name']} not under the round trip"

    def test_batch_fans_out_with_fanout_and_merge_spans(self, traced_stack):
        payload = {
            "kind": "batch",
            "schema_version": 1,
            "queries": list(QUERIES[:2]),
        }
        body = traced_stack.handle_dict(payload)
        assert body["kind"] == "batch_response"
        # Batch bodies carry meta only per entry; the whole-request trace
        # is still captured in the buffer.
        trace = traced_stack.last_trace()
        assert trace is not None
        names = {span["name"] for span in trace["spans"]}
        assert "request:batch" in names
        assert "cluster:fanout" in names
        assert "cluster:merge" in names

    def test_trace_lands_in_the_buffer(self, traced_stack):
        trace = self._trace_for(traced_stack, search_payload(include_meta=True))
        buffered = traced_stack.trace_buffer.get(trace["request_id"])
        assert buffered is not None
        assert buffered["request_id"] == trace["request_id"]


class TestDefaultBytesUnchanged:
    def test_meta_free_wire_bytes_are_byte_identical(self, traced_stack, single):
        """Tracing enabled, meta not requested → bytes as if it never existed."""
        for _dataset, name in CLUSTER_DATASETS:
            for query in QUERIES:
                payload = search_payload(document=name, query=query)
                assert wire(traced_stack, payload) == wire(single, payload)

    def test_error_bytes_are_byte_identical(self, traced_stack, single):
        payload = search_payload(document="no-such-document")
        assert wire(traced_stack, payload) == wire(single, payload)

    def test_meta_response_without_trace_key_elsewhere(self, traced_stack):
        body = traced_stack.handle_dict(search_payload(include_meta=True))
        assert "trace" in body["meta"]
        assert "trace" not in body  # only ever inside meta


class TestHttpEndToEnd:
    @pytest.fixture(scope="class")
    def server(self, traced_stack):
        with HttpServer(traced_stack, port=0) as running:
            yield running

    @pytest.fixture(scope="class")
    def client(self, server):
        client = ServiceClient(port=server.port)
        yield client
        client.close()

    def test_search_update_batch_feed_the_histograms(self, client):
        assert client.handle_dict(search_payload())["kind"] == "search_response"
        batch = {"kind": "batch", "schema_version": 1, "queries": ["store texas"]}
        assert client.handle_dict(batch)["kind"] == "batch_response"
        update = {
            "kind": "update",
            "schema_version": 1,
            "action": "remove",
            "document": "no-such-document",
        }
        assert client.handle_dict(update)["kind"] == "error"  # still observed

        snapshot = client.metrics()
        histogram = snapshot["metrics"]["repro_request_seconds"]
        kinds = {row["labels"]["kind"] for row in histogram["series"]}
        assert {"search", "batch", "update"} <= kinds
        for row in histogram["series"]:
            assert set(row["quantiles"]) == {"p50", "p95", "p99"}

    def test_metrics_json_is_schema_versioned(self, client):
        client.handle_dict(search_payload())
        snapshot = client.metrics()
        assert snapshot["schema_version"] == 1
        assert snapshot["metrics"]["repro_requests_total"]["type"] == "counter"

    def test_metrics_prometheus_exposition(self, client):
        client.handle_dict(search_payload())
        text = client.metrics_text()
        assert "# TYPE repro_requests_total counter" in text
        assert 'repro_requests_total{kind="search"}' in text
        assert 'repro_request_seconds_bucket{kind="search",le="+Inf"}' in text

    def test_trace_endpoint_serves_the_buffered_trace(self, client):
        body = client.handle_dict(search_payload(include_meta=True))
        request_id = body["meta"]["trace"]["request_id"]
        fetched = client.trace(request_id)
        assert fetched["request_id"] == request_id
        assert fetched["spans"]
        listing = client.trace()
        assert request_id in {wire["request_id"] for wire in listing["traces"]}

    def test_unknown_trace_id_is_a_structured_404(self, client):
        missing = client.trace("definitely-not-recorded")
        assert missing["kind"] == "error"

    def test_http_body_matches_in_process_bytes(self, client, traced_stack):
        payload = search_payload()
        over_http = json.dumps(client.handle_dict(payload), sort_keys=True)
        assert over_http == wire(traced_stack, payload)
