"""Tests for the LRU cache used by the query service layer."""

from __future__ import annotations

import pytest

from repro.utils.cache import CacheStats, LRUCache


class TestLRUCache:
    def test_put_get_roundtrip(self):
        cache = LRUCache(maxsize=4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert "a" in cache
        assert len(cache) == 1

    def test_miss_returns_default(self):
        cache = LRUCache(maxsize=4)
        assert cache.get("missing") is None
        assert cache.get("missing", 42) == 42
        assert cache.stats.misses == 2

    def test_eviction_drops_least_recently_used(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a": "b" is now least recently used
        cache.put("c", 3)
        assert cache.get("a") == 1
        assert cache.get("b") is None
        assert cache.get("c") == 3
        assert cache.stats.evictions == 1

    def test_put_refreshes_recency(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # rewrite refreshes recency and value
        cache.put("c", 3)
        assert cache.get("a") == 10
        assert cache.get("b") is None

    def test_zero_maxsize_disables_cache(self):
        cache = LRUCache(maxsize=0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_negative_maxsize_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(maxsize=-1)

    def test_invalidate_single_key(self):
        cache = LRUCache(maxsize=4)
        cache.put("a", 1)
        assert cache.invalidate("a") is True
        assert cache.invalidate("a") is False
        assert cache.get("a") is None
        assert cache.stats.invalidations == 1

    def test_invalidate_where_predicate(self):
        cache = LRUCache(maxsize=8)
        cache.put(("doc1", "q1"), 1)
        cache.put(("doc1", "q2"), 2)
        cache.put(("doc2", "q1"), 3)
        removed = cache.invalidate_where(lambda key: key[0] == "doc1")
        assert removed == 2
        assert cache.get(("doc2", "q1")) == 3
        assert cache.get(("doc1", "q1")) is None

    def test_clear(self):
        cache = LRUCache(maxsize=4)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_contains_does_not_touch_stats(self):
        cache = LRUCache(maxsize=4)
        cache.put("a", 1)
        assert "a" in cache
        assert "b" not in cache
        assert cache.stats.lookups == 0

    def test_repr(self):
        cache = LRUCache(maxsize=4)
        cache.put("a", 1)
        assert "size=1/4" in repr(cache)


class TestCacheStats:
    def test_hit_rate_empty(self):
        assert CacheStats().hit_rate == 0.0

    def test_hit_rate(self):
        stats = CacheStats(hits=3, misses=1)
        assert stats.hit_rate == 0.75
        assert stats.lookups == 4

    def test_as_dict(self):
        stats = CacheStats(hits=1, misses=1, evictions=2, invalidations=3)
        as_dict = stats.as_dict()
        assert as_dict["hits"] == 1
        assert as_dict["hit_rate"] == 0.5
        assert as_dict["evictions"] == 2
        assert as_dict["invalidations"] == 3
