"""Tests for text normalisation and tokenisation."""

from __future__ import annotations

import pytest

from repro.utils.text import (
    STOPWORDS,
    iter_index_terms,
    join_phrases,
    matches_keyword,
    normalize_token,
    normalize_value,
    singularize,
    tokenize,
    tokenize_query,
)


class TestTokenize:
    def test_splits_on_whitespace_and_punctuation(self):
        assert tokenize("Texas, apparel; retailer!") == ["texas", "apparel", "retailer"]

    def test_lowercases(self):
        assert tokenize("Brook Brothers") == ["brook", "brothers"]

    def test_keeps_digits(self):
        assert tokenize("year 2005") == ["year", "2005"]

    def test_empty_string(self):
        assert tokenize("") == []

    def test_only_punctuation(self):
        assert tokenize("...!!!") == []

    def test_mixed_alphanumeric(self):
        assert tokenize("item42 x") == ["item42", "x"]


class TestSingularize:
    def test_regular_plural(self):
        assert singularize("stores") == "store"

    def test_ies_plural(self):
        assert singularize("categories") == "category"

    def test_es_after_sibilant(self):
        assert singularize("boxes") == "box"

    def test_irregular_plural(self):
        assert singularize("children") == "child"
        assert singularize("women") == "woman"

    def test_clothes_is_kept(self):
        # the paper's tag is literally <clothes>
        assert singularize("clothes") == "clothes"

    def test_short_words_untouched(self):
        assert singularize("gas") == "gas"
        assert singularize("is") == "is"

    def test_ss_us_is_endings_untouched(self):
        assert singularize("dress") == "dress"
        assert singularize("status") == "status"
        assert singularize("analysis") == "analysis"

    def test_singular_word_untouched(self):
        assert singularize("store") == "store"


class TestNormalizeToken:
    def test_lowercases_and_strips(self):
        assert normalize_token("  Texas ") == "texas"

    def test_does_not_singularize(self):
        # identities must stay human-readable; "texas" must not become "texa"
        assert normalize_token("Texas") == "texas"
        assert normalize_token("stores") == "stores"


class TestTokenizeQuery:
    def test_paper_query(self):
        assert tokenize_query("Texas, apparel, retailer") == ["texas", "apparel", "retailer"]

    def test_drops_stopwords(self):
        assert tokenize_query("the stores in Texas") == ["stores", "texas"]

    def test_deduplicates_preserving_order(self):
        assert tokenize_query("texas TEXAS retailer texas") == ["texas", "retailer"]

    def test_empty_query(self):
        assert tokenize_query("") == []

    def test_stopwords_only(self):
        assert tokenize_query("the of and") == []

    def test_stopword_list_is_small_and_lowercase(self):
        assert all(word == word.lower() for word in STOPWORDS)
        assert "retailer" not in STOPWORDS


class TestNormalizeValue:
    def test_collapses_whitespace(self):
        assert normalize_value("  Brook   Brothers ") == "brook brothers"

    def test_case_folding(self):
        assert normalize_value("HOUSTON") == normalize_value("Houston")

    def test_empty(self):
        assert normalize_value("   ") == ""


class TestMatchesKeyword:
    def test_tag_match(self):
        assert matches_keyword("retailer", "retailer")

    def test_value_token_match(self):
        assert matches_keyword("Brook Brothers", "brothers")

    def test_no_match(self):
        assert not matches_keyword("Brook Brothers", "houston")

    def test_plural_keyword_matches_singular_text(self):
        assert matches_keyword("store", "stores")

    def test_singular_keyword_matches_plural_text(self):
        assert matches_keyword("stores", "store")

    def test_case_insensitive(self):
        assert matches_keyword("TEXAS", "texas")


class TestIterIndexTerms:
    def test_yields_raw_and_singular(self):
        assert set(iter_index_terms("stores")) == {"stores", "store"}

    def test_singular_only_once(self):
        assert list(iter_index_terms("store")) == ["store"]

    def test_multiword_value(self):
        terms = set(iter_index_terms("Brook Brothers"))
        assert "brook" in terms and "brothers" in terms


class TestJoinPhrases:
    def test_skips_empty(self):
        assert join_phrases(["a", "", "b"]) == "a b"

    def test_empty_input(self):
        assert join_phrases([]) == ""
