"""Tests for the timing helpers."""

from __future__ import annotations

import pytest

from repro.utils.timing import Stopwatch, TimingBreakdown, timed


class TestStopwatch:
    def test_start_stop_accumulates(self):
        watch = Stopwatch()
        watch.start()
        elapsed = watch.stop()
        assert elapsed >= 0.0
        assert watch.elapsed == elapsed

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_reset(self):
        watch = Stopwatch().start()
        watch.stop()
        watch.reset()
        assert watch.elapsed == 0.0
        assert not watch.running

    def test_running_flag(self):
        watch = Stopwatch()
        assert not watch.running
        watch.start()
        assert watch.running
        watch.stop()
        assert not watch.running

    def test_multiple_intervals_accumulate(self):
        watch = Stopwatch()
        watch.start()
        first = watch.stop()
        watch.start()
        second = watch.stop()
        assert second >= first


class TestTimingBreakdown:
    def test_measure_records_phase(self):
        breakdown = TimingBreakdown()
        with breakdown.measure("index"):
            sum(range(100))
        assert "index" in breakdown.phases
        assert breakdown.counts["index"] == 1
        assert breakdown.total >= 0.0

    def test_add_accumulates(self):
        breakdown = TimingBreakdown()
        breakdown.add("search", 0.5)
        breakdown.add("search", 0.25)
        assert breakdown.phases["search"] == pytest.approx(0.75)
        assert breakdown.counts["search"] == 2

    def test_mean(self):
        breakdown = TimingBreakdown()
        breakdown.add("phase", 1.0)
        breakdown.add("phase", 3.0)
        assert breakdown.mean("phase") == pytest.approx(2.0)

    def test_mean_of_unknown_phase_is_zero(self):
        assert TimingBreakdown().mean("nothing") == 0.0

    def test_merge(self):
        first = TimingBreakdown()
        first.add("a", 1.0)
        second = TimingBreakdown()
        second.add("a", 2.0)
        second.add("b", 0.5)
        first.merge(second)
        assert first.phases["a"] == pytest.approx(3.0)
        assert first.phases["b"] == pytest.approx(0.5)

    def test_as_dict_is_copy(self):
        breakdown = TimingBreakdown()
        breakdown.add("a", 1.0)
        copy = breakdown.as_dict()
        copy["a"] = 99.0
        assert breakdown.phases["a"] == pytest.approx(1.0)

    def test_format_table_empty(self):
        assert "no timings" in TimingBreakdown().format_table()

    def test_format_table_lists_phases(self):
        breakdown = TimingBreakdown()
        breakdown.add("index", 0.1)
        breakdown.add("search", 0.2)
        text = breakdown.format_table()
        assert "index" in text and "search" in text and "TOTAL" in text


class TestTimedContextManager:
    def test_timed_yields_running_watch(self):
        with timed() as watch:
            assert watch.running
        assert not watch.running
        assert watch.elapsed >= 0.0
