"""Regression tests for pagination validation (ISSUE 3 satellite).

Before the guard, ``page <= 0`` produced a negative slice start and
silently returned items from the *end* of the sequence.
"""

from __future__ import annotations

import pytest

from repro.errors import PagingError
from repro.utils.paging import page_slice

ITEMS = ["a", "b", "c", "d", "e"]


class TestValidPaging:
    def test_first_page(self):
        assert page_slice(ITEMS, page=1, page_size=2) == ["a", "b"]

    def test_middle_and_last_pages(self):
        assert page_slice(ITEMS, page=2, page_size=2) == ["c", "d"]
        assert page_slice(ITEMS, page=3, page_size=2) == ["e"]

    def test_page_past_the_end_is_empty(self):
        assert page_slice(ITEMS, page=4, page_size=2) == []

    def test_none_page_size_is_everything_on_page_one(self):
        assert page_slice(ITEMS, page=1, page_size=None) == ITEMS
        assert page_slice(ITEMS, page=2, page_size=None) == []


class TestRejectedPaging:
    def test_page_zero_raises(self):
        with pytest.raises(PagingError):
            page_slice(ITEMS, page=0, page_size=2)

    def test_negative_page_raises_instead_of_wrapping(self):
        # page=-1 used to slice items[-4:-2] — data from the END of the list.
        with pytest.raises(PagingError):
            page_slice(ITEMS, page=-1, page_size=2)

    def test_negative_page_size_raises(self):
        with pytest.raises(PagingError):
            page_slice(ITEMS, page=1, page_size=-2)

    def test_zero_page_size_raises(self):
        with pytest.raises(PagingError):
            page_slice(ITEMS, page=1, page_size=0)

    def test_bool_page_rejected(self):
        with pytest.raises(PagingError):
            page_slice(ITEMS, page=True, page_size=2)

    def test_negative_page_with_none_size_raises(self):
        with pytest.raises(PagingError):
            page_slice(ITEMS, page=-3, page_size=None)
