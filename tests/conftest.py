"""Shared fixtures for the eXtract test suite.

Expensive artefacts (the Figure 1 document and its index, the generated
retail/movies corpora) are built once per session; tests never mutate them.
"""

from __future__ import annotations

import pytest

from repro.datasets.movies import MoviesConfig, generate_movies_document
from repro.datasets.paper_example import figure1_document, figure1_query
from repro.datasets.retail import RetailConfig, figure5_document, generate_retail_document
from repro.eval.figures import brook_brothers_result
from repro.index.builder import IndexBuilder
from repro.search.engine import SearchEngine
from repro.snippet.generator import SnippetGenerator
from repro.xmltree.builder import tree_from_dict


# ---------------------------------------------------------------------- #
# small hand-built documents
# ---------------------------------------------------------------------- #
@pytest.fixture()
def small_retailer_tree():
    """A small retailer document used across unit tests."""
    return tree_from_dict(
        "retailer",
        {
            "name": "Brook Brothers",
            "product": "apparel",
            "store": [
                {
                    "name": "Galleria",
                    "state": "Texas",
                    "city": "Houston",
                    "merchandises": {
                        "clothes": [
                            {"category": "suit", "fitting": "man", "situation": "casual"},
                            {"category": "outwear", "fitting": "woman", "situation": "casual"},
                        ]
                    },
                },
                {
                    "name": "West Village",
                    "state": "Texas",
                    "city": "Austin",
                    "merchandises": {
                        "clothes": [
                            {"category": "outwear", "fitting": "man", "situation": "formal"},
                        ]
                    },
                },
            ],
        },
        name="small-retailer",
    )


@pytest.fixture()
def small_index(small_retailer_tree):
    """Index of the small retailer document."""
    return IndexBuilder().build(small_retailer_tree)


# ---------------------------------------------------------------------- #
# session-scoped heavy artefacts
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="session")
def figure1_tree():
    return figure1_document()


@pytest.fixture(scope="session")
def figure1_idx(figure1_tree):
    return IndexBuilder().build(figure1_tree)


@pytest.fixture(scope="session")
def figure1_result(figure1_idx):
    """The Brook Brothers query result of the running example."""
    return brook_brothers_result(figure1_idx)


@pytest.fixture(scope="session")
def figure1_query_text():
    return figure1_query()


@pytest.fixture(scope="session")
def figure5_idx():
    return IndexBuilder().build(figure5_document())


@pytest.fixture(scope="session")
def retail_idx():
    config = RetailConfig(retailers=4, stores_per_retailer=4, clothes_per_store=4, seed=3)
    return IndexBuilder().build(generate_retail_document(config, name="retail-fixture"))


@pytest.fixture(scope="session")
def movies_idx():
    return IndexBuilder().build(generate_movies_document(MoviesConfig(movies=20, seed=5)))


@pytest.fixture(scope="session")
def retail_results(retail_idx):
    """Results of a fixed query over the retail fixture."""
    return SearchEngine(retail_idx).search("retailer apparel")


@pytest.fixture(scope="session")
def retail_generator(retail_idx):
    return SnippetGenerator(retail_idx.analyzer)
