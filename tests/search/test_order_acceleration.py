"""Pre/post-order structure acceleration: correctness and hot-path proof.

Two properties anchor the v4 acceleration layer:

* :class:`~repro.xmltree.order.NodeOrder` range comparisons agree with the
  Dewey prefix walk on every pair of nodes (the XPath-accelerator
  encoding: ancestor-or-self(a, b) ⟺ pre(a) ≤ pre(b) ∧ post(b) ≤ post(a));
* when an order is supplied, SLCA/ELCA never fall back to the O(depth)
  Dewey prefix walk — the range helper IS the hot path.
"""

from __future__ import annotations

import itertools

import pytest

from repro.search.elca import compute_elca
from repro.search.slca import compute_slca
from repro.xmltree import dewey as dewey_module
from repro.xmltree.dewey import Dewey
from repro.xmltree.order import (
    NodeOrder,
    is_ancestor,
    is_ancestor_or_self,
    remove_ancestors,
    remove_descendants,
)


class TestNodeOrderCorrectness:
    def test_spans_agree_with_dewey_on_every_pair(self, figure1_tree):
        order = figure1_tree.order
        labels = [node.dewey for node in figure1_tree.iter_nodes()]
        for a, b in itertools.product(labels, repeat=2):
            assert is_ancestor_or_self(a, b, order) == a.is_ancestor_or_self(b)
            assert is_ancestor(a, b, order) == a.is_ancestor_of(b)

    def test_order_covers_every_node(self, figure1_tree):
        order = figure1_tree.order
        assert len(order) == figure1_tree.size_nodes
        for node in figure1_tree.iter_nodes():
            assert node.dewey in order
            assert order.span(node.dewey) == (node.pre, node.post)

    def test_spans_are_properly_nested(self, figure1_tree):
        # A child's (pre, post) interval sits strictly inside its parent's.
        for node in figure1_tree.iter_nodes():
            for child in node.children:
                assert node.pre < child.pre
                assert child.post < node.post

    def test_derived_label_hits_registered_span(self, figure1_tree):
        # Dewey labels hash by value, so a label derived via prefix() finds
        # the span registered for the equal tree node.
        order = figure1_tree.order
        deep = max(
            (node.dewey for node in figure1_tree.iter_nodes()), key=lambda d: d.depth
        )
        derived = deep.prefix(deep.depth - 1)
        assert order.span(derived) is not None

    def test_unknown_label_falls_back_to_prefix_walk(self, figure1_tree):
        order = figure1_tree.order
        foreign = Dewey((0, 99, 99))
        assert is_ancestor_or_self(Dewey((0,)), foreign, order)
        assert not is_ancestor(foreign, Dewey((0,)), order)

    def test_filters_match_dewey_module(self, figure1_tree):
        order = figure1_tree.order
        labels = [node.dewey for node in figure1_tree.iter_nodes()][::2]
        assert remove_ancestors(labels, order) == dewey_module.remove_ancestors(labels)
        assert remove_descendants(labels, order) == dewey_module.remove_descendants(labels)
        assert remove_ancestors(labels, None) == dewey_module.remove_ancestors(labels)
        assert remove_descendants(labels, None) == dewey_module.remove_descendants(labels)


class TestPrefixWalkOffHotPath:
    """With an order supplied, SLCA/ELCA never touch the Dewey walk."""

    @pytest.fixture()
    def walk_forbidden(self, monkeypatch):
        def forbidden(self, other):  # pragma: no cover - the point is it never runs
            raise AssertionError("Dewey prefix walk reached the accelerated hot path")

        monkeypatch.setattr(Dewey, "is_ancestor_or_self", forbidden)
        monkeypatch.setattr(Dewey, "is_ancestor_of", forbidden)

    def posting_lists(self, idx, query):
        return [idx.inverted.lookup(term) for term in query.split()]

    def test_slca_runs_without_prefix_walk(self, figure1_idx, walk_forbidden):
        order = figure1_idx.tree.order
        lists = self.posting_lists(figure1_idx, "texas apparel retailer")
        assert compute_slca(lists, order)

    def test_elca_runs_without_prefix_walk(self, figure1_idx, walk_forbidden):
        order = figure1_idx.tree.order
        lists = self.posting_lists(figure1_idx, "texas apparel retailer")
        assert compute_elca(lists, order)

    def test_single_keyword_runs_without_prefix_walk(self, figure1_idx, walk_forbidden):
        order = figure1_idx.tree.order
        lists = self.posting_lists(figure1_idx, "store")
        assert compute_slca(lists, order)
        assert compute_elca(lists, order)

    def test_without_order_the_walk_is_still_used(self, figure1_idx, walk_forbidden):
        # Sanity check on the fixture: the legacy path does call the walk,
        # so the tests above prove the order genuinely bypasses it.
        lists = self.posting_lists(figure1_idx, "texas apparel retailer")
        with pytest.raises(AssertionError, match="prefix walk"):
            compute_slca(lists, None)

    def test_results_identical_with_and_without_order(self, figure1_idx):
        order = figure1_idx.tree.order
        for query in ("texas apparel retailer", "customer street", "name"):
            lists = self.posting_lists(figure1_idx, query)
            assert compute_slca(lists, order) == compute_slca(lists, None)
            assert compute_elca(lists, order) == compute_elca(lists, None)
