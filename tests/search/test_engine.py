"""Tests for the SearchEngine façade."""

from __future__ import annotations

import pytest

from repro.errors import QueryError, SearchError
from repro.search.engine import SearchEngine, make_result_set
from repro.search.query import KeywordQuery
from repro.search.results import ResultSet
from repro.search.xseek import ResultConstruction


class TestSearch:
    def test_figure5_query_two_results(self, figure5_idx):
        results = SearchEngine(figure5_idx).search("store texas")
        assert len(results) == 2
        names = {result.root_node.find_child("name").text for result in results}
        assert names == {"Levis", "ESprit"}

    def test_results_are_self_contained_entities(self, figure5_idx):
        results = SearchEngine(figure5_idx).search("store texas")
        for result in results:
            assert result.root_node.tag == "store"
            assert result.size_nodes == result.root_node.subtree_size_nodes()

    def test_no_match_returns_empty_result_set(self, figure5_idx):
        results = SearchEngine(figure5_idx).search("store antarctica")
        assert results.is_empty
        assert len(results) == 0

    def test_limit(self, retail_idx):
        all_results = SearchEngine(retail_idx).search("retailer apparel")
        limited = SearchEngine(retail_idx).search("retailer apparel", limit=2)
        assert len(limited) == min(2, len(all_results))

    def test_accepts_parsed_query(self, figure5_idx):
        query = KeywordQuery.parse("store texas")
        results = SearchEngine(figure5_idx).search(query)
        assert results.query is query

    def test_invalid_query_raises(self, figure5_idx):
        with pytest.raises(QueryError):
            SearchEngine(figure5_idx).search("the of")

    def test_unknown_algorithm_raises(self, figure5_idx):
        with pytest.raises(SearchError):
            SearchEngine(figure5_idx, algorithm="magic")

    def test_elca_algorithm_runs(self, figure5_idx):
        results = SearchEngine(figure5_idx, algorithm="elca").search("store texas")
        assert results.algorithm == "elca"
        assert len(results) >= 2

    def test_elca_results_superset_of_slca(self, retail_idx):
        slca = SearchEngine(retail_idx, algorithm="slca").search("store texas")
        elca = SearchEngine(retail_idx, algorithm="elca").search("store texas")
        slca_roots = {result.root for result in slca}
        elca_roots = {result.root for result in elca}
        assert slca_roots <= elca_roots

    def test_match_paths_construction(self, figure5_idx):
        engine = SearchEngine(figure5_idx, construction=ResultConstruction.MATCH_PATHS)
        results = engine.search("store texas")
        assert len(results) == 2

    def test_timings_recorded(self, figure5_idx):
        engine = SearchEngine(figure5_idx)
        engine.search("store texas")
        assert {"lookup", "lca", "result_construction", "ranking"} <= set(engine.timings.phases)

    def test_keyword_statistics(self, figure5_idx):
        stats = SearchEngine(figure5_idx).keyword_statistics("store texas")
        # three <store> elements plus the <stores> document root (plural fold)
        assert stats["store"] == 4
        assert stats["texas"] == 2

    def test_repr(self, figure5_idx):
        assert "slca" in repr(SearchEngine(figure5_idx))


class TestResultSet:
    def test_iteration_and_indexing(self, figure5_idx):
        results = SearchEngine(figure5_idx).search("store texas")
        assert results[0] is list(results)[0]
        assert len(results.top(1)) == 1

    def test_total_result_edges(self, figure5_idx):
        results = SearchEngine(figure5_idx).search("store texas")
        assert results.total_result_edges() == sum(result.size_edges for result in results)

    def test_make_result_set_ranks(self, figure5_idx):
        engine = SearchEngine(figure5_idx)
        raw = list(engine.search("store texas"))
        packaged = make_result_set(raw, raw[0].query, "external")
        assert isinstance(packaged, ResultSet)
        assert packaged.document_name == "external"
        scores = [result.score for result in packaged]
        assert scores == sorted(scores, reverse=True)

    def test_repr(self, figure5_idx):
        results = SearchEngine(figure5_idx).search("store texas")
        assert "results=2" in repr(results)


class TestQueryResult:
    def test_text_content_flattens_subtree(self, figure5_idx):
        results = SearchEngine(figure5_idx).search("store texas")
        text = results[0].text_content()
        assert "Texas" in text

    def test_to_tree_is_standalone_copy(self, figure5_idx):
        results = SearchEngine(figure5_idx).search("store texas")
        copy = results[0].to_tree()
        assert copy.root.tag == "store"
        assert copy.size_nodes == results[0].size_nodes

    def test_matched_keywords_and_all_labels(self, figure5_idx):
        results = SearchEngine(figure5_idx).search("store texas")
        result = results[0]
        assert set(result.matched_keywords) == {"store", "texas"}
        labels = result.all_match_labels()
        assert labels == sorted(set(labels))

    def test_contains_label(self, figure5_idx):
        results = SearchEngine(figure5_idx).search("store texas")
        result = results[0]
        assert result.contains_label(result.root)
        other = results[1]
        assert not result.contains_label(other.root)


class TestLimitNumbering:
    """Regression tests: ids on a limited result page must match snippet
    numbering, and the pre-truncation total must be recorded."""

    def test_limit_reassigns_contiguous_ids(self, retail_idx):
        engine = SearchEngine(retail_idx)
        limited = engine.search("retailer apparel", limit=2)
        assert [result.result_id for result in limited] == list(range(len(limited)))

    def test_total_results_records_pre_truncation_count(self, retail_idx):
        engine = SearchEngine(retail_idx)
        full = engine.search("retailer apparel")
        limited = engine.search("retailer apparel", limit=2)
        assert limited.total_results == len(full)
        assert limited.is_truncated
        assert not full.is_truncated
        assert full.total_results == len(full)

    def test_snippet_numbering_agrees_with_limited_results(self, retail_idx):
        from repro.system import ExtractSystem

        system = ExtractSystem(retail_idx)
        outcome = system.query("retailer apparel", size_bound=6, limit=2)
        result_ids = [result.result_id for result in outcome.results]
        snippet_ids = [generated.result.result_id for generated in outcome.snippets]
        assert snippet_ids == result_ids == list(range(len(outcome.results)))

    def test_limit_zero_and_overlong_limit(self, retail_idx):
        engine = SearchEngine(retail_idx)
        assert len(engine.search("retailer apparel", limit=0)) == 0
        full = engine.search("retailer apparel")
        assert len(engine.search("retailer apparel", limit=10_000)) == len(full)
