"""Tests for keyword query parsing."""

from __future__ import annotations

import pytest

from repro.errors import QueryError
from repro.search.query import KeywordQuery


class TestParse:
    def test_paper_query(self):
        query = KeywordQuery.parse("Texas, apparel, retailer")
        assert query.keywords == ("texas", "apparel", "retailer")
        assert query.raw == "Texas, apparel, retailer"

    def test_figure5_query(self):
        assert KeywordQuery.parse("store texas").keywords == ("store", "texas")

    def test_stop_words_removed(self):
        assert KeywordQuery.parse("the retailer of apparel").keywords == ("retailer", "apparel")

    def test_duplicates_removed_order_kept(self):
        assert KeywordQuery.parse("a b A c b").keywords == ("b", "c")  # "a" is a stop word

    def test_empty_raises(self):
        with pytest.raises(QueryError):
            KeywordQuery.parse("")

    def test_stopwords_only_raises(self):
        with pytest.raises(QueryError):
            KeywordQuery.parse("the of and")

    def test_non_string_raises(self):
        with pytest.raises(QueryError):
            KeywordQuery.parse(42)  # type: ignore[arg-type]


class TestFromKeywords:
    def test_list_of_keywords(self):
        query = KeywordQuery.from_keywords(["Store", "TEXAS"])
        assert query.keywords == ("store", "texas")

    def test_deduplication(self):
        query = KeywordQuery.from_keywords(["x", "X", "y"])
        assert query.keywords == ("x", "y")

    def test_empty_raises(self):
        with pytest.raises(QueryError):
            KeywordQuery.from_keywords([])
        with pytest.raises(QueryError):
            KeywordQuery.from_keywords(["", "  "])


class TestProtocol:
    def test_contains_is_case_insensitive(self):
        query = KeywordQuery.parse("store texas")
        assert "TEXAS" in query
        assert "houston" not in query

    def test_iter_and_size(self):
        query = KeywordQuery.parse("a store in texas")
        assert list(query) == ["store", "texas"]
        assert query.size == 2

    def test_str(self):
        assert str(KeywordQuery.parse("store texas")) == "store, texas"

    def test_frozen(self):
        query = KeywordQuery.parse("store")
        with pytest.raises(AttributeError):
            query.raw = "changed"  # type: ignore[misc]
