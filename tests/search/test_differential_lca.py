"""Differential tests: optimised SLCA/ELCA vs. brute-force all-pairs LCA.

The optimised implementations (Indexed Lookup for SLCA, candidate-sweep for
ELCA) are checked against the by-definition reference implementations of
:mod:`repro.search.lca` on randomised documents built with
``tree_from_dict`` (seeded, so failures reproduce).  The generator is
shaped to exercise the branches the ISSUE calls out: single-keyword
queries, empty posting lists and root-collapse (keywords that only
co-occur at the document root).
"""

from __future__ import annotations

import random

import pytest

from repro.index.builder import IndexBuilder
from repro.index.postings import PostingList
from repro.search.elca import compute_elca
from repro.search.lca import brute_force_elca, brute_force_slca
from repro.search.slca import compute_slca
from repro.xmltree.builder import tree_from_dict
from repro.xmltree.dewey import Dewey

_TAGS = ["store", "item", "branch", "region", "office", "dept"]
_WORDS = ["texas", "austin", "houston", "apparel", "jeans", "outwear", "drama", "comedy"]


def _random_content(rng: random.Random, depth: int) -> object:
    """Nested dict content for ``tree_from_dict``: random shape, random words."""
    if depth == 0 or rng.random() < 0.35:
        return rng.choice(_WORDS)
    children: dict[str, object] = {}
    for tag in rng.sample(_TAGS, rng.randint(1, 3)):
        if rng.random() < 0.5:
            children[tag] = [
                _random_content(rng, depth - 1) for _ in range(rng.randint(1, 3))
            ]
        else:
            children[tag] = _random_content(rng, depth - 1)
    return children or rng.choice(_WORDS)


def _random_index(seed: int):
    rng = random.Random(seed)
    # The top level is always a mapping with >= 2 branches so the document
    # (and hence the vocabulary) is never a degenerate single leaf.
    content = {
        tag: _random_content(rng, depth=3)
        for tag in rng.sample(_TAGS, rng.randint(2, 4))
    }
    tree = tree_from_dict("root", content, name=f"random-{seed}")
    return rng, IndexBuilder().build(tree)


@pytest.mark.parametrize("seed", range(20))
def test_slca_matches_brute_force_on_random_documents(seed):
    rng, index = _random_index(seed)
    vocabulary = [term for term in index.inverted.vocabulary if term != "root"]
    for _ in range(10):
        keywords = rng.sample(vocabulary, rng.randint(1, min(3, len(vocabulary))))
        posting_lists = [index.keyword_matches(keyword) for keyword in keywords]
        assert compute_slca(posting_lists) == brute_force_slca(posting_lists), (
            seed,
            keywords,
        )


@pytest.mark.parametrize("seed", range(20))
def test_elca_matches_brute_force_on_random_documents(seed):
    rng, index = _random_index(seed)
    vocabulary = [term for term in index.inverted.vocabulary if term != "root"]
    assert len(vocabulary) >= 2, "generator must yield a multi-term document"
    for _ in range(10):
        keywords = rng.sample(vocabulary, rng.randint(2, min(3, len(vocabulary))))
        posting_lists = [index.keyword_matches(keyword) for keyword in keywords]
        assert compute_elca(posting_lists) == brute_force_elca(posting_lists), (
            seed,
            keywords,
        )


@pytest.mark.parametrize("seed", range(10))
def test_single_keyword_branch(seed):
    _, index = _random_index(seed)
    for term in list(index.inverted.vocabulary)[:5]:
        posting_lists = [index.keyword_matches(term)]
        assert compute_slca(posting_lists) == brute_force_slca(posting_lists)


@pytest.mark.parametrize("seed", range(10))
def test_empty_posting_branch(seed):
    _, index = _random_index(seed)
    present = index.keyword_matches(index.inverted.vocabulary[0])
    absent = index.keyword_matches("zzz-not-in-any-document")
    assert absent.is_empty
    assert compute_slca([present, absent]) == []
    assert compute_elca([present, absent]) == []
    assert brute_force_slca([present, absent]) == []
    assert brute_force_elca([present, absent]) == []


def test_root_collapse_branch():
    """Keywords that only co-occur at the document root: the SLCA set must
    collapse to the root, matching the brute-force reference."""
    tree = tree_from_dict(
        "db",
        {
            "left": {"name": "alpha"},
            "right": {"name": "omega"},
        },
    )
    index = IndexBuilder().build(tree)
    posting_lists = [index.keyword_matches("alpha"), index.keyword_matches("omega")]
    assert compute_slca(posting_lists) == brute_force_slca(posting_lists) == [Dewey.root()]
    assert compute_elca(posting_lists) == brute_force_elca(posting_lists) == [Dewey.root()]


def test_degenerate_shared_posting_lists():
    """Both keywords matching the same nodes (e.g. repeated query terms)."""
    shared = PostingList([Dewey((0, 1)), Dewey((2,)), Dewey((2, 0))])
    assert compute_slca([shared, shared]) == brute_force_slca([shared, shared])
    assert compute_elca([shared, shared]) == brute_force_elca([shared, shared])
