"""Tests for result ranking."""

from __future__ import annotations

from repro.search.engine import SearchEngine
from repro.search.ranking import rank_results, score_result


class TestScoring:
    def test_conjunctive_semantics_single_matching_store(self, small_index):
        # only the Houston store contains all three keywords (SLCA is conjunctive)
        results = SearchEngine(small_index).search("store texas houston")
        assert len(results) == 1
        assert results[0].root_node.find_child("city").text == "Houston"

    def test_proximity_rewards_tight_matches(self, small_index):
        # "suit casual" co-occur inside one clothes element; "suit formal" span
        # two different clothes elements of different stores → lower proximity
        tight = SearchEngine(small_index).search("suit casual")
        loose = SearchEngine(small_index).search("suit formal")
        assert tight[0].score >= loose[0].score

    def test_scores_are_positive(self, retail_results):
        assert all(result.score > 0 for result in retail_results)

    def test_score_result_components(self, small_index):
        results = SearchEngine(small_index).search("store")
        score = score_result(results[0])
        assert score > 0


class TestRankOrdering:
    def test_rank_results_sorted_descending(self, retail_results):
        scores = [result.score for result in retail_results]
        assert scores == sorted(scores, reverse=True)

    def test_result_ids_reassigned_by_rank(self, retail_results):
        assert [result.result_id for result in retail_results] == list(range(len(retail_results)))

    def test_rank_results_empty(self):
        assert rank_results([]) == []
