"""Tests for SLCA/ELCA semantics (optimised and brute-force reference)."""

from __future__ import annotations

import pytest

from repro.index.postings import PostingList
from repro.search.elca import compute_elca
from repro.search.lca import (
    brute_force_elca,
    brute_force_slca,
    common_ancestor_candidates,
    lca_of_match_combination,
)
from repro.search.slca import compute_slca
from repro.xmltree.dewey import Dewey


def plist(*texts: str) -> PostingList:
    return PostingList(Dewey.parse(text) for text in texts)


class TestSLCA:
    def test_basic_two_results(self):
        # two stores each containing both keywords
        a = plist("0.0", "1.0")
        b = plist("0.1", "1.1")
        assert [str(x) for x in compute_slca([a, b])] == ["0", "1"]

    def test_root_is_slca_when_matches_split(self):
        a = plist("0.0")
        b = plist("1.0")
        assert [str(x) for x in compute_slca([a, b])] == ["r"]

    def test_smaller_lca_excludes_ancestor(self):
        # one tight match pair under 0.0 and a stray match of b at 1;
        # the SLCA is 0.0 only (the root is an ancestor of an LCA)
        a = plist("0.0.0")
        b = plist("0.0.1", "1")
        assert [str(x) for x in compute_slca([a, b])] == ["0.0"]

    def test_single_keyword(self):
        a = plist("0.1", "0.1.2", "2")
        # every match is a result; ancestors removed
        assert [str(x) for x in compute_slca([a])] == ["0.1.2", "2"]

    def test_empty_posting_list_gives_no_results(self):
        assert compute_slca([plist("0"), PostingList()]) == []
        assert compute_slca([]) == []

    def test_same_node_matches_all_keywords(self):
        a = plist("0.3")
        b = plist("0.3")
        assert [str(x) for x in compute_slca([a, b])] == ["0.3"]

    def test_three_keywords(self):
        a = plist("0.0", "1.0")
        b = plist("0.1", "1.1")
        c = plist("0.2", "2")
        assert [str(x) for x in compute_slca([a, b, c])] == ["0"]

    def test_matches_brute_force_on_fixed_cases(self):
        cases = [
            [plist("0.0", "1.0"), plist("0.1", "1.1")],
            [plist("0.0.0", "0.1"), plist("0.0.1", "1"), plist("0.0.2")],
            [plist("0", "1", "2"), plist("1.5", "2.9")],
            [plist("0.1.2.3"), plist("0.1.2.4", "0.2")],
        ]
        for posting_lists in cases:
            assert compute_slca(posting_lists) == brute_force_slca(posting_lists)


class TestELCA:
    def test_elca_includes_ancestor_with_own_witness(self):
        # 0 contains both keywords; the root additionally has its own
        # matches (a at 2, b at 1) -> both 0 and the root are ELCAs.
        a = plist("0.0", "2")
        b = plist("0.1", "1")
        assert [str(x) for x in compute_elca([a, b])] == ["r", "0"]

    def test_elca_excludes_ancestor_without_own_witness(self):
        a = plist("0.0")
        b = plist("0.1")
        assert [str(x) for x in compute_elca([a, b])] == ["0"]

    def test_elca_superset_of_slca(self):
        a = plist("0.0", "2", "1.0.0")
        b = plist("0.1", "1", "1.0.1")
        slca = set(compute_slca([a, b]))
        elca = set(compute_elca([a, b]))
        assert slca <= elca

    def test_single_keyword_every_match_is_elca(self):
        a = plist("0", "1.2")
        assert compute_elca([a]) == list(a)

    def test_empty_input(self):
        assert compute_elca([]) == []
        assert compute_elca([plist("0"), PostingList()]) == []

    def test_blocked_witnesses_do_not_count(self):
        # child 0 contains all keywords; the root's only extra match is of
        # keyword a (at 1), keyword b occurs only inside 0 -> root is NOT an ELCA.
        a = plist("0.0", "1")
        b = plist("0.1")
        assert [str(x) for x in compute_elca([a, b])] == ["0"]

    def test_matches_brute_force_on_fixed_cases(self):
        cases = [
            [plist("0.0", "2"), plist("0.1", "1")],
            [plist("0.0", "1"), plist("0.1")],
            [plist("0.0.0", "0.1"), plist("0.0.1", "0.2")],
            [plist("0", "1"), plist("0.0", "1.0"), plist("0.1", "1.1")],
        ]
        for posting_lists in cases:
            assert compute_elca(posting_lists) == brute_force_elca(posting_lists)


class TestBruteForceHelpers:
    def test_common_ancestor_candidates(self):
        a = plist("0.0")
        b = plist("0.1")
        candidates = common_ancestor_candidates([a, b])
        assert candidates == {Dewey.root(), Dewey((0,))}

    def test_candidates_empty_when_no_overlap(self):
        # still share the root
        a = plist("0")
        b = plist("1")
        assert common_ancestor_candidates([a, b]) == {Dewey.root()}

    def test_candidates_of_empty_input(self):
        assert common_ancestor_candidates([]) == set()

    def test_lca_of_match_combination(self):
        assert lca_of_match_combination([Dewey.parse("0.1.2"), Dewey.parse("0.1.5")]) == Dewey.parse("0.1")

    def test_brute_force_empty_lists(self):
        assert brute_force_slca([]) == []
        assert brute_force_elca([plist("0"), PostingList()]) == []
