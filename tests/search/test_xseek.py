"""Tests for XSeek-style result construction."""

from __future__ import annotations

import pytest

from repro.search.query import KeywordQuery
from repro.search.slca import compute_slca
from repro.search.xseek import (
    ResultConstruction,
    build_all_results,
    build_result_tree,
    promote_to_entity_root,
)


@pytest.fixture()
def slca_roots(small_index):
    query = KeywordQuery.parse("store texas")
    postings = [small_index.keyword_matches(keyword) for keyword in query.keywords]
    return query, compute_slca(postings)


class TestPromotion:
    def test_connection_root_promoted_to_entity(self, small_index, small_retailer_tree):
        merchandises = small_retailer_tree.find_by_tag("merchandises")[0]
        promoted = promote_to_entity_root(small_index.analyzer, merchandises.dewey)
        assert small_retailer_tree.node(promoted).tag == "store"

    def test_attribute_promoted_to_owning_entity(self, small_index, small_retailer_tree):
        city = small_retailer_tree.find_by_tag("city")[0]
        promoted = promote_to_entity_root(small_index.analyzer, city.dewey)
        assert small_retailer_tree.node(promoted).tag == "store"

    def test_entity_root_stays(self, small_index, small_retailer_tree):
        store = small_retailer_tree.find_by_tag("store")[0]
        assert promote_to_entity_root(small_index.analyzer, store.dewey) == store.dewey

    def test_node_without_entity_ancestor_stays(self, small_index, small_retailer_tree):
        name = small_retailer_tree.root.find_child("name")
        assert promote_to_entity_root(small_index.analyzer, name.dewey) == name.dewey


class TestBuildResultTree:
    def test_subtree_construction(self, small_index, slca_roots):
        query, roots = slca_roots
        result = build_result_tree(
            small_index, query, roots[0], construction=ResultConstruction.SUBTREE
        )
        assert result.root == roots[0]
        assert result.size_nodes == result.root_node.subtree_size_nodes()

    def test_matches_restricted_to_result(self, small_index, slca_roots):
        query, roots = slca_roots
        result = build_result_tree(small_index, query, roots[0])
        for labels in result.matches.values():
            assert all(result.contains_label(label) for label in labels)

    def test_xseek_promotes_and_keeps_whole_entity(self, small_index, small_retailer_tree):
        query = KeywordQuery.parse("houston")
        city = small_retailer_tree.find_by_tag("city")[0]
        result = build_result_tree(
            small_index, query, city.dewey, construction=ResultConstruction.XSEEK
        )
        assert result.root_node.tag == "store"
        # the full store subtree is present (self-contained result)
        assert result.size_nodes == result.root_node.subtree_size_nodes()

    def test_match_paths_projection_is_smaller(self, small_index, slca_roots):
        query, roots = slca_roots
        subtree_result = build_result_tree(
            small_index, query, roots[0], construction=ResultConstruction.SUBTREE
        )
        paths_result = build_result_tree(
            small_index, query, roots[0], construction=ResultConstruction.MATCH_PATHS
        )
        assert paths_result.size_nodes <= subtree_result.size_nodes
        assert paths_result.to_tree().root.tag == subtree_result.root_node.tag


class TestBuildAllResults:
    def test_one_result_per_root(self, small_index, slca_roots):
        query, roots = slca_roots
        results = build_all_results(small_index, query, roots)
        assert len(results) == len(roots)
        assert [result.result_id for result in results] == list(range(len(results)))

    def test_duplicate_promotions_are_merged(self, small_index, small_retailer_tree):
        query = KeywordQuery.parse("suit outwear")
        # two different clothes nodes inside the same store
        clothes = small_retailer_tree.find_by_tag("clothes")[:2]
        results = build_all_results(
            small_index, query, [node.dewey for node in clothes], construction=ResultConstruction.XSEEK
        )
        assert len(results) == 2  # each clothes is its own entity, no merging
        merged = build_all_results(
            small_index,
            query,
            [clothes[0].children[0].dewey, clothes[0].children[1].dewey],
            construction=ResultConstruction.XSEEK,
        )
        assert len(merged) == 1  # both attributes promote to the same clothes entity

    def test_empty_roots(self, small_index):
        query = KeywordQuery.parse("anything")
        assert build_all_results(small_index, query, []) == []
