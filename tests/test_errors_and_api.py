"""Tests for the exception hierarchy and the public package surface."""

from __future__ import annotations

import pytest

import repro
from repro import errors


class TestExceptionHierarchy:
    ALL_ERRORS = (
        errors.XMLParseError,
        errors.DTDParseError,
        errors.DeweyError,
        errors.SchemaError,
        errors.IndexError_,
        errors.IndexNotBuiltError,
        errors.StorageError,
        errors.QueryError,
        errors.SearchError,
        errors.SnippetError,
        errors.InvalidSizeBoundError,
        errors.DatasetError,
        errors.EvaluationError,
    )

    def test_every_error_derives_from_extract_error(self):
        for error_type in self.ALL_ERRORS:
            assert issubclass(error_type, errors.ExtractError)

    def test_catching_base_class_catches_all(self):
        for error_type in self.ALL_ERRORS:
            if error_type is errors.InvalidSizeBoundError:
                instance = error_type(0)
            elif error_type is errors.XMLParseError:
                instance = error_type("bad", line=1, column=2)
            else:
                instance = error_type("boom")
            with pytest.raises(errors.ExtractError):
                raise instance

    def test_xml_parse_error_location_formatting(self):
        error = errors.XMLParseError("unexpected token", line=3, column=7)
        assert "line 3" in str(error) and "column 7" in str(error)
        assert error.line == 3 and error.column == 7
        bare = errors.XMLParseError("oops")
        assert "line" not in str(bare)

    def test_invalid_size_bound_message(self):
        error = errors.InvalidSizeBoundError(-2)
        assert "-2" in str(error)
        assert error.bound == -2

    def test_index_not_built_is_index_error(self):
        assert issubclass(errors.IndexNotBuiltError, errors.IndexError_)


class TestPublicApi:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists {name} but it is not importable"

    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_key_entry_points_exposed(self):
        for name in (
            "ExtractSystem",
            "SnippetGenerator",
            "DistinctSnippetGenerator",
            "SearchEngine",
            "IndexBuilder",
            "Corpus",
            "KeywordQuery",
            "parse_xml",
            "tree_from_dict",
        ):
            assert name in repro.__all__

    def test_subpackage_all_names_resolve(self):
        import repro.snippet as snippet_pkg
        import repro.xmltree as xmltree_pkg
        import repro.eval as eval_pkg

        for package in (snippet_pkg, xmltree_pkg, eval_pkg):
            for name in package.__all__:
                assert hasattr(package, name), f"{package.__name__}.__all__ lists {name}"
