"""Tests for the end-to-end ExtractSystem façade."""

from __future__ import annotations

import pytest

from repro import ExtractSystem
from repro.datasets.retail import figure5_document
from repro.errors import QueryError, XMLParseError
from repro.search.xseek import ResultConstruction
from repro.xmltree.serialize import to_xml_string

SMALL_XML = """<!DOCTYPE stores [
  <!ELEMENT stores (store*)>
]>
<stores>
  <store><name>Levis</name><state>Texas</state></store>
  <store><name>ESprit</name><state>Oregon</state></store>
</stores>
"""


class TestConstruction:
    def test_from_tree(self):
        system = ExtractSystem.from_tree(figure5_document())
        assert system.index.tree.size_nodes > 0

    def test_from_xml_uses_dtd(self):
        system = ExtractSystem.from_xml(SMALL_XML, name="small")
        assert "store" in system.analyzer.entity_tags()
        assert system.index.tree.name == "small"

    def test_from_file(self, tmp_path):
        path = tmp_path / "doc.xml"
        path.write_text(to_xml_string(figure5_document()), encoding="utf-8")
        system = ExtractSystem.from_file(path)
        outcome = system.query("store texas", size_bound=6)
        assert len(outcome) == 2

    def test_from_xml_malformed_raises(self):
        with pytest.raises(XMLParseError):
            ExtractSystem.from_xml("<a><b></a>")

    def test_repr(self):
        assert "nodes=" in repr(ExtractSystem.from_tree(figure5_document()))


class TestQuery:
    @pytest.fixture()
    def system(self):
        return ExtractSystem.from_tree(figure5_document())

    def test_outcome_contains_results_and_snippets(self, system):
        outcome = system.query("store texas", size_bound=6)
        assert len(outcome.results) == len(outcome.snippets) == len(outcome) == 2
        assert all(generated.snippet.size_edges <= 6 for generated in outcome.snippets)

    def test_limit_applies_to_both(self, system):
        outcome = system.query("store", size_bound=6, limit=1)
        assert len(outcome.results) == 1
        assert len(outcome.snippets) == 1

    def test_empty_query_raises(self, system):
        with pytest.raises(QueryError):
            system.query("  ")

    def test_no_results_outcome(self, system):
        outcome = system.query("store antarctica")
        assert len(outcome) == 0
        assert outcome.render_text().count("Result #") == 0

    def test_render_text_and_html(self, system):
        outcome = system.query("store texas", size_bound=6)
        text = outcome.render_text(show_ilist=True)
        assert "IList:" in text
        html = outcome.render_html()
        assert html.startswith("<!DOCTYPE html>")

    def test_timings_include_all_phases(self, system):
        outcome = system.query("store texas", size_bound=6)
        assert {"search", "snippets"} <= set(outcome.timings.phases)
        assert outcome.timings.total > 0

    def test_construction_modes(self, system):
        subtree = system.query("store texas", construction=ResultConstruction.SUBTREE)
        paths = system.query("store texas", construction=ResultConstruction.MATCH_PATHS)
        assert len(subtree) >= 1 and len(paths) >= 1

    def test_document_stats(self, system):
        stats = system.document_stats()
        assert stats.node_count == system.index.tree.size_nodes

    def test_elca_system(self):
        system = ExtractSystem.from_tree(figure5_document(), algorithm="elca")
        outcome = system.query("store texas", size_bound=6)
        assert len(outcome) >= 2
