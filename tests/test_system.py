"""Tests for the end-to-end ExtractSystem façade."""

from __future__ import annotations

import pytest

from repro import ExtractSystem
from repro.datasets.retail import figure5_document
from repro.errors import QueryError, XMLParseError
from repro.search.xseek import ResultConstruction
from repro.xmltree.serialize import to_xml_string

SMALL_XML = """<!DOCTYPE stores [
  <!ELEMENT stores (store*)>
]>
<stores>
  <store><name>Levis</name><state>Texas</state></store>
  <store><name>ESprit</name><state>Oregon</state></store>
</stores>
"""


class TestConstruction:
    def test_from_tree(self):
        system = ExtractSystem.from_tree(figure5_document())
        assert system.index.tree.size_nodes > 0

    def test_from_xml_uses_dtd(self):
        system = ExtractSystem.from_xml(SMALL_XML, name="small")
        assert "store" in system.analyzer.entity_tags()
        assert system.index.tree.name == "small"

    def test_from_file(self, tmp_path):
        path = tmp_path / "doc.xml"
        path.write_text(to_xml_string(figure5_document()), encoding="utf-8")
        system = ExtractSystem.from_file(path)
        outcome = system.query("store texas", size_bound=6)
        assert len(outcome) == 2

    def test_from_xml_malformed_raises(self):
        with pytest.raises(XMLParseError):
            ExtractSystem.from_xml("<a><b></a>")

    def test_repr(self):
        assert "nodes=" in repr(ExtractSystem.from_tree(figure5_document()))


class TestQuery:
    @pytest.fixture()
    def system(self):
        return ExtractSystem.from_tree(figure5_document())

    def test_outcome_contains_results_and_snippets(self, system):
        outcome = system.query("store texas", size_bound=6)
        assert len(outcome.results) == len(outcome.snippets) == len(outcome) == 2
        assert all(generated.snippet.size_edges <= 6 for generated in outcome.snippets)

    def test_limit_applies_to_both(self, system):
        outcome = system.query("store", size_bound=6, limit=1)
        assert len(outcome.results) == 1
        assert len(outcome.snippets) == 1

    def test_empty_query_raises(self, system):
        with pytest.raises(QueryError):
            system.query("  ")

    def test_no_results_outcome(self, system):
        outcome = system.query("store antarctica")
        assert len(outcome) == 0
        assert outcome.render_text().count("Result #") == 0

    def test_render_text_and_html(self, system):
        outcome = system.query("store texas", size_bound=6)
        text = outcome.render_text(show_ilist=True)
        assert "IList:" in text
        html = outcome.render_html()
        assert html.startswith("<!DOCTYPE html>")

    def test_timings_include_all_phases(self, system):
        outcome = system.query("store texas", size_bound=6)
        assert {"search", "snippets"} <= set(outcome.timings.phases)
        assert outcome.timings.total > 0

    def test_construction_modes(self, system):
        subtree = system.query("store texas", construction=ResultConstruction.SUBTREE)
        paths = system.query("store texas", construction=ResultConstruction.MATCH_PATHS)
        assert len(subtree) >= 1 and len(paths) >= 1

    def test_document_stats(self, system):
        stats = system.document_stats()
        assert stats.node_count == system.index.tree.size_nodes

    def test_elca_system(self):
        system = ExtractSystem.from_tree(figure5_document(), algorithm="elca")
        outcome = system.query("store texas", size_bound=6)
        assert len(outcome) >= 2


class TestQueryResultCache:
    def test_repeated_query_served_from_cache(self, figure5_idx):
        from repro.system import ExtractSystem

        system = ExtractSystem(figure5_idx)
        cold = system.query("store texas", size_bound=6)
        warm = system.query("store texas", size_bound=6)
        assert cold.from_cache is False
        assert warm.from_cache is True
        assert warm.render_text() == cold.render_text()
        assert system.cache.stats.hits == 1

    def test_different_parameters_miss(self, figure5_idx):
        from repro.system import ExtractSystem

        system = ExtractSystem(figure5_idx)
        system.query("store texas", size_bound=6)
        assert system.query("store texas", size_bound=8).from_cache is False
        assert system.query("store texas", size_bound=6, limit=1).from_cache is False
        assert system.query("store austin", size_bound=6).from_cache is False

    def test_normalised_query_shares_cache_entry(self, figure5_idx):
        from repro.system import ExtractSystem

        system = ExtractSystem(figure5_idx)
        system.query("store texas", size_bound=6)
        # Different raw text, same normalised keywords in the same order.
        assert system.query("STORE,   texas!", size_bound=6).from_cache is True

    def test_use_cache_false_bypasses(self, figure5_idx):
        from repro.system import ExtractSystem

        system = ExtractSystem(figure5_idx)
        system.query("store texas", size_bound=6)
        outcome = system.query("store texas", size_bound=6, use_cache=False)
        assert outcome.from_cache is False

    def test_invalidate_cache_clears_everything(self, figure5_idx):
        from repro.system import ExtractSystem

        system = ExtractSystem(figure5_idx)
        system.query("store texas", size_bound=6)
        assert len(system.cache) > 0
        system.invalidate_cache()
        assert len(system.cache) == 0
        assert len(system.generator.cache) == 0
        assert system.query("store texas", size_bound=6).from_cache is False

    def test_cache_stats_expose_both_caches(self, figure5_idx):
        from repro.system import ExtractSystem

        system = ExtractSystem(figure5_idx)
        stats = system.cache_stats()
        assert set(stats) == {"query", "snippet"}

    def test_search_method_caches_result_sets(self, figure5_idx):
        from repro.system import ExtractSystem

        system = ExtractSystem(figure5_idx)
        first = system.search("store texas")
        second = system.search("store texas")
        assert second is first  # served verbatim from the cache
        assert len(first) == 2

    def test_cache_size_zero_disables_caching(self, figure5_idx):
        from repro.system import ExtractSystem

        system = ExtractSystem(figure5_idx, cache_size=0)
        system.query("store texas", size_bound=6)
        assert system.query("store texas", size_bound=6).from_cache is False

    def test_snippet_cache_rewraps_current_result(self, figure5_idx):
        from repro.system import ExtractSystem

        system = ExtractSystem(figure5_idx)
        # Same document/root/query/bound through different limits: the
        # snippet cache must serve the tree but keep each outcome's own
        # result objects (ranking metadata stays current).
        full = system.query("store texas", size_bound=6)
        limited = system.query("store texas", size_bound=6, limit=1)
        assert limited.snippets[0].result is limited.results[0]
        assert (
            limited.snippets[0].snippet.size_edges
            == full.snippets[0].snippet.size_edges
        )

    def test_from_saved_round_trip(self, figure5_idx, tmp_path):
        from repro.index.storage import save_index
        from repro.system import ExtractSystem

        save_index(figure5_idx, tmp_path / "idx")
        system = ExtractSystem.from_saved(tmp_path / "idx")
        reference = ExtractSystem(figure5_idx)
        assert (
            system.query("store texas", size_bound=6).render_text()
            == reference.query("store texas", size_bound=6).render_text()
        )

    def test_search_construction_is_explicit_not_inherited(self, figure5_idx):
        from repro.search.xseek import ResultConstruction
        from repro.system import ExtractSystem

        system = ExtractSystem(figure5_idx)
        baseline = ExtractSystem(figure5_idx).search("store texas")
        # A prior query with a different construction must not leak into a
        # later search(): construction is an explicit parameter.
        system.query(
            "store texas", size_bound=6, construction=ResultConstruction.MATCH_PATHS
        )
        results = system.search("store texas")
        assert [type(r) for r in results] == [type(r) for r in baseline]
        assert [str(r.root) for r in results] == [str(r.root) for r in baseline]


class TestServicePipeline:
    """The deprecated query/search shims must match the run_* pipeline."""

    def test_query_shim_equals_run_query(self, figure5_idx):
        from repro.system import ExtractSystem

        shimmed = ExtractSystem(figure5_idx).query("store texas", size_bound=6, use_cache=False)
        direct = ExtractSystem(figure5_idx).run_query("store texas", size_bound=6, use_cache=False)
        assert shimmed.render_text() == direct.render_text()
        assert [r.result_id for r in shimmed.results] == [r.result_id for r in direct.results]

    def test_search_shim_equals_run_search(self, figure5_idx):
        from repro.system import ExtractSystem

        system = ExtractSystem(figure5_idx)
        assert system.search("store texas") is system.run_search("store texas")  # shared cache

    def test_run_query_does_not_mutate_engine_state(self, figure5_idx):
        from repro.search.xseek import ResultConstruction
        from repro.system import ExtractSystem

        system = ExtractSystem(figure5_idx)
        before = system.engine.construction
        system.run_query(
            "store texas", size_bound=6, construction=ResultConstruction.MATCH_PATHS
        )
        assert system.engine.construction is before
        assert system.engine.timings.phases == {}  # per-call breakdown, not shared

    def test_run_query_timings_are_per_call(self, figure5_idx):
        from repro.system import ExtractSystem

        system = ExtractSystem(figure5_idx)
        outcome = system.run_query("store texas", size_bound=6, use_cache=False)
        assert {"search", "snippets", "lookup", "lca", "ilist"} <= set(outcome.timings.phases)
        # a second cold call gets a fresh breakdown, not an accumulated one
        again = system.run_query("store texas", size_bound=6, use_cache=False)
        assert again.timings.counts["search"] == 1
