"""Tests for the command-line interface."""

from __future__ import annotations

import io

import pytest

from repro.cli import build_parser, main
from repro.xmltree.serialize import to_xml_string


def run_cli(*argv: str) -> tuple[int, str]:
    buffer = io.StringIO()
    code = main(list(argv), out=buffer)
    return code, buffer.getvalue()


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        text = parser.format_help()
        for command in (
            "analyze", "search", "ilist", "datasets", "generate", "experiment",
            "batch", "corpus-save", "corpus-update", "corpus-compact",
            "serve-request", "serve", "cluster-init", "cluster-serve-request",
            "cluster-update", "lint", "loadgen", "loadgen-ablate",
        ):
            assert command in text

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_source_is_required_and_exclusive(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["analyze"])
        with pytest.raises(SystemExit):
            parser.parse_args(["analyze", "--file", "a.xml", "--dataset", "retail"])


class TestDatasetsCommand:
    def test_lists_builtins(self):
        code, output = run_cli("datasets")
        assert code == 0
        assert "figure1" in output and "movies" in output


class TestAnalyzeCommand:
    def test_analyze_builtin(self):
        code, output = run_cli("analyze", "--dataset", "figure5-stores")
        assert code == 0
        assert "entity types:" in output
        assert "store" in output and "key=name" in output

    def test_analyze_file(self, small_retailer_tree, tmp_path):
        path = tmp_path / "doc.xml"
        path.write_text(to_xml_string(small_retailer_tree), encoding="utf-8")
        code, output = run_cli("analyze", "--file", str(path))
        assert code == 0
        assert "schema nodes" in output

    def test_analyze_missing_file(self, tmp_path):
        code, output = run_cli("analyze", "--file", str(tmp_path / "missing.xml"))
        assert code == 1
        assert "error:" in output


class TestSearchCommand:
    def test_search_prints_snippets(self):
        code, output = run_cli(
            "search", "--dataset", "figure5-stores", "--query", "store texas", "--bound", "6"
        )
        assert code == 0
        assert "Levis" in output and "ESprit" in output
        assert "snippet: " in output

    def test_search_show_ilist_and_limit(self):
        code, output = run_cli(
            "search",
            "--dataset",
            "figure5-stores",
            "--query",
            "store texas",
            "--limit",
            "1",
            "--show-ilist",
        )
        assert code == 0
        assert output.count("Result #") == 1
        assert "IList:" in output

    def test_search_writes_html(self, tmp_path):
        target = tmp_path / "page.html"
        code, output = run_cli(
            "search", "--dataset", "figure5-stores", "--query", "store texas", "--html", str(target)
        )
        assert code == 0
        assert target.exists()
        assert "wrote HTML" in output

    def test_search_elca(self):
        code, output = run_cli(
            "search", "--dataset", "figure5-stores", "--query", "store texas", "--algorithm", "elca"
        )
        assert code == 0

    def test_search_invalid_query(self):
        code, output = run_cli("search", "--dataset", "figure5-stores", "--query", "the of")
        assert code == 1
        assert "error:" in output


class TestIlistCommand:
    def test_ilist_prints_kinds_and_scores(self):
        code, output = run_cli("ilist", "--dataset", "figure1", "--query", "Texas apparel retailer")
        assert code == 0
        assert "[keyword]" in output
        assert "[key" in output
        assert "DS " in output
        assert "Brook Brothers" in output

    def test_ilist_no_results(self):
        code, output = run_cli("ilist", "--dataset", "figure5-stores", "--query", "zebra")
        assert code == 0
        assert "(no results)" in output


class TestGenerateCommand:
    def test_generate_writes_parseable_xml(self, tmp_path):
        target = tmp_path / "stores.xml"
        code, output = run_cli("generate", "--dataset", "figure5-stores", "--output", str(target))
        assert code == 0
        from repro.xmltree.parser import parse_xml_file

        parsed = parse_xml_file(target)
        assert parsed.tree.root.tag == "stores"

    def test_generate_with_doctype(self, tmp_path):
        target = tmp_path / "stores.xml"
        code, _ = run_cli(
            "generate", "--dataset", "figure5-stores", "--output", str(target), "--with-doctype"
        )
        assert code == 0
        content = target.read_text(encoding="utf-8")
        assert "<!DOCTYPE stores [" in content
        from repro.xmltree.parser import parse_xml

        assert parse_xml(content).dtd_text is not None


class TestExperimentCommand:
    def test_listing_without_ids(self):
        code, output = run_cli("experiment")
        assert code == 0
        assert "F1" in output and "A2" in output

    def test_run_single_experiment(self):
        code, output = run_cli("experiment", "F3")
        assert code == 0
        assert "[F3]" in output
        assert "brook brothers" in output

    def test_unknown_experiment_id(self):
        code, output = run_cli("experiment", "Z9")
        assert code == 2
        assert "unknown experiment" in output


class TestBatchCommand:
    @pytest.fixture()
    def query_file(self, tmp_path):
        path = tmp_path / "queries.txt"
        path.write_text(
            "# demo batch\n"
            "store texas\n"
            "clothes casual  # inline comment\n"
            "\n"
            "the of\n",          # only stop words: skipped with a warning
            encoding="utf-8",
        )
        return str(path)

    def test_batch_over_builtin_dataset(self, query_file):
        code, output = run_cli("batch", "--queries", query_file, "--dataset", "figure5-stores")
        assert code == 0
        assert "store texas" in output
        assert "clothes casual" in output
        assert "skipping unparsable query" in output
        assert "TOTAL" in output

    def test_batch_requires_some_source(self, query_file):
        code, output = run_cli("batch", "--queries", query_file)
        assert code == 1
        assert "no documents" in output

    def test_batch_empty_query_file(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# nothing here\n", encoding="utf-8")
        code, output = run_cli("batch", "--queries", str(path), "--dataset", "figure5-stores")
        assert code == 2
        assert "no queries" in output

    def test_batch_repeat_rounds(self, query_file):
        code, output = run_cli(
            "batch", "--queries", query_file, "--dataset", "figure5-stores", "--repeat", "2"
        )
        assert code == 0
        assert "round 1/2" in output
        assert "round 2/2" in output

    def test_batch_show_snippets(self, query_file):
        code, output = run_cli(
            "batch", "--queries", query_file, "--dataset", "figure5-stores", "--show-snippets"
        )
        assert code == 0
        assert "figure5-stores :: store texas" in output


class TestCorpusSaveCommand:
    def test_save_then_batch_from_snapshot(self, tmp_path):
        snapshot = str(tmp_path / "corpus")
        code, output = run_cli(
            "corpus-save", "--dataset", "figure5-stores", "--output", snapshot
        )
        assert code == 0
        assert "saved 1 document index(es)" in output

        queries = tmp_path / "queries.txt"
        queries.write_text("store texas\n", encoding="utf-8")
        code, output = run_cli("batch", "--queries", str(queries), "--corpus-dir", snapshot)
        assert code == 0
        assert "store texas" in output
        assert "figure5-stores" in output

    def test_save_requires_source(self, tmp_path):
        code, output = run_cli("corpus-save", "--output", str(tmp_path / "corpus"))
        assert code == 1
        assert "no documents" in output

    def test_corpus_update_journals_text_edit(self, tmp_path):
        import json

        snapshot = str(tmp_path / "corpus")
        old_xml = "<shop><store><name>Galleria</name><city>Houston</city></store><store><name>Downtown</name><city>Austin</city></store></shop>"
        new_xml = old_xml.replace("Houston", "Dallas")
        source = tmp_path / "doc.xml"
        source.write_text(old_xml, encoding="utf-8")
        code, _ = run_cli("corpus-save", "--file", str(source), "--output", snapshot)
        assert code == 0

        source.write_text(new_xml, encoding="utf-8")
        code, output = run_cli(
            "corpus-update", "--corpus-dir", snapshot, "--file", str(source)
        )
        assert code == 0
        assert "incrementally" in output
        journal = (tmp_path / "corpus" / "corpus.journal").read_text(encoding="utf-8")
        assert journal.splitlines()[1].startswith("update ")

        # the journalled edit is replayed on the next load
        request = tmp_path / "request.json"
        request.write_text(
            json.dumps(
                {
                    "kind": "search",
                    "schema_version": 1,
                    "query": "city dallas",
                    "document": "doc",
                }
            ),
            encoding="utf-8",
        )
        code, output = run_cli(
            "serve-request", "--corpus-dir", snapshot, "--request", str(request)
        )
        assert code == 0
        assert json.loads(output)["total_results"] == 1

    def test_corpus_update_remove_and_add(self, tmp_path):
        snapshot = str(tmp_path / "corpus")
        doc = tmp_path / "first.xml"
        doc.write_text("<shop><name>Levis</name></shop>", encoding="utf-8")
        run_cli("corpus-save", "--file", str(doc), "--output", snapshot)

        second = tmp_path / "second.xml"
        second.write_text("<shop><name>Esprit</name></shop>", encoding="utf-8")
        code, output = run_cli("corpus-update", "--corpus-dir", snapshot, "--file", str(second))
        assert code == 0 and "added" in output
        code, output = run_cli("corpus-update", "--corpus-dir", snapshot, "--remove", "first")
        assert code == 0 and "removed" in output

        from repro.corpus import Corpus

        assert Corpus.load_dir(snapshot).names() == ["second"]

    def test_corpus_update_add_honours_internal_dtd(self, tmp_path):
        # The DTD declares <store> as repeatable, so it classifies as an
        # entity even though the data shows a single instance; the add path
        # must ingest it exactly like corpus-save --file would.
        dtd_doc = (
            "<!DOCTYPE shop [\n"
            "<!ELEMENT shop (store*)>\n"
            "<!ELEMENT store (name)>\n"
            "<!ELEMENT name (#PCDATA)>\n"
            "]>\n"
            "<shop><store><name>Levis</name></store></shop>"
        )
        from repro.system import ExtractSystem

        source = tmp_path / "dtd-doc.xml"
        source.write_text(dtd_doc, encoding="utf-8")
        reference = ExtractSystem.from_file(source).analyzer.summary()

        snapshot = str(tmp_path / "corpus")
        seed = tmp_path / "seed.xml"
        seed.write_text("<shop><name>Seed</name></shop>", encoding="utf-8")
        run_cli("corpus-save", "--file", str(seed), "--output", snapshot)
        code, output = run_cli(
            "corpus-update", "--corpus-dir", snapshot, "--file", str(source)
        )
        assert code == 0 and "added" in output

        # The journalled snapshot's analyzer summary proves the DTD was
        # honoured at ingestion, matching corpus-save --file semantics.
        # (Reloading a classification-changing-DTD snapshot still fails
        # with the documented DTD-not-in-snapshot limitation, identically
        # for corpus-save and corpus-update.)
        header = (tmp_path / "corpus" / "dtd-doc" / "inverted.idx").read_text(
            encoding="utf-8"
        )
        expected = (
            f"#summary entity={reference['entity']} "
            f"attribute={reference['attribute']} "
            f"connection={reference['connection']}"
        )
        assert expected in header
        assert reference["entity"] == 1  # the DTD, not the data, made store an entity

    def test_serve_request_rejects_stateless_updates(self, tmp_path):
        import json

        snapshot = str(tmp_path / "corpus")
        doc = tmp_path / "doc.xml"
        doc.write_text("<shop><name>Levis</name></shop>", encoding="utf-8")
        run_cli("corpus-save", "--file", str(doc), "--output", snapshot)
        request = tmp_path / "update.json"
        request.write_text(
            json.dumps(
                {"kind": "update", "schema_version": 1, "document": "doc", "xml": "<shop><name>Esprit</name></shop>"}
            ),
            encoding="utf-8",
        )
        code, output = run_cli(
            "serve-request", "--corpus-dir", snapshot, "--request", str(request)
        )
        assert code == 1
        payload = json.loads(output)
        assert payload["kind"] == "error"
        assert "corpus-update" in payload["message"]

    def test_corpus_update_unknown_remove_fails(self, tmp_path):
        snapshot = str(tmp_path / "corpus")
        doc = tmp_path / "doc.xml"
        doc.write_text("<shop><name>Levis</name></shop>", encoding="utf-8")
        run_cli("corpus-save", "--file", str(doc), "--output", snapshot)
        code, output = run_cli("corpus-update", "--corpus-dir", snapshot, "--remove", "ghost")
        assert code == 1
        assert "error" in output

    def test_corpus_dir_conflicts_with_sources(self, tmp_path):
        snapshot = str(tmp_path / "corpus")
        run_cli("corpus-save", "--dataset", "figure5-stores", "--output", snapshot)
        queries = tmp_path / "queries.txt"
        queries.write_text("store texas\n", encoding="utf-8")
        code, output = run_cli(
            "batch", "--queries", str(queries), "--corpus-dir", snapshot,
            "--dataset", "retail",
        )
        assert code == 1
        assert "cannot be combined" in output


class TestServeRequestCommand:
    def _write_request(self, tmp_path, payload: dict) -> str:
        import json

        path = tmp_path / "request.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        return str(path)

    def test_search_request_round_trip(self, tmp_path):
        import json

        request = self._write_request(
            tmp_path,
            {
                "kind": "search",
                "schema_version": 1,
                "query": "store texas",
                "document": "figure5-stores",
                "size_bound": 6,
            },
        )
        code, output = run_cli(
            "serve-request", "--dataset", "figure5-stores", "--request", request
        )
        assert code == 0
        response = json.loads(output)
        assert response["kind"] == "search_response"
        assert response["document"] == "figure5-stores"
        assert response["total_results"] >= 2
        assert all(result["snippet_edges"] <= 6 for result in response["results"])

    def test_batch_request_with_workers(self, tmp_path):
        import json

        request = self._write_request(
            tmp_path,
            {
                "kind": "batch",
                "schema_version": 1,
                "queries": ["store texas", "clothes casual"],
                "size_bound": 6,
            },
        )
        code, output = run_cli(
            "serve-request", "--dataset", "figure5-stores", "--dataset", "retail",
            "--request", request, "--workers", "4",
        )
        assert code == 0
        response = json.loads(output)
        assert response["kind"] == "batch_response"
        assert response["documents"] == ["figure5-stores", "retail"]
        assert len(response["entries"]) == 2

    def test_error_response_sets_exit_code(self, tmp_path):
        import json

        request = self._write_request(
            tmp_path,
            {
                "kind": "search",
                "schema_version": 1,
                "query": "store",
                "document": "no-such-document",
            },
        )
        code, output = run_cli(
            "serve-request", "--dataset", "figure5-stores", "--request", request
        )
        assert code == 1
        response = json.loads(output)
        assert response["kind"] == "error"
        assert "no-such-document" in response["message"]

    def test_malformed_json_is_protocol_error(self, tmp_path):
        import json

        path = tmp_path / "request.json"
        path.write_text("{broken", encoding="utf-8")
        code, output = run_cli(
            "serve-request", "--dataset", "figure5-stores", "--request", str(path)
        )
        assert code == 1
        response = json.loads(output)
        assert response["error"] == "ProtocolError"

    def test_pretty_flag_indents(self, tmp_path):
        request = self._write_request(
            tmp_path,
            {
                "kind": "search",
                "schema_version": 1,
                "query": "store texas",
                "document": "figure5-stores",
            },
        )
        code, output = run_cli(
            "serve-request", "--dataset", "figure5-stores", "--request", request, "--pretty"
        )
        assert code == 0
        assert output.startswith("{\n")

    def test_serve_request_from_corpus_snapshot(self, tmp_path):
        import json

        snapshot = str(tmp_path / "corpus")
        run_cli("corpus-save", "--dataset", "figure5-stores", "--output", snapshot)
        request = self._write_request(
            tmp_path,
            {
                "kind": "search",
                "schema_version": 1,
                "query": "store texas",
                "document": "figure5-stores",
                "size_bound": 6,
            },
        )
        code, output = run_cli("serve-request", "--corpus-dir", snapshot, "--request", request)
        assert code == 0
        assert json.loads(output)["total_results"] >= 2


class TestServeCommand:
    """The HTTP frontend, driven end to end through the CLI."""

    def _serve_in_thread(self, tmp_path, *extra):
        import os
        import threading
        import time

        port_file = str(tmp_path / "port")
        result: dict = {}

        def run():
            result["code"], result["output"] = run_cli(
                "serve", "--port", "0", "--port-file", port_file, *extra
            )

        thread = threading.Thread(target=run)
        thread.start()
        deadline = time.time() + 30
        while not os.path.exists(port_file):
            assert time.time() < deadline, "server never wrote its port file"
            assert thread.is_alive(), result
            time.sleep(0.05)
        with open(port_file, "r", encoding="utf-8") as handle:
            port = int(handle.read().strip())
        return thread, port, result

    def test_serve_corpus_over_http(self, tmp_path):
        from repro.api import SearchRequest, ServiceClient

        thread, port, result = self._serve_in_thread(
            tmp_path,
            "--dataset", "figure5-stores",
            "--max-requests", "3",
            "--max-in-flight", "4",
            "--deadline", "30",
        )
        client = ServiceClient(port=port)
        assert client.health()["status"] == "ok"
        response = client.execute(
            SearchRequest(query="store texas", document="figure5-stores", size_bound=6)
        )
        assert response.total_results >= 2
        assert client.stats()["requests"]["total"] >= 1  # 3rd request stops the server
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert result["code"] == 0
        assert "served 3 request(s)" in result["output"]

    def test_serve_cluster_backend(self, tmp_path):
        from repro.api import SearchRequest, ServiceClient

        cluster_dir = str(tmp_path / "cluster")
        code, _ = run_cli(
            "cluster-init", "--dataset", "figure5-stores", "--dataset", "retail",
            "--shards", "2", "--output", cluster_dir,
        )
        assert code == 0
        thread, port, result = self._serve_in_thread(
            tmp_path, "--cluster-dir", cluster_dir, "--max-requests", "2"
        )
        client = ServiceClient(port=port)
        assert client.capabilities()["shards"] == 2
        response = client.execute(
            SearchRequest(query="store texas", document="figure5-stores", size_bound=6)
        )
        assert response.total_results >= 2
        thread.join(timeout=30)
        assert result["code"] == 0

    def test_cluster_dir_conflicts_with_sources(self, tmp_path):
        code, output = run_cli(
            "serve", "--cluster-dir", str(tmp_path), "--dataset", "retail",
        )
        assert code == 1
        assert "--cluster-dir cannot be combined" in output


class TestLoadgenCommand:
    def test_plan_only_is_seed_deterministic(self):
        argv = (
            "loadgen", "--dataset", "retail", "--seed", "7",
            "--requests", "12", "--plan-only",
        )
        code_a, first = run_cli(*argv)
        code_b, second = run_cli(*argv)
        assert code_a == code_b == 0
        assert first == second  # byte-identical plans, acceptance criterion
        import json

        plan = json.loads(first)
        assert set(plan) == {"signature", "sequence"}
        assert len(plan["sequence"]) == 12

    def test_different_seed_changes_the_plan(self):
        import json

        _, first = run_cli(
            "loadgen", "--dataset", "retail", "--seed", "7", "--requests",
            "12", "--plan-only",
        )
        _, second = run_cli(
            "loadgen", "--dataset", "retail", "--seed", "8", "--requests",
            "12", "--plan-only",
        )
        assert json.loads(first)["signature"] != json.loads(second)["signature"]

    def test_bad_mix_is_an_error(self):
        code, output = run_cli(
            "loadgen", "--dataset", "retail", "--mix", "scan=1", "--plan-only",
        )
        assert code == 1
        assert "error:" in output

    def test_open_loop_arrival_requires_rate(self):
        code, output = run_cli(
            "loadgen", "--dataset", "retail", "--arrival", "poisson",
            "--plan-only",
        )
        assert code == 1
        assert "rate" in output

    def test_ablate_requires_corpus_sources(self):
        code, output = run_cli("loadgen-ablate")
        assert code == 1
        assert "corpus sources" in output

    def test_serve_rejects_negative_cache_size(self):
        code, output = run_cli(
            "serve", "--dataset", "retail", "--cache-size", "-1",
        )
        assert code == 1
        assert "cache-size" in output
