"""Tests for the incremental document lifecycle (ISSUE 3 tentpole).

Covers ``Corpus.update_document`` / ``remove_document`` / ``apply_update``,
cache-invalidation precision, the update journal round trip and the
hardened ``load_dir``.
"""

from __future__ import annotations

import json

import pytest

from repro.api import SearchRequest, SnippetService, UpdateRequest
from repro.corpus import Corpus
from repro.errors import ExtractError, StorageError
from repro.index.storage import (
    JOURNAL_FILE,
    JournalRecord,
    append_journal_record,
    directory_documents,
    read_corpus_journal,
)
from repro.xmltree.builder import tree_from_dict
from repro.xmltree.diff import clone_tree


def retailer_tree(galleria_city="Houston", categories=("suit", "jeans")):
    return tree_from_dict(
        "retailer",
        {
            "name": "Brook Brothers",
            "store": [
                {
                    "name": "Galleria",
                    "city": galleria_city,
                    "clothes": [{"category": category} for category in categories],
                },
                {"name": "West Village", "city": "Austin", "clothes": [{"category": "outwear"}]},
            ],
        },
        name="doc",
    )


def wire(service, query, document="doc", **kwargs):
    response = service.run(SearchRequest(query=query, document=document, size_bound=6, **kwargs))
    return json.dumps(response.to_dict(), sort_keys=True)


class TestUpdateDocument:
    def test_noop_update_keeps_every_cache_entry(self):
        corpus = Corpus()
        corpus.add_tree("doc", retailer_tree())
        service = SnippetService(corpus)
        service.run(SearchRequest(query="store austin", document="doc", size_bound=6))
        report = corpus.update_document("doc", retailer_tree())
        assert report.changed_nodes == 0
        assert report.cache_entries_invalidated == 0
        assert service.run(
            SearchRequest(query="store austin", document="doc", size_bound=6)
        ).from_cache

    def test_text_edit_is_incremental_and_matches_rebuild(self):
        corpus = Corpus()
        corpus.add_tree("doc", retailer_tree("Houston"))
        report = corpus.update_document("doc", retailer_tree("Dallas"))
        assert report.incremental
        assert report.changed_nodes == 1
        rebuilt = Corpus()
        rebuilt.add_tree("doc", retailer_tree("Dallas"))
        ours, theirs = SnippetService(corpus), SnippetService(rebuilt)
        for query in ("store dallas", "store houston", "store austin", "brook brothers"):
            assert wire(ours, query) == wire(theirs, query), query

    def test_structural_edit_falls_back_to_rebuild(self):
        corpus = Corpus()
        corpus.add_tree("doc", retailer_tree())
        report = corpus.update_document(
            "doc", retailer_tree(categories=("suit", "jeans", "shirts"))
        )
        assert not report.incremental
        assert report.structural_reason is not None
        rebuilt = Corpus()
        rebuilt.add_tree("doc", retailer_tree(categories=("suit", "jeans", "shirts")))
        assert wire(SnippetService(corpus), "clothes shirts") == wire(
            SnippetService(rebuilt), "clothes shirts"
        )

    def test_update_unknown_document_raises(self):
        with pytest.raises(ExtractError):
            Corpus().update_document("ghost", retailer_tree())

    def test_updates_chain(self):
        corpus = Corpus()
        corpus.add_tree("doc", retailer_tree("Houston"))
        for city in ("Dallas", "El Paso", "Waco"):
            assert corpus.update_document("doc", retailer_tree(city)).incremental
        rebuilt = Corpus()
        rebuilt.add_tree("doc", retailer_tree("Waco"))
        assert wire(SnippetService(corpus), "store waco") == wire(
            SnippetService(rebuilt), "store waco"
        )

    def test_filling_empty_text_matches_rebuild(self):
        # Regression: "" -> value flips has_text_value (and hence schema
        # classification); it must take the full-rebuild path and end up
        # byte-identical to a from-scratch corpus.
        def with_blank_names(tree):
            for node in tree.iter_nodes():
                if node.tag == "name":
                    node.text = ""
            return tree

        corpus = Corpus()
        corpus.add_tree("doc", with_blank_names(retailer_tree()))
        report = corpus.update_document("doc", retailer_tree())
        assert not report.incremental

        rebuilt = Corpus()
        rebuilt.add_tree("doc", retailer_tree())
        for query in ("store austin", "galleria suit", "brook brothers"):
            assert wire(SnippetService(corpus), query) == wire(
                SnippetService(rebuilt), query
            ), query

    def test_tree_adopts_registered_name(self):
        corpus = Corpus()
        corpus.add_tree("doc", retailer_tree())
        edited = retailer_tree("Dallas")
        edited.name = "something-else"
        corpus.update_document("doc", edited)
        assert corpus.system("doc").index.tree.name == "doc"


class TestCacheInvalidationPrecision:
    def build(self):
        corpus = Corpus()
        corpus.add_tree("doc", retailer_tree("Houston"))
        corpus.add_tree("other", clone_tree(retailer_tree("Houston"), name="other"))
        service = SnippetService(corpus)
        return corpus, service

    def test_affected_query_misses_unaffected_hits(self):
        corpus, service = self.build()
        affected = SearchRequest(query="store houston", document="doc", size_bound=6)
        unaffected = SearchRequest(query="store austin", document="doc", size_bound=6)
        service.run(affected)
        service.run(unaffected)

        report = corpus.update_document("doc", retailer_tree("Dallas"))
        assert report.incremental
        assert report.cache_entries_kept >= 1
        assert report.cache_entries_invalidated >= 1

        before = corpus.system("doc").cache.stats_snapshot()
        assert service.run(unaffected).from_cache
        assert not service.run(affected).from_cache
        after = corpus.system("doc").cache.stats_snapshot()
        assert after.hits == before.hits + 1
        assert after.misses == before.misses + 1

    def test_untouched_document_keeps_hitting(self):
        corpus, service = self.build()
        other_request = SearchRequest(query="store houston", document="other", size_bound=6)
        service.run(other_request)
        corpus.update_document("doc", retailer_tree("Dallas"))
        before = corpus.system("other").cache.stats_snapshot()
        assert service.run(other_request).from_cache
        after = corpus.system("other").cache.stats_snapshot()
        assert (after.hits, after.misses) == (before.hits + 1, before.misses)

    def test_query_touching_edited_subtree_is_invalidated(self):
        # "store austin" results cover the West Village store only; its
        # subtree is untouched, so the entry survives.  "galleria suit"
        # resolves to the Galleria store subtree, which contains the edited
        # <city> node — its snippet could differ, so it must be recomputed
        # even though neither keyword's posting list changed.
        corpus, service = self.build()
        subtree_safe = SearchRequest(query="store austin", document="doc", size_bound=6)
        subtree_hit = SearchRequest(query="galleria suit", document="doc", size_bound=6)
        service.run(subtree_safe)
        service.run(subtree_hit)
        corpus.update_document("doc", retailer_tree("Dallas"))
        assert service.run(subtree_safe).from_cache
        assert not service.run(subtree_hit).from_cache

    def test_plural_keyword_form_is_invalidated(self):
        corpus, service = self.build()
        plural = SearchRequest(query="stores houston", document="doc", size_bound=6)
        service.run(plural)
        corpus.update_document("doc", retailer_tree("Dallas"))
        assert not service.run(plural).from_cache

    def test_shared_postings_memo_carries_unaffected_keywords(self):
        corpus, service = self.build()
        service.run(SearchRequest(query="store austin", document="doc", size_bound=6, use_cache=False))
        memo_before = corpus.shared_postings("doc")
        assert "austin" in memo_before
        corpus.update_document("doc", retailer_tree("Dallas"))
        memo_after = corpus.shared_postings("doc")
        assert memo_after is not memo_before
        assert "austin" in memo_after  # carried: postings unchanged
        assert "houston" not in memo_after  # touched term dropped


class TestRemoveAndUpsert:
    def test_remove_document_reports(self):
        corpus = Corpus()
        corpus.add_tree("doc", retailer_tree())
        report = corpus.remove_document("doc")
        assert report.action == "removed"
        assert "doc" not in corpus

    def test_remove_unknown_raises(self):
        with pytest.raises(ExtractError):
            Corpus().remove_document("ghost")

    def test_apply_update_adds_then_updates(self):
        corpus = Corpus()
        first = corpus.apply_update("doc", retailer_tree("Houston"))
        assert first.action == "added"
        second = corpus.apply_update("doc", retailer_tree("Dallas"))
        assert second.action == "updated" and second.incremental

    def test_service_update_request_round_trip(self):
        corpus = Corpus()
        corpus.add_tree("doc", retailer_tree("Houston"))
        service = SnippetService(corpus)
        xml = (
            "<retailer><name>Brook Brothers</name>"
            "<store><name>Galleria</name><city>Dallas</city>"
            "<clothes><category>suit</category></clothes>"
            "<clothes><category>jeans</category></clothes></store>"
            "<store><name>West Village</name><city>Austin</city>"
            "<clothes><category>outwear</category></clothes></store></retailer>"
        )
        response = service.handle_dict(
            {"kind": "update", "schema_version": 1, "document": "doc", "xml": xml}
        )
        assert response["kind"] == "update_response"
        assert response["action"] == "updated"
        assert response["incremental"] is True
        removed = service.handle_dict(
            {"kind": "update", "schema_version": 1, "document": "doc", "action": "remove"}
        )
        assert removed["action"] == "removed"
        assert "doc" not in corpus

    def test_service_remove_unknown_is_error_response(self):
        service = SnippetService(Corpus())
        response = service.execute_update(UpdateRequest(document="ghost", action="remove"))
        assert response.kind == "error"


class TestJournalRoundTrip:
    def save(self, corpus, tmp_path):
        directory = tmp_path / "corpus"
        corpus.save_dir(directory)
        return directory

    def test_text_update_journalled_and_replayed(self, tmp_path):
        corpus = Corpus()
        corpus.add_tree("doc", retailer_tree("Houston"))
        directory = self.save(corpus, tmp_path)

        report = corpus.update_document("doc", retailer_tree("Dallas"))
        edits = tuple((str(edit.label), edit.new_text) for edit in report.text_edits)
        mapping = {name: subdir for subdir, name in directory_documents(directory).items()}
        append_journal_record(
            directory, JournalRecord(kind="update", subdir=mapping["doc"], edits=edits)
        )

        reloaded = Corpus.load_dir(directory)
        assert wire(SnippetService(reloaded), "store dallas") == wire(
            SnippetService(corpus), "store dallas"
        )

    def test_remove_and_add_records_replay(self, tmp_path):
        corpus = Corpus()
        corpus.add_tree("doc", retailer_tree())
        directory = self.save(corpus, tmp_path)
        from repro.index.storage import save_index

        other = Corpus()
        entry = other.add_tree("second", clone_tree(retailer_tree(), name="second"))
        save_index(entry.system.index, directory / "second")
        append_journal_record(directory, JournalRecord(kind="add", subdir="second", name="second"))
        append_journal_record(directory, JournalRecord(kind="remove", subdir="doc"))

        reloaded = Corpus.load_dir(directory)
        assert reloaded.names() == ["second"]

    def test_save_dir_discards_journal(self, tmp_path):
        corpus = Corpus()
        corpus.add_tree("doc", retailer_tree())
        directory = self.save(corpus, tmp_path)
        append_journal_record(directory, JournalRecord(kind="remove", subdir="doc"))
        assert (directory / JOURNAL_FILE).exists()
        corpus.save_dir(directory)
        assert not (directory / JOURNAL_FILE).exists()
        assert Corpus.load_dir(directory).names() == ["doc"]

    def test_journal_reader_round_trips_records(self, tmp_path):
        directory = tmp_path
        (directory / "x").mkdir()
        append_journal_record(
            directory,
            JournalRecord(kind="update", subdir="x", edits=(("1.0", 'va"l\nue'),)),
        )
        append_journal_record(directory, JournalRecord(kind="replace", subdir="x", snapshot="y"))
        records = read_corpus_journal(directory)
        assert [record.kind for record in records] == ["update", "replace"]
        assert records[0].edits == (("1.0", 'va"l\nue'),)
        assert records[1].snapshot == "y"


class TestHardenedLoadDir:
    def test_truncated_postings_section_fails_cleanly(self, tmp_path):
        corpus = Corpus()
        corpus.add_tree("doc", retailer_tree())
        directory = tmp_path / "corpus"
        corpus.save_dir(directory)
        index_file = directory / "doc" / "inverted.idx"
        lines = index_file.read_text(encoding="utf-8").splitlines()
        index_file.write_text("\n".join(lines[: len(lines) // 2]) + "\n", encoding="utf-8")
        with pytest.raises(StorageError):
            Corpus.load_dir(directory)

    def test_journal_referencing_missing_document_fails_cleanly(self, tmp_path):
        corpus = Corpus()
        corpus.add_tree("doc", retailer_tree())
        directory = tmp_path / "corpus"
        corpus.save_dir(directory)
        append_journal_record(
            directory,
            JournalRecord(kind="update", subdir="ghost", edits=(("1.0", "x"),)),
        )
        with pytest.raises(StorageError, match="ghost"):
            Corpus.load_dir(directory)

    def test_journal_referencing_missing_node_fails_cleanly(self, tmp_path):
        corpus = Corpus()
        corpus.add_tree("doc", retailer_tree())
        directory = tmp_path / "corpus"
        corpus.save_dir(directory)
        append_journal_record(
            directory,
            JournalRecord(kind="update", subdir="doc", edits=(("9.9.9", "x"),)),
        )
        with pytest.raises(StorageError, match="missing node"):
            Corpus.load_dir(directory)

    def test_truncated_journal_fails_cleanly(self, tmp_path):
        corpus = Corpus()
        corpus.add_tree("doc", retailer_tree())
        directory = tmp_path / "corpus"
        corpus.save_dir(directory)
        report = corpus.update_document("doc", retailer_tree("Dallas"))
        edits = tuple((str(edit.label), edit.new_text) for edit in report.text_edits)
        append_journal_record(
            directory, JournalRecord(kind="update", subdir="doc", edits=edits)
        )
        journal = directory / JOURNAL_FILE
        lines = journal.read_text(encoding="utf-8").splitlines()
        journal.write_text("\n".join(lines[:-1]) + "\n", encoding="utf-8")
        with pytest.raises(StorageError, match="truncated"):
            Corpus.load_dir(directory)
