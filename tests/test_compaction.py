"""Tests for journal compaction: fold corpus.journal into base snapshots."""

from __future__ import annotations

import io
import json
import os

import pytest

from repro.api import SearchRequest, SnippetService
from repro.cli import main
from repro.corpus import Corpus, compact_corpus_dir
from repro.errors import StorageError
from repro.index.storage import JOURNAL_FILE, read_corpus_journal
from repro.xmltree.diff import clone_tree
from repro.xmltree.serialize import to_xml_string

QUERIES = ("store texas", "store nevada", "retailer apparel", "alpha")


def run_cli(*argv: str) -> tuple[int, str]:
    buffer = io.StringIO()
    code = main(list(argv), out=buffer)
    return code, buffer.getvalue()


def wire_all(directory) -> list[str]:
    corpus = Corpus.load_dir(directory)
    service = SnippetService(corpus)
    lines = []
    for name in corpus.names():
        for query in QUERIES:
            response = service.run(
                SearchRequest(query=query, document=name, size_bound=6)
            )
            lines.append(json.dumps(response.to_dict(), sort_keys=True))
    return lines


@pytest.fixture()
def journalled_corpus(tmp_path):
    """A saved corpus with a journal holding every record kind: an
    incremental update, a structural replace, an add and a remove."""
    directory = tmp_path / "corpus"
    code, _ = run_cli(
        "corpus-save", "--dataset", "figure5-stores", "--dataset", "retail",
        "--dataset", "movies", "--output", str(directory),
    )
    assert code == 0

    corpus = Corpus.load_dir(directory)
    # incremental update (text-only)
    edited = clone_tree(corpus.system("figure5-stores").index.tree)
    for node in edited.iter_nodes():
        if node.text == "Texas":
            node.text = "Nevada"
    update_file = tmp_path / "figure5-stores.xml"
    update_file.write_text(to_xml_string(edited), encoding="utf-8")
    assert run_cli("corpus-update", "--corpus-dir", str(directory), "--file", str(update_file))[0] == 0
    # structural replace
    structural = clone_tree(corpus.system("figure5-stores").index.tree)
    structural.root.append_child(type(structural.root)("annex"))
    update_file.write_text(to_xml_string(structural), encoding="utf-8")
    assert run_cli("corpus-update", "--corpus-dir", str(directory), "--file", str(update_file))[0] == 0
    # add + remove
    added = tmp_path / "extra.xml"
    added.write_text("<root><name>alpha</name></root>", encoding="utf-8")
    assert run_cli("corpus-update", "--corpus-dir", str(directory), "--file", str(added))[0] == 0
    assert run_cli("corpus-update", "--corpus-dir", str(directory), "--remove", "movies")[0] == 0
    assert len(read_corpus_journal(directory)) == 4
    return directory


class TestCompaction:
    def test_results_byte_identical_before_and_after(self, journalled_corpus):
        before = wire_all(journalled_corpus)
        report = compact_corpus_dir(journalled_corpus)
        assert report.records_folded == 4
        assert wire_all(journalled_corpus) == before

    def test_journal_and_orphan_snapshots_gone(self, journalled_corpus):
        compact_corpus_dir(journalled_corpus)
        assert not os.path.exists(os.path.join(journalled_corpus, JOURNAL_FILE))
        # only the manifest and one subdirectory per live document remain
        corpus = Corpus.load_dir(journalled_corpus)
        subdirs = [
            entry
            for entry in os.listdir(journalled_corpus)
            if os.path.isdir(os.path.join(journalled_corpus, entry))
        ]
        assert len(subdirs) == len(corpus)

    def test_compacted_corpus_loads_without_replay(self, journalled_corpus):
        compact_corpus_dir(journalled_corpus)
        assert read_corpus_journal(journalled_corpus) == []
        corpus = Corpus.load_dir(journalled_corpus)
        assert "movies" not in corpus
        assert "extra" in corpus

    def test_staging_leftovers_are_cleared(self, journalled_corpus):
        # A previous crash can leave the staging/backup siblings behind;
        # the next compaction must clear them, not trip over them.
        staging = f"{os.path.normpath(os.fspath(journalled_corpus))}.compacting"
        backup = f"{os.path.normpath(os.fspath(journalled_corpus))}.pre-compact"
        os.makedirs(os.path.join(staging, "junk"))
        os.makedirs(os.path.join(backup, "junk"))
        before = wire_all(journalled_corpus)
        compact_corpus_dir(journalled_corpus)
        assert not os.path.exists(staging)
        assert not os.path.exists(backup)
        assert wire_all(journalled_corpus) == before

    def test_compacting_a_journal_free_corpus_is_a_noop_fold(self, journalled_corpus):
        compact_corpus_dir(journalled_corpus)
        before = wire_all(journalled_corpus)
        report = compact_corpus_dir(journalled_corpus)
        assert report.records_folded == 0
        assert wire_all(journalled_corpus) == before

    def test_corrupt_corpus_is_refused_untouched(self, journalled_corpus):
        journal = os.path.join(journalled_corpus, JOURNAL_FILE)
        with open(journal, "w", encoding="utf-8") as handle:
            handle.write("#extract-corpus-journal v1\nupdate ghost 1\n")
        with pytest.raises(StorageError):
            compact_corpus_dir(journalled_corpus)
        # the broken directory is left exactly as it was for inspection
        assert os.path.exists(journal)

    def test_cli_command(self, journalled_corpus):
        code, output = run_cli("corpus-compact", "--corpus-dir", str(journalled_corpus))
        assert code == 0
        assert "folded 4 journal record(s)" in output
        code, output = run_cli("corpus-compact", "--corpus-dir", str(journalled_corpus))
        assert code == 0
        assert "folded 0 journal record(s)" in output


def tree_bytes(directory) -> dict[str, bytes]:
    """Every file under ``directory``, keyed by relative path."""
    snapshot = {}
    for root, _dirs, names in os.walk(directory):
        for name in names:
            path = os.path.join(root, name)
            with open(path, "rb") as handle:
                snapshot[os.path.relpath(path, directory)] = handle.read()
    return snapshot


class TestJournalFreeByteStability:
    """Compacting a journal-free corpus copies base snapshots verbatim —
    it must not re-parse and re-serialise untouched documents."""

    @pytest.mark.parametrize("fmt", ["v3", "v4"])
    def test_compaction_is_byte_stable(self, tmp_path, fmt):
        from repro.index.storage import BINARY_FORMAT_VERSION

        directory = tmp_path / "corpus"
        corpus = Corpus()
        corpus.add_builtin("figure5-stores", name="stores")
        corpus.add_builtin("retail", name="retail")
        if fmt == "v4":
            corpus.save_dir(directory, format_version=BINARY_FORMAT_VERSION)
        else:
            corpus.save_dir(directory)

        before = tree_bytes(directory)
        report = compact_corpus_dir(directory)
        assert report.records_folded == 0
        assert tree_bytes(directory) == before

    def test_journalled_compaction_preserves_untouched_documents(self, journalled_corpus):
        # Only the journalled documents are rewritten; 'retail' has no
        # journal record, so its snapshot bytes are carried over verbatim.
        before = tree_bytes(journalled_corpus)
        compact_corpus_dir(journalled_corpus)
        after = tree_bytes(journalled_corpus)
        retail_files = {
            rel: data for rel, data in before.items() if rel.startswith("retail" + os.sep)
        }
        assert retail_files
        for rel, data in retail_files.items():
            assert after.get(rel) == data
