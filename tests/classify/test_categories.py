"""Tests for the §2.1 node classification rules."""

from __future__ import annotations

import pytest

from repro.classify.categories import (
    NodeCategory,
    attribute_paths_of,
    classify_path,
    classify_schema,
    entity_paths,
)
from repro.xmltree.builder import tree_from_dict
from repro.xmltree.dtd import parse_dtd
from repro.xmltree.schema import infer_schema


@pytest.fixture()
def retailer_schema():
    tree = tree_from_dict(
        "retailer",
        {
            "name": "Brook Brothers",
            "store": [
                {
                    "name": "Galleria",
                    "city": "Houston",
                    "merchandises": {"clothes": [{"category": "suit"}, {"category": "skirt"}]},
                },
                {"name": "West Village", "city": "Austin", "merchandises": {"clothes": [{"category": "suit"}]}},
            ],
        },
    )
    return infer_schema(tree)


class TestClassifyPath:
    def test_repeating_node_is_entity(self, retailer_schema):
        assert classify_path(retailer_schema, ("retailer", "store")) == NodeCategory.ENTITY
        assert (
            classify_path(retailer_schema, ("retailer", "store", "merchandises", "clothes"))
            == NodeCategory.ENTITY
        )

    def test_text_leaf_is_attribute(self, retailer_schema):
        assert classify_path(retailer_schema, ("retailer", "name")) == NodeCategory.ATTRIBUTE
        assert classify_path(retailer_schema, ("retailer", "store", "city")) == NodeCategory.ATTRIBUTE

    def test_internal_non_repeating_node_is_connection(self, retailer_schema):
        assert (
            classify_path(retailer_schema, ("retailer", "store", "merchandises"))
            == NodeCategory.CONNECTION
        )

    def test_root_is_connection(self, retailer_schema):
        # the root neither repeats nor is a text leaf here
        assert classify_path(retailer_schema, ("retailer",)) == NodeCategory.CONNECTION

    def test_repeating_text_leaf_is_entity_not_attribute(self):
        # rule order: the *-node rule wins (e.g. repeatable <keyword> leaves)
        tree = tree_from_dict("paper", {"keyword": ["xml", "search"]})
        schema = infer_schema(tree)
        assert classify_path(schema, ("paper", "keyword")) == NodeCategory.ENTITY

    def test_dtd_makes_single_instance_an_entity(self):
        tree = tree_from_dict("retailer", {"store": [{"city": "Houston"}]})
        schema = infer_schema(tree, dtd=parse_dtd("<!ELEMENT retailer (store*)>"))
        assert classify_path(schema, ("retailer", "store")) == NodeCategory.ENTITY


class TestClassifySchema:
    def test_every_path_classified(self, retailer_schema):
        categories = classify_schema(retailer_schema)
        assert set(categories) == set(retailer_schema.nodes)

    def test_category_values_are_enum(self, retailer_schema):
        categories = classify_schema(retailer_schema)
        assert all(isinstance(category, NodeCategory) for category in categories.values())


class TestHelpers:
    def test_entity_paths_ordered_by_depth(self, retailer_schema):
        paths = entity_paths(retailer_schema)
        assert paths[0] == ("retailer", "store")
        assert paths[-1] == ("retailer", "store", "merchandises", "clothes")

    def test_attribute_paths_of_entity(self, retailer_schema):
        attributes = attribute_paths_of(retailer_schema, ("retailer", "store"))
        assert {path[-1] for path in attributes} == {"name", "city"}

    def test_attribute_paths_of_leaf_entity(self, retailer_schema):
        attributes = attribute_paths_of(
            retailer_schema, ("retailer", "store", "merchandises", "clothes")
        )
        assert {path[-1] for path in attributes} == {"category"}

    def test_node_category_str(self):
        assert str(NodeCategory.ENTITY) == "entity"
