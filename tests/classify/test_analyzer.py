"""Tests for the Data Analyzer façade."""

from __future__ import annotations

import pytest

from repro.classify.analyzer import DataAnalyzer
from repro.classify.categories import NodeCategory
from repro.xmltree.builder import tree_from_dict


@pytest.fixture()
def analyzer(small_retailer_tree):
    return DataAnalyzer(small_retailer_tree)


class TestCategories:
    def test_entity_tags(self, analyzer):
        assert analyzer.entity_tags() == {"store", "clothes"}

    def test_category_of_instances(self, analyzer, small_retailer_tree):
        store = small_retailer_tree.find_by_tag("store")[0]
        city = small_retailer_tree.find_by_tag("city")[0]
        merchandises = small_retailer_tree.find_by_tag("merchandises")[0]
        assert analyzer.is_entity(store)
        assert analyzer.is_attribute(city)
        assert analyzer.is_connection(merchandises)

    def test_unknown_path_defaults_to_connection(self, analyzer):
        assert analyzer.category_of_path(("alien", "path")) == NodeCategory.CONNECTION

    def test_summary_counts(self, analyzer):
        counts = analyzer.summary()
        assert counts["entity"] == 2
        assert counts["attribute"] >= 5
        assert sum(counts.values()) == len(analyzer.categories)

    def test_repr_mentions_counts(self, analyzer):
        assert "entities=2" in repr(analyzer)


class TestEntityTypes:
    def test_entity_type_metadata(self, analyzer):
        store_type = analyzer.entity_type_by_tag("store")
        assert store_type is not None
        assert store_type.instance_count == 2
        assert set(store_type.attribute_tags) == {"name", "state", "city"}
        assert store_type.key is not None and store_type.key.attribute_tag == "name"

    def test_clothes_have_no_key(self, analyzer):
        clothes_type = analyzer.entity_type_by_tag("clothes")
        assert clothes_type is not None
        # category/fitting/situation values repeat, so no key attribute
        assert clothes_type.key is None

    def test_entity_type_by_tag_unknown(self, analyzer):
        assert analyzer.entity_type_by_tag("warehouse") is None

    def test_entity_type_of_node(self, analyzer, small_retailer_tree):
        store = small_retailer_tree.find_by_tag("store")[0]
        assert analyzer.entity_type_of(store).tag == "store"
        name = small_retailer_tree.find_by_tag("name")[0]
        assert analyzer.entity_type_of(name) is None

    def test_key_of_entity_path(self, analyzer):
        store_type = analyzer.entity_type_by_tag("store")
        assert analyzer.key_of_entity_path(store_type.tag_path) is store_type.key
        assert analyzer.key_of_entity_path(("nope",)) is None


class TestOwningEntity:
    def test_attribute_owned_by_nearest_entity(self, analyzer, small_retailer_tree):
        city = small_retailer_tree.find_by_tag("city")[0]
        assert analyzer.owning_entity(city).tag == "store"
        category = small_retailer_tree.find_by_tag("category")[0]
        assert analyzer.owning_entity(category).tag == "clothes"

    def test_entity_owns_itself(self, analyzer, small_retailer_tree):
        store = small_retailer_tree.find_by_tag("store")[0]
        assert analyzer.owning_entity(store) is store

    def test_node_without_entity_ancestor(self, analyzer, small_retailer_tree):
        # retailer-level attributes have no entity ancestor in this document
        name = small_retailer_tree.root.find_child("name")
        assert analyzer.owning_entity(name) is None

    def test_attribute_children(self, analyzer, small_retailer_tree):
        store = small_retailer_tree.find_by_tag("store")[0]
        tags = [child.tag for child in analyzer.attribute_children(store)]
        assert tags == ["name", "state", "city"]


class TestMultipleEntityPathsSameTag:
    def test_highest_path_preferred(self):
        tree = tree_from_dict(
            "db",
            {
                "item": [{"name": "top1"}, {"name": "top2"}],
                "box": {"item": [{"name": "nested1"}, {"name": "nested2"}]},
            },
        )
        analyzer = DataAnalyzer(tree)
        chosen = analyzer.entity_type_by_tag("item")
        assert chosen.tag_path == ("db", "item")
