"""Tests for key mining."""

from __future__ import annotations

from repro.classify.categories import entity_paths
from repro.classify.keys import KeyMiner
from repro.xmltree.builder import tree_from_dict
from repro.xmltree.dtd import parse_dtd
from repro.xmltree.schema import infer_schema


def mine(tree, dtd=None):
    schema = infer_schema(tree, dtd=dtd)
    miner = KeyMiner(schema)
    return schema, miner.mine(tree, entity_paths(schema))


class TestKeyMining:
    def test_unique_name_is_key(self):
        tree = tree_from_dict(
            "db",
            {"store": [
                {"name": "Galleria", "city": "Houston"},
                {"name": "West Village", "city": "Houston"},
            ]},
        )
        _, keys = mine(tree)
        assert keys[("db", "store")].attribute_tag == "name"
        assert keys[("db", "store")].uniqueness == 1.0

    def test_non_unique_attribute_rejected(self):
        tree = tree_from_dict(
            "db",
            {"store": [
                {"brand": "Levis", "city": "Houston"},
                {"brand": "Levis", "city": "Austin"},
            ]},
        )
        _, keys = mine(tree)
        # brand repeats; city is unique → city is the only valid key
        assert keys[("db", "store")].attribute_tag == "city"

    def test_no_candidate_when_nothing_unique(self):
        tree = tree_from_dict(
            "db",
            {"store": [
                {"brand": "Levis", "state": "Texas"},
                {"brand": "Levis", "state": "Texas"},
            ]},
        )
        _, keys = mine(tree)
        assert ("db", "store") not in keys

    def test_preferred_name_wins_over_other_unique_attribute(self):
        tree = tree_from_dict(
            "db",
            {"store": [
                {"zip": "77001", "name": "Galleria"},
                {"zip": "78701", "name": "West Village"},
            ]},
        )
        _, keys = mine(tree)
        # both zip and name are unique; "name" is a conventional identifier
        assert keys[("db", "store")].attribute_tag == "name"

    def test_id_preference_over_name(self):
        tree = tree_from_dict(
            "db",
            {"store": [
                {"id": "1", "name": "Galleria"},
                {"id": "2", "name": "West Village"},
            ]},
        )
        _, keys = mine(tree)
        assert keys[("db", "store")].attribute_tag == "id"

    def test_dtd_id_attribute_wins(self):
        tree = tree_from_dict(
            "db",
            {"store": [
                {"code": "S1", "name": "Galleria"},
                {"code": "S2", "name": "West Village"},
            ]},
        )
        dtd = parse_dtd("<!ELEMENT db (store*)><!ATTLIST store code ID #REQUIRED>")
        _, keys = mine(tree, dtd=dtd)
        assert keys[("db", "store")].attribute_tag == "code"
        assert keys[("db", "store")].from_dtd

    def test_low_coverage_attribute_rejected(self):
        stores = [{"name": f"Store {i}"} for i in range(10)]
        stores[0]["nickname"] = "Only one has this"
        tree = tree_from_dict("db", {"store": stores})
        _, keys = mine(tree)
        assert keys[("db", "store")].attribute_tag == "name"

    def test_entity_without_attributes_has_no_key(self):
        tree = tree_from_dict("db", {"group": [{"member": [{"x": "1"}]}, {"member": [{"x": "2"}]}]})
        schema, keys = mine(tree)
        assert ("db", "group") not in keys

    def test_nested_entity_keys(self):
        tree = tree_from_dict(
            "db",
            {"retailer": [
                {"name": "A", "store": [{"name": "A1"}, {"name": "A2"}]},
                {"name": "B", "store": [{"name": "B1"}]},
            ]},
        )
        _, keys = mine(tree)
        assert keys[("db", "retailer")].attribute_tag == "name"
        assert keys[("db", "retailer", "store")].attribute_tag == "name"

    def test_key_info_repr_and_tags(self):
        tree = tree_from_dict("db", {"store": [{"name": "A"}, {"name": "B"}]})
        _, keys = mine(tree)
        info = keys[("db", "store")]
        assert info.entity_tag == "store"
        assert "store.name" in repr(info)
