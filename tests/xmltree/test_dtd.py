"""Tests for DTD parsing and *-node detection from content models."""

from __future__ import annotations

import pytest

from repro.errors import DTDParseError
from repro.xmltree.dtd import DTD, dtd_for_tree_text, parse_dtd

RETAIL_DTD = """
  <!ELEMENT commerce (retailer*)>
  <!ELEMENT retailer (name, product, store*)>
  <!ELEMENT store (name, state, city, merchandises)>
  <!ELEMENT merchandises (clothes+)>
  <!ELEMENT clothes (category, fitting?, situation?)>
  <!ELEMENT name (#PCDATA)>
  <!ELEMENT category (#PCDATA)>
  <!ATTLIST store id ID #REQUIRED location CDATA #IMPLIED>
"""


class TestElementDeclarations:
    def test_star_children_detected(self):
        dtd = parse_dtd(RETAIL_DTD)
        assert dtd.is_repeatable_child("retailer", "store") is True
        assert dtd.is_repeatable_child("commerce", "retailer") is True

    def test_plus_counts_as_repeatable(self):
        dtd = parse_dtd(RETAIL_DTD)
        assert dtd.is_repeatable_child("merchandises", "clothes") is True

    def test_single_occurrence_children(self):
        dtd = parse_dtd(RETAIL_DTD)
        assert dtd.is_repeatable_child("retailer", "name") is False
        assert dtd.is_repeatable_child("store", "city") is False

    def test_optional_child_not_repeatable(self):
        dtd = parse_dtd(RETAIL_DTD)
        assert dtd.is_repeatable_child("clothes", "fitting") is False
        assert dtd.element("clothes").children["fitting"].optional is True

    def test_unknown_pair_returns_none(self):
        dtd = parse_dtd(RETAIL_DTD)
        assert dtd.is_repeatable_child("store", "unknown") is None
        assert dtd.is_repeatable_child("unknown", "x") is None

    def test_star_node_tags(self):
        dtd = parse_dtd(RETAIL_DTD)
        assert dtd.star_node_tags() == {"retailer", "store", "clothes"}

    def test_pcdata_flag(self):
        dtd = parse_dtd(RETAIL_DTD)
        assert dtd.element("name").has_text
        assert not dtd.element("retailer").has_text

    def test_declares(self):
        dtd = parse_dtd(RETAIL_DTD)
        assert dtd.declares("store")
        assert not dtd.declares("warehouse")


class TestContentModelVariants:
    def test_empty_and_any(self):
        dtd = parse_dtd("<!ELEMENT a EMPTY><!ELEMENT b ANY>")
        assert dtd.element("a").is_empty
        assert dtd.element("b").is_any
        assert dtd.is_repeatable_child("b", "anything") is None

    def test_choice_group(self):
        dtd = parse_dtd("<!ELEMENT a (b | c)*>")
        assert dtd.is_repeatable_child("a", "b") is True
        assert dtd.is_repeatable_child("a", "c") is True

    def test_nested_groups(self):
        dtd = parse_dtd("<!ELEMENT a (b, (c, d)+)>")
        assert dtd.is_repeatable_child("a", "b") is False
        assert dtd.is_repeatable_child("a", "c") is True
        assert dtd.is_repeatable_child("a", "d") is True

    def test_mixed_content(self):
        dtd = parse_dtd("<!ELEMENT a (#PCDATA | b)*>")
        assert dtd.element("a").has_text
        assert dtd.is_repeatable_child("a", "b") is True

    def test_repeated_tag_in_model_merges(self):
        dtd = parse_dtd("<!ELEMENT a (b, c, b*)>")
        assert dtd.is_repeatable_child("a", "b") is True

    def test_unbalanced_parentheses_raise(self):
        with pytest.raises(DTDParseError):
            parse_dtd("<!ELEMENT a (b, (c)>")


class TestAttlist:
    def test_id_attributes(self):
        dtd = parse_dtd(RETAIL_DTD)
        assert dtd.id_attributes("store") == ["id"]
        assert dtd.id_attributes("retailer") == []

    def test_attribute_details(self):
        dtd = parse_dtd(RETAIL_DTD)
        store_attrs = [attr for attr in dtd.attributes if attr.element == "store"]
        assert {attr.name for attr in store_attrs} == {"id", "location"}
        id_attr = next(attr for attr in store_attrs if attr.name == "id")
        assert id_attr.is_id and id_attr.default == "#REQUIRED"


class TestHelpers:
    def test_parse_dtd_requires_text(self):
        with pytest.raises(DTDParseError):
            parse_dtd(None)  # type: ignore[arg-type]

    def test_dtd_for_tree_text_none(self):
        assert dtd_for_tree_text(None) is None
        assert dtd_for_tree_text("") is None

    def test_dtd_for_tree_text_parses(self):
        dtd = dtd_for_tree_text("<!ELEMENT a (b*)>", root="a")
        assert isinstance(dtd, DTD)
        assert dtd.root == "a"

    def test_repr(self):
        assert "elements=" in repr(parse_dtd(RETAIL_DTD))
