"""Tests for the document-tree diff behind incremental updates."""

from __future__ import annotations

from repro.xmltree.builder import tree_from_dict
from repro.xmltree.diff import clone_tree, diff_trees


def shop(city="Houston", category="suit"):
    return tree_from_dict(
        "shop",
        {
            "name": "Levis",
            "store": [
                {"name": "Galleria", "city": city},
                {"name": "Downtown", "city": "Austin"},
            ],
            "clothes": [{"category": category}],
        },
        name="shop",
    )


class TestEmptyAndTextOnly:
    def test_identical_trees_diff_empty(self):
        diff = diff_trees(shop(), shop())
        assert diff.is_empty
        assert not diff.is_text_only
        assert not diff.is_structural

    def test_clone_diffs_empty(self):
        tree = shop()
        diff = diff_trees(tree, clone_tree(tree))
        assert diff.is_empty

    def test_single_text_edit(self):
        diff = diff_trees(shop(city="Houston"), shop(city="Dallas"))
        assert diff.is_text_only
        assert len(diff.text_edits) == 1
        edit = diff.text_edits[0]
        assert (edit.old_text, edit.new_text) == ("Houston", "Dallas")
        assert edit.tag == "city"
        assert edit.tag_path[-1] == "city"

    def test_multiple_text_edits_in_document_order(self):
        diff = diff_trees(shop("Houston", "suit"), shop("Dallas", "jeans"))
        assert diff.is_text_only
        assert [edit.new_text for edit in diff.text_edits] == ["Dallas", "jeans"]
        labels = [edit.label for edit in diff.text_edits]
        assert labels == sorted(labels)


class TestStructural:
    def test_added_node_is_structural(self):
        old = tree_from_dict("shop", {"store": [{"city": "Houston"}]})
        new = tree_from_dict("shop", {"store": [{"city": "Houston"}, {"city": "Austin"}]})
        diff = diff_trees(old, new)
        assert diff.is_structural
        assert "node count" in diff.structural_reason

    def test_renamed_tag_is_structural(self):
        old = tree_from_dict("shop", {"store": [{"city": "Houston"}]})
        new = tree_from_dict("shop", {"store": [{"town": "Houston"}]})
        diff = diff_trees(old, new)
        assert diff.is_structural
        assert "tag" in diff.structural_reason

    def test_text_presence_flip_is_structural(self):
        # A value disappearing can reclassify the schema node (attribute ->
        # connection), so it must not take the delta path.
        old = tree_from_dict("shop", {"store": [{"city": "Houston"}]})
        new = clone_tree(old)
        for node in new.iter_nodes():
            if node.tag == "city":
                node.text = None
        diff = diff_trees(old, new)
        assert diff.is_structural
        assert "presence" in diff.structural_reason

    def test_empty_string_to_text_is_structural(self):
        # has_text_value is truthiness-based: "" and None are both "no
        # text" to the pipeline, so filling in "" flips classification
        # inputs exactly like filling in None would — structural.
        old = tree_from_dict("shop", {"store": [{"name": "x", "city": "Austin"}]})
        for node in old.iter_nodes():
            if node.tag == "name":
                node.text = ""
        new = tree_from_dict("shop", {"store": [{"name": "Levis", "city": "Austin"}]})
        diff = diff_trees(old, new)
        assert diff.is_structural
        assert "presence" in diff.structural_reason

    def test_empty_string_vs_none_is_no_edit(self):
        # "" and None are indistinguishable to indexing, schema inference
        # and feature extraction; the diff must not manufacture an edit.
        old = tree_from_dict("shop", {"store": [{"name": "x", "city": "Austin"}]})
        new = clone_tree(old)
        for tree in (old, new):
            for node in tree.iter_nodes():
                if node.tag == "name":
                    node.text = "" if tree is old else None
        assert diff_trees(old, new).is_empty

    def test_changed_attributes_are_structural(self):
        old = tree_from_dict("shop", {"store": [{"city": "Houston"}]})
        new = clone_tree(old)
        new.root.raw_attributes["version"] = "2"
        diff = diff_trees(old, new)
        assert diff.is_structural

    def test_reshaped_tree_with_same_node_count_is_structural(self):
        old = tree_from_dict("shop", {"a": {"b": "x"}, "c": "y"})
        new = tree_from_dict("shop", {"a": "x", "c": {"b": "y"}})
        assert old.size_nodes == new.size_nodes
        assert diff_trees(old, new).is_structural


class TestCloneTree:
    def test_clone_preserves_name_and_content(self):
        tree = shop()
        copy = clone_tree(tree)
        assert copy.name == tree.name
        assert copy.size_nodes == tree.size_nodes
        assert [node.dewey for node in copy.iter_nodes()] == [
            node.dewey for node in tree.iter_nodes()
        ]

    def test_clone_is_independent(self):
        tree = shop()
        copy = clone_tree(tree)
        for node in copy.iter_nodes():
            if node.tag == "city":
                node.text = "Elsewhere"
        assert diff_trees(tree, copy).is_text_only

    def test_clone_rename(self):
        assert clone_tree(shop(), name="other").name == "other"
