"""Tests for document statistics."""

from __future__ import annotations

from repro.xmltree.builder import tree_from_dict
from repro.xmltree.stats import compute_stats


def sample_tree():
    return tree_from_dict(
        "retailer",
        {
            "name": "Brook Brothers",
            "store": [
                {"city": "Houston", "state": "Texas"},
                {"city": "Austin", "state": "Texas"},
            ],
        },
        name="stats-sample",
    )


class TestComputeStats:
    def test_node_and_edge_counts(self):
        stats = compute_stats(sample_tree())
        assert stats.node_count == 8
        assert stats.edge_count == 7

    def test_depth_and_leaves(self):
        stats = compute_stats(sample_tree())
        assert stats.max_depth == 2
        assert stats.leaf_count == 5
        assert stats.text_node_count == 5

    def test_tag_counts(self):
        stats = compute_stats(sample_tree())
        assert stats.tag_counts["store"] == 2
        assert stats.tag_counts["city"] == 2
        assert stats.distinct_tags == 5

    def test_term_counts_include_values_and_tags(self):
        stats = compute_stats(sample_tree())
        assert stats.term_counts["texas"] == 2
        assert stats.term_counts["store"] >= 2

    def test_average_fanout(self):
        stats = compute_stats(sample_tree())
        # 3 internal nodes (retailer + 2 stores), 7 edges
        assert stats.average_fanout == 7 / 3

    def test_average_fanout_single_node(self):
        stats = compute_stats(tree_from_dict("only", {}))
        assert stats.average_fanout == 0.0

    def test_most_common_helpers(self):
        stats = compute_stats(sample_tree())
        assert stats.most_common_tags(1)[0][0] in {"store", "city", "state"}
        assert len(stats.most_common_terms(3)) == 3

    def test_format_summary_mentions_name_and_counts(self):
        stats = compute_stats(sample_tree())
        text = stats.format_summary()
        assert "stats-sample" in text
        assert "8 / 7" in text
