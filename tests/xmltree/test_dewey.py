"""Tests for Dewey labels."""

from __future__ import annotations

import pytest

from repro.errors import DeweyError
from repro.xmltree.dewey import Dewey, document_order, remove_ancestors, remove_descendants


class TestConstruction:
    def test_root(self):
        assert Dewey.root().is_root
        assert Dewey.root().depth == 0

    def test_components(self):
        assert Dewey((0, 2, 1)).components == (0, 2, 1)

    def test_negative_component_rejected(self):
        with pytest.raises(DeweyError):
            Dewey((0, -1))

    def test_parse_round_trip(self):
        label = Dewey((3, 0, 7))
        assert Dewey.parse(str(label)) == label

    def test_parse_root_forms(self):
        assert Dewey.parse("r") == Dewey.root()
        assert Dewey.parse("") == Dewey.root()

    def test_parse_malformed(self):
        with pytest.raises(DeweyError):
            Dewey.parse("1.x.2")

    def test_str_of_root(self):
        assert str(Dewey.root()) == "r"

    def test_repr(self):
        assert repr(Dewey((1, 2))) == "Dewey('1.2')"


class TestNavigation:
    def test_child(self):
        assert Dewey((0,)).child(3) == Dewey((0, 3))

    def test_child_negative_rejected(self):
        with pytest.raises(DeweyError):
            Dewey((0,)).child(-1)

    def test_parent(self):
        assert Dewey((0, 3)).parent() == Dewey((0,))

    def test_parent_of_root_raises(self):
        with pytest.raises(DeweyError):
            Dewey.root().parent()

    def test_ordinal(self):
        assert Dewey((0, 3)).ordinal == 3

    def test_ordinal_of_root_raises(self):
        with pytest.raises(DeweyError):
            _ = Dewey.root().ordinal

    def test_ancestors_excluding_self(self):
        ancestors = list(Dewey((1, 2, 3)).ancestors())
        assert ancestors == [Dewey(()), Dewey((1,)), Dewey((1, 2))]

    def test_ancestors_including_self(self):
        ancestors = list(Dewey((1, 2)).ancestors(include_self=True))
        assert ancestors[-1] == Dewey((1, 2))

    def test_prefix(self):
        assert Dewey((1, 2, 3)).prefix(2) == Dewey((1, 2))

    def test_prefix_out_of_range(self):
        with pytest.raises(DeweyError):
            Dewey((1,)).prefix(5)


class TestRelationships:
    def test_is_ancestor_of(self):
        assert Dewey((0,)).is_ancestor_of(Dewey((0, 1, 2)))
        assert not Dewey((0,)).is_ancestor_of(Dewey((1,)))

    def test_ancestor_is_strict(self):
        assert not Dewey((0, 1)).is_ancestor_of(Dewey((0, 1)))

    def test_is_descendant_of(self):
        assert Dewey((0, 1)).is_descendant_of(Dewey((0,)))

    def test_ancestor_or_self(self):
        assert Dewey((0, 1)).is_ancestor_or_self(Dewey((0, 1)))
        assert Dewey((0,)).is_ancestor_or_self(Dewey((0, 1)))
        assert not Dewey((0, 2)).is_ancestor_or_self(Dewey((0, 1)))

    def test_siblings(self):
        assert Dewey((0, 1)).is_sibling_of(Dewey((0, 2)))
        assert not Dewey((0, 1)).is_sibling_of(Dewey((0, 1)))
        assert not Dewey((0, 1)).is_sibling_of(Dewey((1, 1)))

    def test_root_has_no_siblings(self):
        assert not Dewey.root().is_sibling_of(Dewey((0,)))

    def test_common_ancestor(self):
        assert Dewey.common_ancestor(Dewey((0, 1, 2)), Dewey((0, 1, 5))) == Dewey((0, 1))
        assert Dewey.common_ancestor(Dewey((0,)), Dewey((1,))) == Dewey.root()

    def test_common_ancestor_with_ancestor(self):
        assert Dewey.common_ancestor(Dewey((0, 1)), Dewey((0,))) == Dewey((0,))

    def test_common_ancestor_of_all(self):
        labels = [Dewey((0, 1, 2)), Dewey((0, 1, 3)), Dewey((0, 2))]
        assert Dewey.common_ancestor_of_all(labels) == Dewey((0,))

    def test_common_ancestor_of_all_empty_raises(self):
        with pytest.raises(DeweyError):
            Dewey.common_ancestor_of_all([])

    def test_distance_to_ancestor(self):
        assert Dewey((0, 1, 2)).distance_to_ancestor(Dewey((0,))) == 2
        assert Dewey((0, 1)).distance_to_ancestor(Dewey((0, 1))) == 0

    def test_distance_to_non_ancestor_raises(self):
        with pytest.raises(DeweyError):
            Dewey((0, 1)).distance_to_ancestor(Dewey((1,)))

    def test_tree_distance(self):
        assert Dewey((0, 1)).tree_distance(Dewey((0, 2))) == 2
        assert Dewey((0,)).tree_distance(Dewey((0, 1, 2))) == 2
        assert Dewey((0,)).tree_distance(Dewey((0,))) == 0


class TestOrdering:
    def test_document_order_ancestor_first(self):
        assert Dewey((0,)) < Dewey((0, 1))

    def test_document_order_siblings(self):
        assert Dewey((0, 1)) < Dewey((0, 2))

    def test_sorting(self):
        labels = [Dewey((1,)), Dewey((0, 5)), Dewey((0,)), Dewey.root()]
        assert document_order(labels) == [Dewey.root(), Dewey((0,)), Dewey((0, 5)), Dewey((1,))]

    def test_hashable(self):
        assert len({Dewey((0, 1)), Dewey((0, 1)), Dewey((0, 2))}) == 2

    def test_equality_with_other_types(self):
        assert Dewey((0,)) != "0"

    def test_len_iter_getitem(self):
        label = Dewey((4, 5, 6))
        assert len(label) == 3
        assert list(label) == [4, 5, 6]
        assert label[1] == 5


class TestAntichainHelpers:
    def test_remove_descendants(self):
        labels = [Dewey((0,)), Dewey((0, 1)), Dewey((1, 2)), Dewey((1, 2, 3))]
        assert remove_descendants(labels) == [Dewey((0,)), Dewey((1, 2))]

    def test_remove_ancestors(self):
        labels = [Dewey((0,)), Dewey((0, 1)), Dewey((0, 2)), Dewey((1,))]
        assert remove_ancestors(labels) == [Dewey((0, 1)), Dewey((0, 2)), Dewey((1,))]

    def test_remove_ancestors_chain(self):
        labels = [Dewey(()), Dewey((0,)), Dewey((0, 1)), Dewey((0, 1, 2))]
        assert remove_ancestors(labels) == [Dewey((0, 1, 2))]

    def test_remove_ancestors_deduplicates(self):
        labels = [Dewey((0,)), Dewey((0,))]
        assert remove_ancestors(labels) == [Dewey((0,))]

    def test_remove_descendants_deduplicates(self):
        labels = [Dewey((0,)), Dewey((0,))]
        assert remove_descendants(labels) == [Dewey((0,))]
