"""Tests for the XMLNode model."""

from __future__ import annotations

import pytest

from repro.xmltree.dewey import Dewey
from repro.xmltree.node import XMLNode


def build_sample() -> XMLNode:
    root = XMLNode("retailer")
    name = XMLNode("name", "Brook Brothers")
    store = XMLNode("store")
    city = XMLNode("city", "Houston")
    root.append_child(name)
    root.append_child(store)
    store.append_child(city)
    return root


class TestConstruction:
    def test_empty_tag_rejected(self):
        with pytest.raises(ValueError):
            XMLNode("")

    def test_non_string_tag_rejected(self):
        with pytest.raises(ValueError):
            XMLNode(None)  # type: ignore[arg-type]

    def test_blank_text_becomes_none(self):
        assert XMLNode("a", "").text is None

    def test_append_child_sets_parent_and_dewey(self):
        root = build_sample()
        store = root.children[1]
        assert store.parent is root
        assert store.dewey == Dewey((1,))
        assert store.children[0].dewey == Dewey((1, 0))

    def test_append_attached_child_rejected(self):
        root = build_sample()
        other = XMLNode("other")
        with pytest.raises(ValueError):
            other.append_child(root.children[0])

    def test_relabel_after_graft(self):
        root = XMLNode("a")
        subtree = XMLNode("b")
        subtree.append_child(XMLNode("c"))
        root.append_child(subtree)
        assert subtree.dewey == Dewey((0,))
        assert subtree.children[0].dewey == Dewey((0, 0))


class TestProperties:
    def test_is_leaf_and_root(self):
        root = build_sample()
        assert root.is_root and not root.is_leaf
        assert root.children[0].is_leaf

    def test_depth(self):
        root = build_sample()
        assert root.depth == 0
        assert root.children[1].children[0].depth == 2

    def test_has_text_value(self):
        root = build_sample()
        assert root.children[0].has_text_value
        assert not root.children[1].has_text_value

    def test_tag_path(self):
        root = build_sample()
        city = root.children[1].children[0]
        assert city.tag_path == ("retailer", "store", "city")

    def test_raw_attributes_dict(self):
        node = XMLNode("store")
        node.raw_attributes["id"] = "3"
        assert node.raw_attributes == {"id": "3"}


class TestTraversal:
    def test_iter_subtree_preorder(self):
        root = build_sample()
        tags = [node.tag for node in root.iter_subtree()]
        assert tags == ["retailer", "name", "store", "city"]

    def test_iter_descendants_excludes_self(self):
        root = build_sample()
        tags = [node.tag for node in root.iter_descendants()]
        assert tags == ["name", "store", "city"]

    def test_iter_ancestors(self):
        root = build_sample()
        city = root.children[1].children[0]
        assert [node.tag for node in city.iter_ancestors()] == ["store", "retailer"]
        assert [node.tag for node in city.iter_ancestors(include_self=True)][0] == "city"

    def test_find_children(self):
        root = build_sample()
        assert [node.tag for node in root.find_children("store")] == ["store"]
        assert root.find_children("missing") == []

    def test_find_child(self):
        root = build_sample()
        assert root.find_child("name").text == "Brook Brothers"
        assert root.find_child("missing") is None

    def test_find_descendants(self):
        root = build_sample()
        assert [node.text for node in root.find_descendants("city")] == ["Houston"]


class TestContent:
    def test_full_text(self):
        root = build_sample()
        assert root.full_text() == "Brook Brothers Houston"

    def test_subtree_sizes(self):
        root = build_sample()
        assert root.subtree_size_nodes() == 4
        assert root.subtree_size_edges() == 3
        assert root.children[0].subtree_size_edges() == 0

    def test_dunder_iter_and_len(self):
        root = build_sample()
        assert len(root) == 2
        assert [child.tag for child in root] == ["name", "store"]

    def test_repr_contains_tag_and_dewey(self):
        root = build_sample()
        assert "retailer" in repr(root)
        assert "Houston" in repr(root.children[1].children[0])
