"""Tests for DOT and DTD export."""

from __future__ import annotations

from repro.classify.categories import classify_schema
from repro.xmltree.builder import tree_from_dict
from repro.xmltree.dtd import parse_dtd
from repro.xmltree.export import export_doctype, export_dtd, to_dot
from repro.xmltree.parser import parse_xml
from repro.xmltree.schema import infer_schema
from repro.xmltree.serialize import to_xml_string


def sample_tree():
    return tree_from_dict(
        "retailer",
        {
            "name": "Brook & Brothers",
            "store": [
                {"city": "Houston", "merchandises": {"clothes": [{"category": "suit"}]}},
                {"city": "Austin"},
            ],
        },
    )


class TestDot:
    def test_dot_structure(self):
        dot = to_dot(sample_tree())
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        # one box per value leaf (name, two cities, one category)
        assert dot.count('shape=box') == 4
        assert '"retailer"' in dot and '"store"' in dot

    def test_dot_escapes_quotes_and_specials(self):
        tree = tree_from_dict("a", {"b": 'say "hi"'})
        dot = to_dot(tree)
        assert '\\"hi\\"' in dot

    def test_dot_highlight(self):
        tree = sample_tree()
        store = tree.find_by_tag("store")[0]
        dot = to_dot(tree, highlight={store.dewey})
        assert dot.count("fillcolor") == 1

    def test_dot_rankdir_and_name(self):
        dot = to_dot(sample_tree(), graph_name="example", rankdir="LR")
        assert "digraph example" in dot
        assert "rankdir=LR" in dot

    def test_dot_accepts_detached_node(self):
        tree = sample_tree()
        dot = to_dot(tree.find_by_tag("store")[0])
        assert '"store"' in dot and '"retailer"' not in dot


class TestDtdExport:
    def test_star_children_marked(self):
        schema = infer_schema(sample_tree())
        dtd_text = export_dtd(schema, root_tag="retailer")
        assert "<!ELEMENT retailer" in dtd_text
        assert "store*" in dtd_text
        assert "<!ELEMENT city (#PCDATA)>" in dtd_text

    def test_optional_children_marked(self):
        # the second store has no merchandises → merchandises is optional
        schema = infer_schema(sample_tree())
        dtd_text = export_dtd(schema)
        assert "merchandises?" in dtd_text

    def test_empty_element(self):
        schema = infer_schema(tree_from_dict("a", {"flag": None}))
        assert "<!ELEMENT flag EMPTY>" in export_dtd(schema)

    def test_round_trip_preserves_star_classification(self):
        tree = sample_tree()
        schema = infer_schema(tree)
        reparsed_dtd = parse_dtd(export_dtd(schema, root_tag="retailer"))
        # classification from the exported DTD matches the data-driven one
        schema_with_dtd = infer_schema(tree, dtd=reparsed_dtd)
        assert classify_schema(schema_with_dtd) == classify_schema(schema)

    def test_doctype_document_reparses(self):
        tree = sample_tree()
        schema = infer_schema(tree)
        doctype = export_doctype(schema, "retailer")
        body = to_xml_string(tree, include_declaration=False)
        result = parse_xml(doctype + body)
        assert result.doctype_name == "retailer"
        assert result.dtd_text and "store*" in result.dtd_text

    def test_root_tag_listed_first(self):
        schema = infer_schema(sample_tree())
        first_line = export_dtd(schema, root_tag="retailer").splitlines()[0]
        assert first_line.startswith("<!ELEMENT retailer")
