"""Tests for schema inference and *-node detection from data."""

from __future__ import annotations

import pytest

from repro.errors import SchemaError
from repro.xmltree.builder import tree_from_dict
from repro.xmltree.dtd import parse_dtd
from repro.xmltree.schema import infer_schema, infer_schema_from_trees


@pytest.fixture()
def retailer_tree():
    return tree_from_dict(
        "retailer",
        {
            "name": "Brook Brothers",
            "store": [
                {"city": "Houston", "merchandises": {"clothes": [{"category": "suit"}, {"category": "outwear"}]}},
                {"city": "Austin", "merchandises": {"clothes": [{"category": "skirt"}]}},
            ],
        },
    )


class TestStarNodeDetection:
    def test_repeated_child_is_star(self, retailer_tree):
        schema = infer_schema(retailer_tree)
        assert schema.is_star_node(("retailer", "store"))
        assert schema.is_star_node(("retailer", "store", "merchandises", "clothes"))

    def test_single_child_is_not_star(self, retailer_tree):
        schema = infer_schema(retailer_tree)
        assert not schema.is_star_node(("retailer", "name"))
        assert not schema.is_star_node(("retailer", "store", "city"))
        assert not schema.is_star_node(("retailer", "store", "merchandises"))

    def test_root_is_never_star(self, retailer_tree):
        schema = infer_schema(retailer_tree)
        assert not schema.is_star_node(("retailer",))

    def test_unknown_path_raises(self, retailer_tree):
        schema = infer_schema(retailer_tree)
        with pytest.raises(SchemaError):
            schema.is_star_node(("retailer", "warehouse"))
        with pytest.raises(SchemaError):
            schema.node_for(("nope",))

    def test_star_node_paths_sorted_by_depth(self, retailer_tree):
        schema = infer_schema(retailer_tree)
        paths = schema.star_node_paths()
        assert paths[0] == ("retailer", "store")
        assert ("retailer", "store", "merchandises", "clothes") in paths

    def test_tags_of_star_nodes(self, retailer_tree):
        schema = infer_schema(retailer_tree)
        assert schema.tags_of_star_nodes() == {"store", "clothes"}


class TestDTDOverride:
    def test_dtd_declares_star_even_if_data_shows_one(self):
        # only one store in the data, but the DTD says store*
        tree = tree_from_dict("retailer", {"store": [{"city": "Houston"}]})
        dtd = parse_dtd("<!ELEMENT retailer (store*)>")
        schema = infer_schema(tree, dtd=dtd)
        assert schema.is_star_node(("retailer", "store"))

    def test_dtd_declares_single_even_if_data_repeats(self):
        tree = tree_from_dict("retailer", {"store": [{"city": "A"}, {"city": "B"}]})
        dtd = parse_dtd("<!ELEMENT retailer (name, store)>")
        schema = infer_schema(tree, dtd=dtd)
        assert not schema.is_star_node(("retailer", "store"))

    def test_dtd_silent_falls_back_to_data(self):
        tree = tree_from_dict("retailer", {"store": [{"city": "A"}, {"city": "B"}]})
        dtd = parse_dtd("<!ELEMENT other (x)>")
        schema = infer_schema(tree, dtd=dtd)
        assert schema.is_star_node(("retailer", "store"))


class TestSchemaNodeStatistics:
    def test_instance_counts(self, retailer_tree):
        schema = infer_schema(retailer_tree)
        assert schema.node_for(("retailer", "store")).instance_count == 2
        assert schema.node_for(("retailer", "store", "merchandises", "clothes")).instance_count == 3

    def test_value_counts(self, retailer_tree):
        schema = infer_schema(retailer_tree)
        node = schema.node_for(("retailer", "store", "merchandises", "clothes", "category"))
        assert node.value_counts == {"suit": 1, "outwear": 1, "skirt": 1}
        assert node.distinct_values == 3

    def test_leaf_with_text_flags(self, retailer_tree):
        schema = infer_schema(retailer_tree)
        assert schema.node_for(("retailer", "name")).always_leaf_with_text
        assert not schema.node_for(("retailer", "store")).always_leaf_with_text

    def test_child_paths(self, retailer_tree):
        schema = infer_schema(retailer_tree)
        children = schema.child_paths_of(("retailer", "store"))
        tags = {path[-1] for path in children}
        assert tags == {"city", "merchandises"}

    def test_paths_with_tag(self, retailer_tree):
        schema = infer_schema(retailer_tree)
        assert schema.paths_with_tag("city") == [("retailer", "store", "city")]

    def test_total_instances_and_len(self, retailer_tree):
        schema = infer_schema(retailer_tree)
        assert schema.total_instances() == retailer_tree.size_nodes
        assert len(schema) == len(schema.nodes)


class TestMultiTreeInference:
    def test_corpus_inference_merges_counts(self):
        first = tree_from_dict("db", {"item": [{"name": "a"}]})
        second = tree_from_dict("db", {"item": [{"name": "b"}, {"name": "c"}]})
        schema = infer_schema_from_trees([first, second])
        assert schema.is_star_node(("db", "item"))
        assert schema.node_for(("db", "item")).instance_count == 3
