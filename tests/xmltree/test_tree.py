"""Tests for the XMLTree container."""

from __future__ import annotations

import pytest

from repro.errors import ExtractError
from repro.xmltree.builder import tree_from_dict
from repro.xmltree.dewey import Dewey
from repro.xmltree.node import XMLNode
from repro.xmltree.tree import XMLTree


@pytest.fixture()
def sample_tree():
    return tree_from_dict(
        "retailer",
        {
            "name": "Brook Brothers",
            "store": [
                {"city": "Houston", "name": "Galleria"},
                {"city": "Austin", "name": "West Village"},
            ],
        },
        name="sample",
    )


class TestConstruction:
    def test_rejects_attached_root(self):
        parent = XMLNode("a")
        child = XMLNode("b")
        parent.append_child(child)
        with pytest.raises(ExtractError):
            XMLTree(child)

    def test_registry_covers_all_nodes(self, sample_tree):
        assert sample_tree.size_nodes == 8
        for node in sample_tree.iter_nodes():
            assert sample_tree.node(node.dewey) is node

    def test_size_edges(self, sample_tree):
        assert sample_tree.size_edges == sample_tree.size_nodes - 1

    def test_max_depth(self, sample_tree):
        assert sample_tree.max_depth == 2

    def test_refresh_after_manual_edit(self, sample_tree):
        extra = XMLNode("product", "apparel")
        sample_tree.root.append_child(extra)
        sample_tree.refresh()
        assert sample_tree.node(extra.dewey) is extra
        assert sample_tree.size_nodes == 9


class TestLookup:
    def test_node_by_label(self, sample_tree):
        root = sample_tree.node(Dewey.root())
        assert root.tag == "retailer"

    def test_unknown_label_raises(self, sample_tree):
        with pytest.raises(ExtractError):
            sample_tree.node(Dewey((9, 9)))

    def test_has_node_and_contains(self, sample_tree):
        assert sample_tree.has_node(Dewey((0,)))
        assert Dewey((0,)) in sample_tree
        assert Dewey((42,)) not in sample_tree

    def test_nodes_bulk(self, sample_tree):
        labels = [Dewey((0,)), Dewey((1,))]
        nodes = sample_tree.nodes(labels)
        assert [node.dewey for node in nodes] == labels

    def test_find_by_tag(self, sample_tree):
        stores = sample_tree.find_by_tag("store")
        assert len(stores) == 2
        assert all(node.tag == "store" for node in stores)

    def test_find_by_tag_path(self, sample_tree):
        cities = sample_tree.find_by_tag_path(("retailer", "store", "city"))
        assert sorted(node.text for node in cities) == ["Austin", "Houston"]

    def test_iter_leaves(self, sample_tree):
        leaves = list(sample_tree.iter_leaves())
        assert all(node.is_leaf for node in leaves)
        assert len(leaves) == 5


class TestSubtreeExtraction:
    def test_extract_subtree_copies(self, sample_tree):
        store_label = sample_tree.find_by_tag("store")[0].dewey
        subtree = sample_tree.extract_subtree(store_label)
        assert subtree.root.tag == "store"
        assert subtree.size_nodes == 3
        # the copy is independent of the original
        subtree.root.children[0].text = "CHANGED"
        assert sample_tree.node(store_label).children[0].text != "CHANGED"

    def test_extract_projection_minimal_connected(self, sample_tree):
        cities = sample_tree.find_by_tag("city")
        projection, mapping = sample_tree.extract_projection([cities[0].dewey, cities[1].dewey])
        # root of the projection is the LCA (the retailer)
        assert projection.root.tag == "retailer"
        tags = sorted(node.tag for node in projection.iter_nodes())
        assert tags == ["city", "city", "retailer", "store", "store"]
        # mapping points back to original labels
        assert set(mapping.values()) <= {node.dewey for node in sample_tree.iter_nodes()}

    def test_extract_projection_includes_full_subtree_of_requested(self, sample_tree):
        store_label = sample_tree.find_by_tag("store")[0].dewey
        projection, _ = sample_tree.extract_projection([store_label])
        assert projection.size_nodes == 3  # store + its two attribute children

    def test_extract_projection_empty_raises(self, sample_tree):
        with pytest.raises(ExtractError):
            sample_tree.extract_projection([])

    def test_extract_projection_foreign_label_raises(self, sample_tree):
        with pytest.raises(ExtractError):
            sample_tree.extract_projection([Dewey((7, 7, 7))])

    def test_copy_equals_structure(self, sample_tree):
        duplicate = sample_tree.copy()
        assert duplicate.size_nodes == sample_tree.size_nodes
        assert [n.tag for n in duplicate.iter_nodes()] == [n.tag for n in sample_tree.iter_nodes()]

    def test_repr_and_len(self, sample_tree):
        assert "sample" in repr(sample_tree)
        assert len(sample_tree) == sample_tree.size_nodes
