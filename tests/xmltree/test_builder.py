"""Tests for TreeBuilder and dict-based construction."""

from __future__ import annotations

import pytest

from repro.errors import ExtractError
from repro.xmltree.builder import (
    TreeBuilder,
    sequence_of_values,
    subtree_from_dict,
    tree_from_dict,
)


class TestTreeBuilder:
    def test_basic_build(self):
        builder = TreeBuilder("retailer")
        builder.add_value("name", "Brook Brothers")
        with builder.element("store"):
            builder.add_value("city", "Houston")
        tree = builder.build()
        assert [node.tag for node in tree.root.children] == ["name", "store"]
        assert tree.node(tree.find_by_tag("city")[0].dewey).text == "Houston"

    def test_open_close_manual(self):
        builder = TreeBuilder("a")
        builder.open("b")
        builder.add_value("c", 1)
        builder.close()
        tree = builder.build()
        assert tree.size_nodes == 3

    def test_close_root_raises(self):
        with pytest.raises(ExtractError):
            TreeBuilder("a").close()

    def test_unclosed_elements_raise_at_build(self):
        builder = TreeBuilder("a")
        builder.open("b")
        with pytest.raises(ExtractError):
            builder.build()

    def test_builder_not_reusable(self):
        builder = TreeBuilder("a")
        builder.build()
        with pytest.raises(ExtractError):
            builder.add_value("x", 1)
        with pytest.raises(ExtractError):
            builder.build()

    def test_add_empty(self):
        builder = TreeBuilder("a")
        node = builder.add_empty("flag")
        tree = builder.build()
        assert node.text is None
        assert tree.size_nodes == 2

    def test_add_value_stringifies(self):
        builder = TreeBuilder("a")
        builder.add_value("year", 2008)
        assert builder.current.children[0].text == "2008"
        builder.build()

    def test_add_subtree(self):
        builder = TreeBuilder("a")
        fragment = subtree_from_dict("store", {"city": "Houston"})
        builder.add_subtree(fragment)
        tree = builder.build()
        assert tree.find_by_tag("city")[0].text == "Houston"

    def test_current_tracks_nesting(self):
        builder = TreeBuilder("a")
        with builder.element("b"):
            assert builder.current.tag == "b"
        assert builder.current.tag == "a"

    def test_tree_name(self):
        tree = TreeBuilder("a", name="custom").build()
        assert tree.name == "custom"


class TestTreeFromDict:
    def test_scalar_values_become_text(self):
        tree = tree_from_dict("a", {"b": 1, "c": "x"})
        assert tree.find_by_tag("b")[0].text == "1"
        assert tree.find_by_tag("c")[0].text == "x"

    def test_lists_repeat_elements(self):
        tree = tree_from_dict("a", {"item": [1, 2, 3]})
        assert len(tree.find_by_tag("item")) == 3

    def test_nested_mappings(self):
        tree = tree_from_dict("a", {"b": {"c": {"d": "deep"}}})
        assert tree.find_by_tag("d")[0].text == "deep"
        assert tree.max_depth == 3

    def test_none_means_empty_element(self):
        tree = tree_from_dict("a", {"b": None})
        assert tree.find_by_tag("b")[0].text is None

    def test_top_level_list_rejected(self):
        with pytest.raises(ExtractError):
            tree_from_dict("a", [1, 2])

    def test_key_order_preserved(self):
        tree = tree_from_dict("a", {"x": 1, "y": 2, "z": 3})
        assert [node.tag for node in tree.root.children] == ["x", "y", "z"]


class TestHelpers:
    def test_sequence_of_values(self):
        node = sequence_of_values("list", "item", [1, 2])
        assert [child.text for child in node.children] == ["1", "2"]

    def test_subtree_from_dict_detached(self):
        node = subtree_from_dict("store", {"city": "Austin"})
        assert node.parent is None
        assert node.children[0].text == "Austin"
