"""Tests for the XML parser."""

from __future__ import annotations

import pytest

from repro.errors import XMLParseError
from repro.xmltree.parser import decode_entities, parse_xml, parse_xml_file


class TestBasicParsing:
    def test_single_element(self):
        tree = parse_xml("<a/>").tree
        assert tree.root.tag == "a"
        assert tree.size_nodes == 1

    def test_text_content(self):
        tree = parse_xml("<a>hello</a>").tree
        assert tree.root.text == "hello"

    def test_nested_elements(self):
        tree = parse_xml("<a><b><c>x</c></b></a>").tree
        assert tree.max_depth == 2
        assert tree.find_by_tag("c")[0].text == "x"

    def test_sibling_order_preserved(self):
        tree = parse_xml("<a><x>1</x><y>2</y><x>3</x></a>").tree
        assert [node.tag for node in tree.root.children] == ["x", "y", "x"]

    def test_whitespace_between_elements_ignored(self):
        tree = parse_xml("<a>\n  <b>1</b>\n  <c>2</c>\n</a>").tree
        assert tree.root.text is None
        assert len(tree.root.children) == 2

    def test_mixed_content_text_joined(self):
        tree = parse_xml("<a>hello <b>x</b> world</a>").tree
        assert tree.root.text == "hello world"

    def test_xml_declaration_skipped(self):
        tree = parse_xml('<?xml version="1.0" encoding="UTF-8"?><a>1</a>').tree
        assert tree.root.text == "1"

    def test_comments_skipped(self):
        tree = parse_xml("<!-- hi --><a><!-- inner -->x</a><!-- bye -->").tree
        assert tree.root.text == "x"

    def test_processing_instruction_skipped(self):
        tree = parse_xml("<?pi data?><a><?x y?>v</a>").tree
        assert tree.root.text == "v"

    def test_cdata_becomes_text(self):
        tree = parse_xml("<a><![CDATA[1 < 2 & 3]]></a>").tree
        assert tree.root.text == "1 < 2 & 3"

    def test_self_closing_with_sibling(self):
        tree = parse_xml("<a><b/><c>x</c></a>").tree
        assert [node.tag for node in tree.root.children] == ["b", "c"]


class TestAttributes:
    def test_attributes_become_children_by_default(self):
        tree = parse_xml('<store id="3" open="yes"/>').tree
        assert {child.tag: child.text for child in tree.root.children} == {"id": "3", "open": "yes"}
        assert tree.root.raw_attributes == {"id": "3", "open": "yes"}

    def test_attributes_kept_raw_when_disabled(self):
        tree = parse_xml('<store id="3"/>', attributes_as_children=False).tree
        assert tree.root.children == []
        assert tree.root.raw_attributes == {"id": "3"}

    def test_single_quoted_attributes(self):
        tree = parse_xml("<a x='1'/>").tree
        assert tree.root.raw_attributes["x"] == "1"

    def test_attribute_entity_decoding(self):
        tree = parse_xml('<a title="Tom &amp; Jerry"/>').tree
        assert tree.root.raw_attributes["title"] == "Tom & Jerry"

    def test_gt_inside_attribute_value(self):
        tree = parse_xml('<a expr="x > 1"><b/></a>').tree
        assert tree.root.raw_attributes["expr"] == "x > 1"
        assert len(tree.root.find_children("b")) == 1


class TestEntities:
    def test_predefined_entities(self):
        tree = parse_xml("<a>&lt;tag&gt; &amp; &quot;text&quot; &apos;x&apos;</a>").tree
        assert tree.root.text == "<tag> & \"text\" 'x'"

    def test_numeric_character_references(self):
        tree = parse_xml("<a>&#65;&#x42;</a>").tree
        assert tree.root.text == "AB"

    def test_unknown_entity_kept_verbatim(self):
        assert decode_entities("&unknown;") == "&unknown;"


class TestDoctype:
    def test_doctype_name_captured(self):
        result = parse_xml("<!DOCTYPE stores><stores/>")
        assert result.doctype_name == "stores"
        assert result.dtd_text is None

    def test_internal_subset_captured(self):
        xml = """<!DOCTYPE stores [
          <!ELEMENT stores (store*)>
          <!ELEMENT store (name, city)>
        ]>
        <stores/>"""
        result = parse_xml(xml)
        assert result.doctype_name == "stores"
        assert "<!ELEMENT stores (store*)>" in result.dtd_text

    def test_doctype_with_system_identifier(self):
        result = parse_xml('<!DOCTYPE a SYSTEM "a.dtd"><a/>')
        assert result.doctype_name == "a"


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "   ",
            "<a>",                      # unterminated element
            "<a></b>",                  # mismatched close tag
            "<a><b></a></b>",           # interleaved tags
            "plain text",               # no root element
            "<a/><b/>",                 # two roots
            "<a>text",                  # missing close
            "<!-- only a comment -->",  # no root element
            "<a><!-- unterminated </a>",
            "<a><![CDATA[x</a>",
            "<",
        ],
    )
    def test_malformed_inputs_raise(self, text):
        with pytest.raises(XMLParseError):
            parse_xml(text)

    def test_non_string_input_raises(self):
        with pytest.raises(XMLParseError):
            parse_xml(b"<a/>")  # type: ignore[arg-type]

    def test_error_reports_location(self):
        with pytest.raises(XMLParseError) as excinfo:
            parse_xml("<a>\n<b></c>\n</a>")
        assert excinfo.value.line == 2


class TestFileParsing:
    def test_parse_xml_file_round_trip(self, tmp_path):
        path = tmp_path / "doc.xml"
        path.write_text("<a><b>1</b></a>", encoding="utf-8")
        result = parse_xml_file(path)
        assert result.tree.name.endswith("doc.xml")
        assert result.tree.find_by_tag("b")[0].text == "1"
