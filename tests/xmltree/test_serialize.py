"""Tests for serialisation (XML text, plain dicts, outlines)."""

from __future__ import annotations

from repro.xmltree.builder import tree_from_dict
from repro.xmltree.parser import parse_xml
from repro.xmltree.serialize import (
    escape_text,
    from_plain_dict,
    to_outline,
    to_plain_dict,
    to_xml_string,
)


class TestToXmlString:
    def test_leaf_on_one_line(self):
        tree = tree_from_dict("a", {"b": "1"})
        text = to_xml_string(tree, include_declaration=False)
        assert "<b>1</b>" in text

    def test_declaration_included_by_default(self):
        tree = tree_from_dict("a", {"b": "1"})
        assert to_xml_string(tree).startswith("<?xml")

    def test_empty_leaf_self_closes(self):
        tree = tree_from_dict("a", {"b": None})
        assert "<b/>" in to_xml_string(tree)

    def test_escaping(self):
        tree = tree_from_dict("a", {"b": "1 < 2 & 3"})
        text = to_xml_string(tree)
        assert "&lt;" in text and "&amp;" in text

    def test_round_trip_through_parser(self):
        original = tree_from_dict(
            "retailer",
            {"name": "Brook & Brothers", "store": [{"city": "Houston"}, {"city": "Austin"}]},
        )
        reparsed = parse_xml(to_xml_string(original)).tree
        assert [n.tag for n in reparsed.iter_nodes()] == [n.tag for n in original.iter_nodes()]
        assert [n.text for n in reparsed.iter_nodes()] == [n.text for n in original.iter_nodes()]

    def test_serialize_detached_node(self):
        tree = tree_from_dict("a", {"b": "1"})
        text = to_xml_string(tree.root.children[0], include_declaration=False)
        assert text.strip() == "<b>1</b>"


class TestEscapeText:
    def test_all_special_characters(self):
        assert escape_text('<a> & "q"') == "&lt;a&gt; &amp; &quot;q&quot;"

    def test_plain_text_untouched(self):
        assert escape_text("Houston") == "Houston"


class TestPlainDict:
    def test_round_trip(self):
        tree = tree_from_dict("a", {"b": "1", "c": [{"d": "2"}, {"d": "3"}]})
        data = to_plain_dict(tree)
        rebuilt = from_plain_dict(data)
        assert [n.tag for n in rebuilt.iter_nodes()] == [n.tag for n in tree.iter_nodes()]
        assert [n.text for n in rebuilt.iter_nodes()] == [n.text for n in tree.iter_nodes()]

    def test_structure_of_dict(self):
        tree = tree_from_dict("a", {"b": "1"})
        data = to_plain_dict(tree)
        assert data["tag"] == "a"
        assert data["children"][0] == {"tag": "b", "text": "1", "children": []}


class TestOutline:
    def test_outline_shows_values(self):
        tree = tree_from_dict("a", {"b": "1"})
        assert to_outline(tree) == "a\n  b: 1"

    def test_outline_depth_limit(self):
        tree = tree_from_dict("a", {"b": {"c": "x"}})
        assert "c" not in to_outline(tree, max_depth=1)
