"""Golden tests against the numbers printed in the paper (Figures 1-3, §2.3).

These are the reproduction's anchor: if any of them fails, the system no
longer computes what the paper describes.
"""

from __future__ import annotations

import pytest

from repro.datasets.paper_example import FIGURE1_EXPECTED_ILIST, FIGURE1_EXPECTED_SCORES
from repro.search.engine import SearchEngine
from repro.snippet.dominant import DominantFeatureIdentifier
from repro.snippet.generator import SnippetGenerator


class TestFigure1Golden:
    def test_query_returns_brook_brothers_and_lone_star_only(self, figure1_idx, figure1_query_text):
        results = SearchEngine(figure1_idx).search(figure1_query_text)
        names = {result.root_node.find_child("name").text for result in results}
        assert names == {"Brook Brothers", "Lone Star Apparel"}

    def test_distractor_retailer_never_returned(self, figure1_idx, figure1_query_text):
        results = SearchEngine(figure1_idx).search(figure1_query_text)
        names = {result.root_node.find_child("name").text for result in results}
        assert "Pacific Electronics" not in names

    def test_result_is_the_whole_retailer_subtree(self, figure1_result):
        assert figure1_result.root_node.tag == "retailer"
        assert figure1_result.size_nodes == figure1_result.root_node.subtree_size_nodes()


class TestFigure3Golden:
    def test_ilist_matches_paper_exactly(self, figure1_idx, figure1_result):
        ilist = SnippetGenerator(figure1_idx.analyzer).build_ilist(figure1_result)
        assert tuple(text.lower() for text in ilist.texts()) == FIGURE1_EXPECTED_ILIST

    @pytest.mark.parametrize("value,expected", sorted(FIGURE1_EXPECTED_SCORES.items()))
    def test_dominance_scores_match_paper(self, figure1_idx, figure1_result, value, expected):
        table = DominantFeatureIdentifier(figure1_idx.analyzer).dominance_table(figure1_result)
        # the paper rounds to one decimal; 0.08 covers its rounding/truncation
        assert table[value] == pytest.approx(expected, abs=0.08)

    def test_houston_example_from_section_2_3(self, figure1_idx, figure1_result):
        # "DS(Houston) = 6/(10/5) = 3.0"
        table = DominantFeatureIdentifier(figure1_idx.analyzer).dominance_table(figure1_result)
        assert table["houston"] == pytest.approx(3.0)


class TestFigure2Golden:
    def test_snippet_at_bound_14_contains_figure2_content(self, figure1_idx, figure1_result):
        generated = SnippetGenerator(figure1_idx.analyzer).generate(figure1_result, size_bound=14)
        visible = set()
        for node in generated.snippet.selected_nodes():
            visible.add(node.tag)
            if node.has_text_value:
                visible.add(f"{node.tag}={(node.text or '').strip().lower()}")
        for expected in (
            "retailer",
            "name=brook brothers",
            "product=apparel",
            "store",
            "state=texas",
            "city=houston",
            "clothes",
            "category=outwear",
            "fitting=man",
        ):
            assert expected in visible, f"Figure 2 content {expected!r} missing from snippet"

    def test_snippet_respects_figure2_bound(self, figure1_idx, figure1_result):
        generated = SnippetGenerator(figure1_idx.analyzer).generate(figure1_result, size_bound=14)
        assert generated.snippet.size_edges <= 14

    def test_houston_store_chosen_over_other_cities(self, figure1_idx, figure1_result):
        # the snippet's store must be one located in Houston (the dominant
        # city), mirroring Figure 2
        generated = SnippetGenerator(figure1_idx.analyzer).generate(figure1_result, size_bound=14)
        cities = [
            (node.text or "").strip()
            for node in generated.snippet.selected_nodes()
            if node.tag == "city"
        ]
        assert cities == ["Houston"]


class TestFigure5Golden:
    def test_demo_walkthrough(self, figure5_idx):
        results = SearchEngine(figure5_idx).search("store texas")
        generator = SnippetGenerator(figure5_idx.analyzer)
        by_name = {}
        for result in results:
            generated = generator.generate(result, size_bound=6)
            name = result.root_node.find_child("name").text
            values = {
                (node.tag, (node.text or "").lower())
                for node in generated.snippet.selected_nodes()
                if node.has_text_value
            }
            by_name[name] = values
            assert generated.snippet.size_edges <= 6
        assert ("category", "jeans") in by_name["Levis"]
        assert ("fitting", "man") in by_name["Levis"]
        assert ("category", "outwear") in by_name["ESprit"]
        assert ("fitting", "woman") in by_name["ESprit"]
