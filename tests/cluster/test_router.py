"""ClusterService is drop-in compatible with SnippetService.

The acceptance bar of the sharding tentpole: for any shard count, the
default (meta-free) wire responses of the cluster router are
byte-identical to a single-corpus :class:`~repro.api.SnippetService`
serving the same documents — searches, batches, updates and errors alike.
"""

from __future__ import annotations

import json

import pytest

from repro.api import (
    BatchRequest,
    SearchRequest,
    SnippetService,
    UpdateRequest,
)
from repro.cluster import (
    ClusterService,
    ExplicitPartitioner,
    HashPartitioner,
    ShardExecutor,
    ShardServer,
)
from repro.corpus import Corpus
from repro.errors import ClusterError
from repro.xmltree.diff import clone_tree
from repro.xmltree.serialize import to_xml_string

from tests.cluster.conftest import QUERIES, build_corpus

SHARD_COUNTS = (1, 2, 3, 4)


def cluster_with(shards: int) -> ClusterService:
    return ClusterService.from_corpus(build_corpus(), shards=shards)


def dumps(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True)


class TestSearchEquivalence:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_search_responses_byte_identical(self, single_service, shards):
        cluster = cluster_with(shards)
        for document in single_service.corpus.names():
            for query in QUERIES:
                request = SearchRequest(query=query, document=document, size_bound=6)
                assert dumps(cluster.handle_dict(request.to_dict())) == dumps(
                    single_service.handle_dict(request.to_dict())
                ), (shards, document, query)

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_unknown_document_error_byte_identical(self, single_service, shards):
        cluster = cluster_with(shards)
        request = SearchRequest(query="store texas", document="ghost")
        assert dumps(cluster.handle_dict(request.to_dict())) == dumps(
            single_service.handle_dict(request.to_dict())
        )

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_protocol_error_byte_identical(self, single_service, shards):
        cluster = cluster_with(shards)
        payload = {"kind": "search", "schema_version": 1, "query": "", "document": "stores"}
        assert dumps(cluster.handle_dict(payload)) == dumps(
            single_service.handle_dict(payload)
        )

    def test_handle_json_end_to_end(self, single_service):
        cluster = cluster_with(3)
        text = json.dumps(
            SearchRequest(query="store texas", document="stores", size_bound=6).to_dict()
        )
        assert cluster.handle_json(text) == single_service.handle_json(text)

    def test_run_many_matches_serial_singles(self, single_service):
        cluster = cluster_with(4)
        requests = [
            SearchRequest(query=query, document=document, size_bound=6)
            for query in QUERIES
            for document in single_service.corpus.names()
        ]
        ours = [dumps(r.to_dict()) for r in cluster.run_many(requests)]
        theirs = [dumps(single_service.run(r).to_dict()) for r in requests]
        assert ours == theirs


class TestBatchEquivalence:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_all_documents_batch_byte_identical(self, single_service, shards):
        cluster = cluster_with(shards)
        batch = BatchRequest(queries=QUERIES, size_bound=6)
        assert dumps(cluster.handle_dict(batch.to_dict())) == dumps(
            single_service.handle_dict(batch.to_dict())
        )

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_explicit_document_order_preserved(self, single_service, shards):
        cluster = cluster_with(shards)
        batch = BatchRequest(
            queries=("store texas", "movie drama"),
            documents=("movies", "stores", "retail", "stores"),  # duplicates included
            size_bound=6,
        )
        assert dumps(cluster.handle_dict(batch.to_dict())) == dumps(
            single_service.handle_dict(batch.to_dict())
        )

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_unknown_batch_document_error_identical(self, single_service, shards):
        cluster = cluster_with(shards)
        batch = BatchRequest(queries=("store texas",), documents=("stores", "ghost"))
        assert dumps(cluster.handle_dict(batch.to_dict())) == dumps(
            single_service.handle_dict(batch.to_dict())
        )

    def test_empty_document_list_batch_identical(self, single_service):
        cluster = cluster_with(2)
        batch = BatchRequest(queries=("store texas",), documents=())
        assert dumps(cluster.handle_dict(batch.to_dict())) == dumps(
            single_service.handle_dict(batch.to_dict())
        )


class TestUpdateEquivalence:
    def edited_xml(self, service_like, document: str, old: str, new: str) -> str:
        if isinstance(service_like, ClusterService):
            system = service_like._owning_shard(document).corpus.system(document)
        else:
            system = service_like.corpus.system(document)
        tree = clone_tree(system.index.tree)
        for node in tree.iter_nodes():
            if node.text == old:
                node.text = new
        return to_xml_string(tree)

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_update_then_search_byte_identical(self, single_service, shards):
        cluster = cluster_with(shards)
        xml = self.edited_xml(single_service, "stores", "Texas", "Nevada")
        update = UpdateRequest(document="stores", xml=xml)
        assert dumps(cluster.handle_dict(update.to_dict())) == dumps(
            single_service.handle_dict(update.to_dict())
        )
        for query in ("store texas", "store nevada"):
            request = SearchRequest(query=query, document="stores", size_bound=6)
            assert dumps(cluster.handle_dict(request.to_dict())) == dumps(
                single_service.handle_dict(request.to_dict())
            )

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_add_and_remove_byte_identical(self, single_service, shards):
        cluster = cluster_with(shards)
        add = UpdateRequest(document="fresh", xml="<root><name>alpha beta</name></root>")
        assert dumps(cluster.handle_dict(add.to_dict())) == dumps(
            single_service.handle_dict(add.to_dict())
        )
        probe = SearchRequest(query="alpha", document="fresh")
        assert dumps(cluster.handle_dict(probe.to_dict())) == dumps(
            single_service.handle_dict(probe.to_dict())
        )
        remove = UpdateRequest(document="fresh", action="remove")
        assert dumps(cluster.handle_dict(remove.to_dict())) == dumps(
            single_service.handle_dict(remove.to_dict())
        )
        assert "fresh" not in cluster

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_remove_unknown_document_error_identical(self, single_service, shards):
        cluster = cluster_with(shards)
        remove = UpdateRequest(document="ghost", action="remove")
        assert dumps(cluster.handle_dict(remove.to_dict())) == dumps(
            single_service.handle_dict(remove.to_dict())
        )

    def test_new_document_lands_on_partitioner_shard(self):
        cluster = cluster_with(4)
        expected = cluster.partitioner.shard_of("fresh")
        cluster.run_update(
            UpdateRequest(document="fresh", xml="<root><a>hi</a></root>")
        )
        assert "fresh" in cluster.shards[expected]
        assert cluster.last_delta.kind == "add"
        assert cluster.last_delta.shard == expected

    def test_run_update_with_delta_returns_this_calls_delta(self):
        cluster = cluster_with(2)
        response, delta = cluster.run_update_with_delta(
            UpdateRequest(document="fresh", xml="<root><a>hi</a></root>")
        )
        assert response.action == "added"
        assert delta.kind == "add"
        assert delta.document == "fresh"
        assert cluster.last_delta is delta  # the convenience mirror

    def test_update_stays_on_owning_shard_even_if_partitioner_disagrees(self):
        # An explicit partitioner that would place 'stores' on shard 1 must
        # not strand the registered copy on its current shard.
        corpus = build_corpus()
        partitioner = ExplicitPartitioner({}, 2, default=1)
        cluster = ClusterService.from_corpus(corpus, partitioner=partitioner)
        owner = cluster._owning_shard("stores").shard_id
        xml = TestUpdateEquivalence().edited_xml(cluster, "stores", "Texas", "Utah")
        response = cluster.run_update(UpdateRequest(document="stores", xml=xml))
        assert response.action == "updated"
        assert cluster._owning_shard("stores").shard_id == owner


class TestMetaProvenance:
    def test_shard_id_in_meta_block_only(self):
        cluster = cluster_with(3)
        plain = cluster.run(SearchRequest(query="store texas", document="stores"))
        assert plain.shard == cluster._owning_shard("stores").shard_id
        assert "meta" not in plain.to_dict()
        with_meta = plain.to_dict(include_meta=True)
        assert with_meta["meta"]["shard"] == plain.shard

    def test_single_service_meta_has_no_shard_key(self, single_service):
        response = single_service.run(
            SearchRequest(query="store texas", document="stores", include_meta=True)
        )
        assert response.shard is None
        assert "shard" not in response.to_dict(include_meta=True)["meta"]

    def test_batch_meta_provenance_spans_shards(self):
        cluster = cluster_with(4)
        batch = BatchRequest(queries=("store texas",), include_meta=True)
        response = cluster.run_batch(batch)
        shards_seen = {item.shard for item in response.entries[0].responses}
        expected = {
            cluster._owning_shard(name).shard_id for name in cluster.names()
        }
        assert shards_seen == expected

    def test_update_meta_provenance(self):
        cluster = cluster_with(3)
        response = cluster.run_update(
            UpdateRequest(document="fresh", xml="<root><a>hi</a></root>", include_meta=True)
        )
        assert response.shard == cluster.partitioner.shard_of("fresh")
        assert response.to_dict(include_meta=True)["meta"]["shard"] == response.shard


class TestClusterConstruction:
    def test_requires_at_least_one_shard(self):
        with pytest.raises(ClusterError, match="at least one shard"):
            ClusterService([])

    def test_shard_ids_must_be_dense(self):
        with pytest.raises(ClusterError, match="0..N-1"):
            ClusterService([ShardServer(0), ShardServer(2)])

    def test_partitioner_shard_count_must_match(self):
        with pytest.raises(ClusterError, match="partitioner covers"):
            ClusterService([ShardServer(0)], partitioner=HashPartitioner(2))

    def test_from_corpus_needs_shards_or_partitioner(self):
        with pytest.raises(ClusterError, match="shard count or a partitioner"):
            ClusterService.from_corpus(Corpus())

    def test_from_corpus_rejects_disagreeing_counts(self):
        with pytest.raises(ClusterError, match="disagrees"):
            ClusterService.from_corpus(
                Corpus(), shards=3, partitioner=HashPartitioner(2)
            )

    def test_from_corpus_places_by_partitioner(self):
        cluster = cluster_with(4)
        for shard in cluster.shards:
            for name in shard.names():
                assert cluster.partitioner.shard_of(name) == shard.shard_id

    def test_registry_views_and_repr(self):
        cluster = cluster_with(2)
        assert len(cluster) == 4
        assert "stores" in cluster
        assert "ghost" not in cluster
        assert cluster.names() == sorted(cluster.names())
        assert "shards=2" in repr(cluster)
        summary = cluster.shard_summary()
        assert sum(row["documents"] for row in summary) == 4

    def test_cache_stats_merged_across_shards(self):
        cluster = cluster_with(3)
        cluster.run(SearchRequest(query="store texas", document="stores"))
        stats = cluster.cache_stats()
        assert set(stats) == set(cluster.names())
        assert stats["stores"]["query"]["misses"] >= 1

    def test_close_then_fan_out_raises(self):
        cluster = cluster_with(2)
        cluster.close()
        with pytest.raises(RuntimeError, match="closed"):
            cluster.run_batch(BatchRequest(queries=("store texas",)))

    def test_context_manager(self):
        with cluster_with(2) as cluster:
            response = cluster.run(SearchRequest(query="store texas", document="stores"))
            assert response.total_results >= 1
        assert cluster.executor.closed

    def test_context_manager_reentry_reopens_the_whole_service(self):
        cluster = cluster_with(2)
        batch = BatchRequest(queries=("store texas",))
        with cluster:
            first = cluster.run_batch(batch)
        # Re-entering the service re-opens its executor and every shard
        # service — the lifecycle contract one level up from executors.
        with cluster:
            again = cluster.run_batch(batch)
        assert json.dumps(again.to_dict(), sort_keys=True) == json.dumps(
            first.to_dict(), sort_keys=True
        )

    def test_batch_snapshot_survives_concurrent_remove(self):
        # Drop-in parity with SnippetService.entries_snapshot: a document
        # removed after the batch captured its entries is still served
        # from the captured state instead of failing the batch part-way.
        cluster = cluster_with(3)
        captured = cluster._capture_entry("movies")
        shard, entry = captured
        cluster.run_update(UpdateRequest(document="movies", action="remove"))
        sub = BatchRequest(queries=("movie drama",), documents=("movies",))
        response = shard.service.run_batch(sub, validate=False, entries=[entry])
        assert response.entries[0].responses[0].total_results >= 1

    def test_default_executor_is_shard_executor(self):
        cluster = cluster_with(3)
        assert isinstance(cluster.executor, ShardExecutor)
        assert cluster.executor.max_workers == 3
