"""Tests for ShardServer: update deltas and replica replication.

The replication contract: a replica that applies a primary's
:class:`ShardDelta` stream in order serves responses **byte-identical** to
the primary — text edits travel as node-level deltas through the same
incremental machinery, never as whole documents.
"""

from __future__ import annotations

import json

import pytest

from repro.api import SearchRequest, UpdateRequest
from repro.cluster import ShardDelta, ShardServer
from repro.corpus import Corpus
from repro.errors import ClusterError
from repro.xmltree.diff import clone_tree
from repro.xmltree.serialize import to_xml_string


def shard_pair() -> tuple[ShardServer, ShardServer]:
    """A primary and a replica bootstrapped from the same documents."""

    def build() -> ShardServer:
        corpus = Corpus()
        corpus.add_builtin("figure5-stores", name="stores")
        corpus.add_builtin("retail")
        return ShardServer(0, corpus=corpus)

    return build(), build()


def wire(shard: ShardServer, query: str, document: str) -> str:
    response = shard.service.run(
        SearchRequest(query=query, document=document, size_bound=6)
    )
    return json.dumps(response.to_dict(), sort_keys=True)


def edited_stores_xml(shard: ShardServer, old: str, new: str) -> str:
    tree = clone_tree(shard.corpus.system("stores").index.tree)
    changed = 0
    for node in tree.iter_nodes():
        if node.text == old:
            node.text = new
            changed += 1
    assert changed > 0
    return to_xml_string(tree)


class TestApplyUpdate:
    def test_text_edit_produces_node_level_delta(self):
        primary, _ = shard_pair()
        xml = edited_stores_xml(primary, "Texas", "Nevada")
        response, delta = primary.apply_update(UpdateRequest(document="stores", xml=xml))
        assert response.incremental
        assert delta.kind == "update"
        assert delta.shard == 0
        assert delta.xml is None  # deltas, not documents
        assert len(delta.edits) == response.changed_nodes > 0

    def test_structural_edit_produces_replace_delta(self):
        primary, _ = shard_pair()
        tree = clone_tree(primary.corpus.system("stores").index.tree)
        tree.root.append_child(type(tree.root)("annex"))
        xml = to_xml_string(tree)
        response, delta = primary.apply_update(UpdateRequest(document="stores", xml=xml))
        assert not response.incremental
        assert delta.kind == "replace"
        assert delta.xml == xml

    def test_new_document_produces_add_delta(self):
        primary, _ = shard_pair()
        response, delta = primary.apply_update(
            UpdateRequest(document="fresh", xml="<root><a>hello</a></root>")
        )
        assert response.action == "added"
        assert delta.kind == "add"
        assert delta.document == "fresh"

    def test_remove_produces_tombstone(self):
        primary, _ = shard_pair()
        response, delta = primary.apply_update(
            UpdateRequest(document="retail", action="remove")
        )
        assert response.action == "removed"
        assert delta == ShardDelta(shard=0, document="retail", kind="remove")


class TestReplication:
    def test_replica_matches_primary_after_text_delta(self):
        primary, replica = shard_pair()
        xml = edited_stores_xml(primary, "Texas", "Nevada")
        _, delta = primary.apply_update(UpdateRequest(document="stores", xml=xml))
        replica.apply_delta(delta)
        for query in ("store texas", "store nevada", "store houston"):
            assert wire(primary, query, "stores") == wire(replica, query, "stores")

    def test_replica_matches_primary_after_mixed_stream(self):
        primary, replica = shard_pair()
        operations = [
            UpdateRequest(document="stores", xml=edited_stores_xml(primary, "Texas", "Utah")),
            UpdateRequest(document="extra", xml="<root><name>alpha beta</name></root>"),
            UpdateRequest(document="retail", action="remove"),
        ]
        deltas = [primary.apply_update(request)[1] for request in operations]
        for delta in deltas:
            replica.apply_delta(delta)
        assert primary.names() == replica.names()
        for document in primary.names():
            for query in ("store utah", "alpha", "name beta"):
                assert wire(primary, query, document) == wire(replica, query, document)

    def test_delta_for_unknown_document_rejected(self):
        _, replica = shard_pair()
        with pytest.raises(ClusterError, match="unknown document"):
            replica.apply_delta(ShardDelta(shard=0, document="ghost", kind="remove"))
        with pytest.raises(ClusterError, match="unknown document"):
            replica.apply_delta(
                ShardDelta(shard=0, document="ghost", kind="update", edits=(("0", "x"),))
            )

    def test_delta_for_missing_node_rejected(self):
        _, replica = shard_pair()
        with pytest.raises(ClusterError, match="missing node"):
            replica.apply_delta(
                ShardDelta(
                    shard=0, document="stores", kind="update",
                    edits=(("0.99.99", "nowhere"),),
                )
            )

    def test_unknown_delta_kind_rejected(self):
        _, replica = shard_pair()
        with pytest.raises(ClusterError, match="unknown replication delta kind"):
            replica.apply_delta(ShardDelta(shard=0, document="stores", kind="mystery"))


class TestShardServer:
    def test_bad_shard_id_rejected(self):
        with pytest.raises(ClusterError):
            ShardServer(-1)
        with pytest.raises(ClusterError):
            ShardServer(True)

    def test_registry_views(self):
        shard, _ = shard_pair()
        assert "stores" in shard
        assert "ghost" not in shard
        assert len(shard) == 2
        assert shard.names() == ["retail", "stores"]
        assert "documents=2" in repr(shard)
