"""Whole-cluster persistence: staged loads, atomic saves, no partial clusters."""

from __future__ import annotations

import json
import os

import pytest

from repro.api import SearchRequest, UpdateRequest
from repro.cluster import (
    CLUSTER_MANIFEST_FILE,
    ClusterService,
    ExplicitPartitioner,
    read_cluster_manifest,
)
from repro.errors import StorageError

from tests.cluster.conftest import QUERIES, build_corpus


def wire_all(service, names) -> list[str]:
    return [
        json.dumps(
            service.handle_dict(
                SearchRequest(query=query, document=name, size_bound=6).to_dict()
            ),
            sort_keys=True,
        )
        for name in names
        for query in QUERIES
    ]


class TestSaveLoadRoundTrip:
    @pytest.mark.parametrize("shards", (1, 3))
    def test_round_trip_byte_identical(self, tmp_path, shards):
        cluster = ClusterService.from_corpus(build_corpus(), shards=shards)
        names = cluster.names()
        before = wire_all(cluster, names)
        subdirs = cluster.save_dir(tmp_path / "cluster")
        assert subdirs == [f"shard-{i}" for i in range(shards)]
        loaded = ClusterService.load_dir(tmp_path / "cluster")
        assert loaded.names() == names
        assert loaded.manifest_version == 1
        assert wire_all(loaded, names) == before

    def test_save_writes_manifest_last(self, tmp_path):
        # The manifest is the commit point; every shard directory it names
        # must already be a loadable corpus when it appears.
        cluster = ClusterService.from_corpus(build_corpus(), shards=2)
        cluster.save_dir(tmp_path / "cluster")
        manifest = read_cluster_manifest(tmp_path / "cluster")
        for subdir in manifest.shard_dirs:
            assert (tmp_path / "cluster" / subdir / "corpus.manifest").exists()

    def test_resave_bumps_version(self, tmp_path):
        cluster = ClusterService.from_corpus(build_corpus(), shards=2)
        cluster.save_dir(tmp_path / "cluster")
        cluster.save_dir(tmp_path / "cluster")
        assert read_cluster_manifest(tmp_path / "cluster").version == 2
        # the parked previous manifest is cleaned up after the commit
        assert not (tmp_path / "cluster" / f"{CLUSTER_MANIFEST_FILE}.prev").exists()

    def test_resave_over_a_corrupt_manifest_refuses(self, tmp_path):
        # Guessing "version 1" over an unreadable manifest would silently
        # reset the monotonic update counter; the save must stop instead.
        cluster = ClusterService.from_corpus(build_corpus(), shards=2)
        path = tmp_path / "cluster"
        cluster.save_dir(path)
        manifest = path / CLUSTER_MANIFEST_FILE
        manifest.write_text(
            manifest.read_text(encoding="utf-8").replace("#end\n", ""), encoding="utf-8"
        )
        with pytest.raises(StorageError, match="truncated"):
            cluster.save_dir(path)
        # the damaged manifest is left in place for inspection
        assert manifest.exists()

    def test_failed_resave_parks_the_old_manifest(self, tmp_path, monkeypatch):
        cluster = ClusterService.from_corpus(build_corpus(), shards=2)
        path = tmp_path / "cluster"
        cluster.save_dir(path)

        def boom(_directory):
            raise StorageError("disk full")

        monkeypatch.setattr(cluster.shards[1].corpus, "save_dir", boom)
        with pytest.raises(StorageError, match="disk full"):
            cluster.save_dir(path)
        # the half-rewritten directory refuses to load (no stale manifest
        # describing mixed shard state) ...
        with pytest.raises(StorageError, match="does not contain a saved eXtract cluster"):
            ClusterService.load_dir(path)
        # ... but the previous manifest is parked, not destroyed
        parked = path / f"{CLUSTER_MANIFEST_FILE}.prev"
        assert parked.exists()
        parked.rename(path / CLUSTER_MANIFEST_FILE)
        assert ClusterService.load_dir(path).names() == cluster.names()

    def test_explicit_partitioner_survives_round_trip(self, tmp_path):
        partitioner = ExplicitPartitioner(
            {"stores": 1, "retail": 0, "movies": 1, "bibliography": 0}, 2, default=0
        )
        cluster = ClusterService.from_corpus(build_corpus(), partitioner=partitioner)
        cluster.save_dir(tmp_path / "cluster")
        loaded = ClusterService.load_dir(tmp_path / "cluster")
        assert isinstance(loaded.partitioner, ExplicitPartitioner)
        assert loaded.partitioner.assignments == partitioner.assignments
        assert loaded.partitioner.default == 0
        assert loaded._owning_shard("stores").shard_id == 1

    def test_journalled_updates_replay_on_load(self, tmp_path):
        cluster = ClusterService.from_corpus(build_corpus(), shards=2)
        cluster.save_dir(tmp_path / "cluster")
        loaded = ClusterService.load_dir(tmp_path / "cluster")
        loaded.run_update(
            UpdateRequest(document="fresh", xml="<root><name>alpha</name></root>")
        )
        # persist the delta the way cluster-update does: re-save the shard
        delta = loaded.last_delta
        shard_dir = tmp_path / "cluster" / f"shard-{delta.shard}"
        loaded.shards[delta.shard].corpus.save_dir(shard_dir)
        reloaded = ClusterService.load_dir(tmp_path / "cluster")
        assert "fresh" in reloaded
        probe = SearchRequest(query="alpha", document="fresh")
        assert json.dumps(
            reloaded.handle_dict(probe.to_dict()), sort_keys=True
        ) == json.dumps(loaded.handle_dict(probe.to_dict()), sort_keys=True)


class TestCorruptClusters:
    def save_cluster(self, tmp_path) -> str:
        cluster = ClusterService.from_corpus(build_corpus(), shards=3)
        path = tmp_path / "cluster"
        cluster.save_dir(path)
        return os.fspath(path)

    def test_missing_manifest_rejected(self, tmp_path):
        path = self.save_cluster(tmp_path)
        os.remove(os.path.join(path, CLUSTER_MANIFEST_FILE))
        with pytest.raises(StorageError, match="does not contain a saved eXtract cluster"):
            ClusterService.load_dir(path)

    def test_missing_shard_directory_rejected(self, tmp_path):
        import shutil

        path = self.save_cluster(tmp_path)
        shutil.rmtree(os.path.join(path, "shard-1"))
        with pytest.raises(StorageError):
            ClusterService.load_dir(path)

    def test_truncated_shard_snapshot_rejected(self, tmp_path):
        path = self.save_cluster(tmp_path)
        # Truncate one document snapshot inside one shard: the staged load
        # must refuse the whole cluster, not serve the intact shards.
        for shard in sorted(os.listdir(path)):
            shard_path = os.path.join(path, shard)
            if not os.path.isdir(shard_path):
                continue
            for doc in sorted(os.listdir(shard_path)):
                index_file = os.path.join(shard_path, doc, "inverted.idx")
                if os.path.exists(index_file):
                    with open(index_file, "r", encoding="utf-8") as handle:
                        lines = handle.readlines()
                    with open(index_file, "w", encoding="utf-8") as handle:
                        handle.writelines(lines[:-2])
                    with pytest.raises(StorageError):
                        ClusterService.load_dir(path)
                    return
        raise AssertionError("no shard snapshot found to corrupt")

    def test_corrupt_shard_journal_rejected(self, tmp_path):
        path = self.save_cluster(tmp_path)
        journal = os.path.join(path, "shard-0", "corpus.journal")
        with open(journal, "w", encoding="utf-8") as handle:
            handle.write("#extract-corpus-journal v1\nupdate ghost-dir 1\n")
        with pytest.raises(StorageError):
            ClusterService.load_dir(path)
