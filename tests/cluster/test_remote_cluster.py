"""Remote cluster: spawned shard processes serve byte-identical responses.

The acceptance property of the distributed layer: an N-shard × M-replica
:class:`~repro.cluster.remote.RemoteClusterService` — every shard a
separately-spawned ``serve --shard-of`` process reached over HTTP —
returns default wire responses byte-identical to a single-corpus
:class:`~repro.api.SnippetService` holding the same documents, for every
request shape including error bytes.  Spawning is expensive, so the
read-only identity tests share one module-scoped cluster; lifecycle tests
spawn their own.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.api.protocol import BatchRequest, SearchRequest, UpdateRequest, parse_response
from repro.api.service import SnippetService
from repro.cluster import (
    ClusterService,
    RemoteClusterService,
    ShardBackend,
    ShardDelta,
    read_cluster_manifest,
)
from repro.errors import ClusterError
from tests.cluster.conftest import CLUSTER_DATASETS, QUERIES, build_corpus


def wire(backend, payload) -> str:
    """The exact bytes a wire frontend would emit for ``payload``."""
    if hasattr(payload, "to_dict"):
        payload = payload.to_dict()
    return backend.handle_json(json.dumps(payload, sort_keys=True))


@pytest.fixture(scope="module")
def cluster_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("remote-cluster")
    service = ClusterService.from_corpus(build_corpus(), shards=2)
    service.save_dir(directory)
    service.close()
    return directory


@pytest.fixture(scope="module")
def remote(cluster_dir):
    service = RemoteClusterService.spawn(cluster_dir, replicas=2)
    yield service
    service.close()


@pytest.fixture(scope="module")
def single():
    service = SnippetService(build_corpus())
    yield service
    service.close()


class TestReadByteIdentity:
    def test_search_every_document_and_query(self, remote, single):
        for _dataset, name in CLUSTER_DATASETS:
            for query in QUERIES:
                request = SearchRequest(query=query, document=name)
                assert wire(remote, request) == wire(single, request)

    def test_search_repeats_rotate_replicas_identically(self, remote, single):
        # read_candidates rotates round-robin, so consecutive requests hit
        # different replicas — the bytes must not depend on which one.
        request = SearchRequest(query="store texas", document="stores")
        expected = wire(single, request)
        for _ in range(4):
            assert wire(remote, request) == expected

    def test_search_with_size_bound_and_paging(self, remote, single):
        request = SearchRequest(
            query="store texas", document="stores", size_bound=6, page_size=1
        )
        remote_body, single_body = wire(remote, request), wire(single, request)
        assert remote_body == single_body
        token = parse_response(json.loads(remote_body)).next_page
        while token is not None:
            follow = request.with_page(token)
            remote_body, single_body = wire(remote, follow), wire(single, follow)
            assert remote_body == single_body
            token = parse_response(json.loads(remote_body)).next_page

    def test_unknown_document_error_bytes(self, remote, single):
        request = SearchRequest(query="anything", document="no-such-doc")
        assert wire(remote, request) == wire(single, request)

    def test_invalid_request_error_bytes(self, remote, single):
        for payload in (
            {"kind": "search", "schema_version": 1, "document": "stores"},
            {"kind": "search", "schema_version": 1, "query": "", "document": "stores"},
            {"kind": "nonsense"},
            [1, 2, 3],
        ):
            assert wire(remote, payload) == wire(single, payload)

    def test_batch_all_documents(self, remote, single):
        batch = BatchRequest(queries=QUERIES[:3], documents=None)
        assert wire(remote, batch) == wire(single, batch)

    def test_batch_explicit_documents_with_duplicates(self, remote, single):
        batch = BatchRequest(
            queries=("store texas", "movie drama"),
            documents=("movies", "stores", "movies", "retail"),
        )
        assert wire(remote, batch) == wire(single, batch)

    def test_batch_unknown_document_error_bytes(self, remote, single):
        batch = BatchRequest(queries=("store",), documents=("stores", "missing"))
        assert wire(remote, batch) == wire(single, batch)

    def test_capabilities_and_stats_shape(self, remote):
        caps = remote.capabilities()
        assert caps["backend"] == "remote-cluster"
        assert caps["shards"] == 2
        assert caps["replicas"] == 2
        assert caps["remote"] is True
        stats = remote.stats()
        assert stats["documents"] == len(CLUSTER_DATASETS)
        assert [row["endpoints"] for row in stats["shards"]] == [2, 2]
        assert all(row["healthy"] == 2 for row in stats["shards"])


class TestUpdateReplication:
    @pytest.fixture()
    def fresh(self, tmp_path):
        service = ClusterService.from_corpus(build_corpus(), shards=2)
        service.save_dir(tmp_path)
        service.close()
        remote = RemoteClusterService.spawn(tmp_path, replicas=2)
        single = SnippetService(build_corpus())
        yield remote, single
        remote.close()
        single.close()

    def test_remove_and_read_stay_identical(self, fresh):
        remote, single = fresh
        request = UpdateRequest(action="remove", document="movies")
        assert wire(remote, request) == wire(single, request)
        # registry updated: the document is now unknown, with identical bytes
        probe = SearchRequest(query="drama", document="movies")
        assert wire(remote, probe) == wire(single, probe)
        # remaining documents still serve identically (from either replica)
        for _ in range(2):
            probe = SearchRequest(query="store texas", document="stores")
            assert wire(remote, probe) == wire(single, probe)

    def test_remove_unknown_document_error_bytes(self, fresh):
        remote, single = fresh
        request = UpdateRequest(action="remove", document="never-registered")
        assert wire(remote, request) == wire(single, request)

    def test_add_document_replicates_to_replicas(self, fresh):
        remote, single = fresh
        xml = "<library><book><title>New Arrival</title></book></library>"
        request = UpdateRequest(action="update", document="arrivals", xml=xml)
        assert wire(remote, request) == wire(single, request)
        owner = remote._registry()["arrivals"]
        replica_set = remote.replica_sets[owner]
        # the commit advanced the set's sequence and every replica applied it
        assert replica_set.sequence == 1
        for endpoint in replica_set.endpoints():
            assert endpoint.sequence == 1
            assert not endpoint.stale
        # the new document serves identically from both replicas
        for _ in range(2):
            probe = SearchRequest(query="arrival", document="arrivals")
            assert wire(remote, probe) == wire(single, probe)

    def test_incremental_update_replicates_as_deltas(self, fresh):
        remote, single = fresh
        # a text-only edit of an existing document rides the incremental path
        from repro.xmltree.serialize import to_xml_string

        base = build_corpus()
        tree = base.system("stores").index.tree
        xml = to_xml_string(tree).replace("Austin", "Houston", 1)
        request = UpdateRequest(action="update", document="stores", xml=xml)
        assert wire(remote, request) == wire(single, request)
        probe = SearchRequest(query="store houston", document="stores")
        for _ in range(2):
            assert wire(remote, probe) == wire(single, probe)


class TestShardDeltaWire:
    def test_round_trip_every_kind(self):
        deltas = (
            ShardDelta(shard=0, document="a", kind="remove"),
            ShardDelta(shard=1, document="b", kind="add", xml="<a/>"),
            ShardDelta(shard=2, document="c", kind="replace", xml="<b/>"),
            ShardDelta(
                shard=3, document="d", kind="update",
                edits=(("1.2", "new text"), ("1.3", "")),
            ),
        )
        for delta in deltas:
            assert ShardDelta.from_wire(delta.to_wire()) == delta

    def test_wire_form_is_json_safe(self):
        delta = ShardDelta(shard=0, document="a", kind="update", edits=(("1", "x"),))
        assert ShardDelta.from_wire(json.loads(json.dumps(delta.to_wire()))) == delta

    @pytest.mark.parametrize(
        "wire_form",
        [
            "not a dict",
            {"shard": -1, "document": "a", "kind": "remove"},
            {"shard": True, "document": "a", "kind": "remove"},
            {"shard": 0, "document": "", "kind": "remove"},
            {"shard": 0, "document": "a", "kind": "explode"},
            {"shard": 0, "document": "a", "kind": "add", "xml": 7},
            {"shard": 0, "document": "a", "kind": "update", "edits": "nope"},
            {"shard": 0, "document": "a", "kind": "update", "edits": [["only-one"]]},
            {"shard": 0, "document": "a", "kind": "update", "edits": [[1, 2]]},
        ],
    )
    def test_malformed_wire_raises(self, wire_form):
        with pytest.raises(ClusterError):
            ShardDelta.from_wire(wire_form)


class TestShardBackend:
    def test_load_dir_rejects_out_of_range_shard(self, cluster_dir):
        with pytest.raises(ClusterError, match="outside this cluster's range"):
            ShardBackend.load_dir(cluster_dir, 7)
        with pytest.raises(ClusterError):
            ShardBackend.load_dir(cluster_dir, -1)

    def test_loaded_shard_serves_its_documents(self, cluster_dir):
        manifest = read_cluster_manifest(cluster_dir)
        backend = ShardBackend.load_dir(cluster_dir, 0)
        try:
            caps = backend.capabilities()
            assert caps["shard"] == 0
            assert caps["documents"] == len(backend.shard)
            assert caps["replication_sequence"] == 0
            assert manifest.shards == 2
        finally:
            backend.close()

    def test_replicate_unknown_op_raises(self, cluster_dir):
        backend = ShardBackend.load_dir(cluster_dir, 0)
        try:
            from repro.errors import ProtocolError

            with pytest.raises(ProtocolError, match="unknown replication op"):
                backend.handle_replicate({"op": "explode"})
            with pytest.raises(ProtocolError):
                backend.handle_replicate("not a dict")
        finally:
            backend.close()

    def test_apply_delta_for_wrong_shard_raises(self, cluster_dir):
        backend = ShardBackend.load_dir(cluster_dir, 0)
        try:
            delta = ShardDelta(shard=1, document="x", kind="remove")
            with pytest.raises(ClusterError, match="refusing to apply"):
                backend.handle_replicate(
                    {"op": "apply-delta", "delta": delta.to_wire(), "sequence": 1}
                )
        finally:
            backend.close()


class TestSpawnValidation:
    def test_spawn_rejects_bad_replica_count(self, cluster_dir):
        with pytest.raises(ClusterError, match="replicas"):
            RemoteClusterService.spawn(cluster_dir, replicas=0)

    def test_constructor_rejects_gapped_shard_ids(self):
        from repro.cluster import ReplicaSet, ShardEndpoint

        class FakeClient:
            host, port = "127.0.0.1", 1

            def close(self):
                pass

        sets = [ReplicaSet(2, [ShardEndpoint(FakeClient())])]
        with pytest.raises(ClusterError, match="exactly 0..N-1"):
            RemoteClusterService(sets)


def test_port_file_written_atomically(tmp_path):
    """serve --port-file publishes via temp + rename: the visible file is
    always complete and no staging file is left behind."""
    from repro.cli import _write_port_file

    target = tmp_path / "server.port"
    _write_port_file(str(target), 43210)
    assert target.read_text(encoding="utf-8") == "43210\n"
    assert not os.path.exists(str(target) + ".tmp")
