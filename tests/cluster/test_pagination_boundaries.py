"""Pagination boundary suite across shard counts (ISSUE 4 acceptance).

``next_page`` tokens must behave identically for any shard count — a
token handed out by the cluster router re-routes deterministically to the
shard that produced it (ownership is deterministic, so the token is a
per-shard cursor by construction) and **never points at an empty trailing
page**: exact-multiple result counts, one-over counts and empty result
sets are the boundary cases.
"""

from __future__ import annotations

import json

import pytest

from repro.api import SearchRequest, SnippetService
from repro.cluster import ClusterService
from repro.corpus import Corpus

SHARD_COUNTS = (1, 2, 3, 4)

#: (query, page_size) pairs picked against the fixture corpus so the suite
#: crosses every boundary shape; result counts are asserted in the test so
#: a dataset change cannot silently hollow the suite out.
BOUNDARY_CASES = (
    ("store", 1),     # exact multiple: 3 results / page size 1 -> 3 full pages
    ("store", 2),     # one over: 3 results / page size 2 -> 2 + 1
    ("store", 3),     # single exact page: token must be absent immediately
    ("store", 5),     # oversized page
    ("zzz-no-such-keyword", 2),  # empty result set: no token at all
)


def build_corpus() -> Corpus:
    corpus = Corpus()
    corpus.add_builtin("figure5-stores", name="stores")
    corpus.add_builtin("retail")
    corpus.add_builtin("movies")
    corpus.add_builtin("bibliography")
    return corpus


def walk_pages(service, request: SearchRequest) -> list[dict]:
    """Follow next_page tokens to exhaustion; return the page payloads."""
    pages = []
    current = request
    while True:
        page = service.handle_dict(current.to_dict())
        assert page["kind"] == "search_response", page
        pages.append(page)
        if page["next_page"] is None:
            break
        current = current.with_page(page["next_page"])
        assert len(pages) < 50, "runaway pagination"
    return pages


class TestPaginationBoundaries:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("query,page_size", BOUNDARY_CASES)
    def test_tokens_never_point_at_an_empty_trailing_page(self, shards, query, page_size):
        cluster = ClusterService.from_corpus(build_corpus(), shards=shards)
        request = SearchRequest(
            query=query, document="stores", size_bound=6, page_size=page_size
        )
        pages = walk_pages(cluster, request)
        # every page reached through a token carries at least one result
        for page in pages[1:]:
            assert page["results"], (shards, query, page_size, page["page"])
        # the last page never re-offers a token
        assert pages[-1]["next_page"] is None
        # an empty result set is a single token-less page
        if pages[0]["total_results"] == 0:
            assert len(pages) == 1 and pages[0]["results"] == []

    def test_boundary_shapes_still_hold(self):
        # The suite's boundary arithmetic relies on "store" having exactly
        # 3 results in the stores document; pin it so dataset drift makes
        # this suite fail loudly instead of degenerating.
        service = SnippetService(build_corpus())
        response = service.run(SearchRequest(query="store", document="stores", size_bound=6))
        assert response.total_results == 3

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("query,page_size", BOUNDARY_CASES)
    def test_page_walk_byte_identical_to_single_corpus(self, shards, query, page_size):
        cluster = ClusterService.from_corpus(build_corpus(), shards=shards)
        single = SnippetService(build_corpus())
        request = SearchRequest(
            query=query, document="stores", size_bound=6, page_size=page_size
        )
        ours = [json.dumps(page, sort_keys=True) for page in walk_pages(cluster, request)]
        theirs = [json.dumps(page, sort_keys=True) for page in walk_pages(single, request)]
        assert ours == theirs

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_token_reroutes_to_the_same_shard(self, shards):
        cluster = ClusterService.from_corpus(build_corpus(), shards=shards)
        request = SearchRequest(query="store", document="stores", size_bound=6, page_size=2)
        first = cluster.run(request)
        assert first.next_page is not None
        follow_up = cluster.run(request.with_page(first.next_page))
        assert follow_up.shard == first.shard

    def test_page_past_the_end_is_empty_not_an_error(self):
        cluster = ClusterService.from_corpus(build_corpus(), shards=3)
        single = SnippetService(build_corpus())
        request = SearchRequest(
            query="store", document="stores", size_bound=6, page_size=2, page=9
        )
        assert json.dumps(cluster.handle_dict(request.to_dict()), sort_keys=True) == (
            json.dumps(single.handle_dict(request.to_dict()), sort_keys=True)
        )

    def test_invalid_page_error_identical(self):
        cluster = ClusterService.from_corpus(build_corpus(), shards=2)
        single = SnippetService(build_corpus())
        payload = {
            "kind": "search", "schema_version": 1, "query": "store",
            "document": "stores", "page": 0, "page_size": 2,
        }
        assert cluster.handle_dict(payload) == single.handle_dict(payload)
