"""Tests for document→shard assignment and the cluster manifest."""

from __future__ import annotations

import pytest

from repro.cluster.partition import (
    CLUSTER_MANIFEST_FILE,
    ClusterManifest,
    ExplicitPartitioner,
    HashPartitioner,
    manifest_for_partitioner,
    partitioner_from_manifest,
    read_cluster_manifest,
    write_cluster_manifest,
)
from repro.errors import ClusterError, StorageError


class TestHashPartitioner:
    def test_deterministic_and_in_range(self):
        partitioner = HashPartitioner(4)
        names = [f"doc-{i}" for i in range(100)] + ["stores", "retail", "movies"]
        first = [partitioner.shard_of(name) for name in names]
        second = [partitioner.shard_of(name) for name in names]
        assert first == second
        assert all(0 <= shard < 4 for shard in first)

    def test_stable_across_processes(self):
        # SHA-1 based, not Python's salted hash: these pinned values must
        # never drift, or a reloaded cluster would route new documents to
        # different shards than the cluster that saved the manifest.
        partitioner = HashPartitioner(4)
        assert partitioner.shard_of("stores") == 0
        assert partitioner.shard_of("retail") == 3
        assert partitioner.shard_of("movies") == 2

    def test_spreads_documents(self):
        partitioner = HashPartitioner(4)
        shards = {partitioner.shard_of(f"document-{i}") for i in range(64)}
        assert shards == {0, 1, 2, 3}

    def test_single_shard_degenerates(self):
        partitioner = HashPartitioner(1)
        assert partitioner.shard_of("anything") == 0

    def test_bad_shard_count_rejected(self):
        with pytest.raises(ClusterError):
            HashPartitioner(0)
        with pytest.raises(ClusterError):
            HashPartitioner(True)
        with pytest.raises(ClusterError):
            HashPartitioner(-3)


class TestExplicitPartitioner:
    def test_assignments_and_default(self):
        partitioner = ExplicitPartitioner({"hot": 0, "cold": 2}, 3, default=1)
        assert partitioner.shard_of("hot") == 0
        assert partitioner.shard_of("cold") == 2
        assert partitioner.shard_of("anything-else") == 1

    def test_unmapped_without_default_raises(self):
        partitioner = ExplicitPartitioner({"hot": 0}, 2)
        with pytest.raises(ClusterError, match="no explicit shard assignment"):
            partitioner.shard_of("stranger")

    def test_out_of_range_assignment_rejected(self):
        with pytest.raises(ClusterError):
            ExplicitPartitioner({"doc": 5}, 2)
        with pytest.raises(ClusterError):
            ExplicitPartitioner({"doc": -1}, 2)
        with pytest.raises(ClusterError):
            ExplicitPartitioner({}, 2, default=7)


class TestClusterManifest:
    def test_round_trip_hash(self, tmp_path):
        manifest = manifest_for_partitioner(
            HashPartitioner(3), ["shard-0", "shard-1", "shard-2"], version=4
        )
        write_cluster_manifest(tmp_path, manifest)
        loaded = read_cluster_manifest(tmp_path)
        assert loaded == manifest
        assert isinstance(partitioner_from_manifest(loaded), HashPartitioner)

    def test_round_trip_explicit_with_odd_names(self, tmp_path):
        partitioner = ExplicitPartitioner(
            {"doc with spaces": 1, "unicode-ö": 0}, 2, default=1
        )
        manifest = manifest_for_partitioner(partitioner, ["shard-0", "shard-1"])
        write_cluster_manifest(tmp_path, manifest)
        loaded = read_cluster_manifest(tmp_path)
        rebuilt = partitioner_from_manifest(loaded)
        assert rebuilt.shard_of("doc with spaces") == 1
        assert rebuilt.shard_of("unicode-ö") == 0
        assert rebuilt.shard_of("anything") == 1

    def test_bumped_increments_version(self):
        manifest = manifest_for_partitioner(HashPartitioner(2), ["shard-0", "shard-1"])
        assert manifest.version == 1
        assert manifest.bumped().version == 2
        assert manifest.bumped().shard_dirs == manifest.shard_dirs

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(StorageError, match="does not contain a saved eXtract cluster"):
            read_cluster_manifest(tmp_path)

    def test_truncated_manifest_rejected(self, tmp_path):
        manifest = manifest_for_partitioner(HashPartitioner(2), ["shard-0", "shard-1"])
        write_cluster_manifest(tmp_path, manifest)
        path = tmp_path / CLUSTER_MANIFEST_FILE
        text = path.read_text(encoding="utf-8")
        path.write_text(text.replace("#end\n", ""), encoding="utf-8")
        with pytest.raises(StorageError, match="truncated"):
            read_cluster_manifest(tmp_path)

    def test_shard_count_mismatch_rejected(self, tmp_path):
        manifest = manifest_for_partitioner(HashPartitioner(2), ["shard-0", "shard-1"])
        write_cluster_manifest(tmp_path, manifest)
        path = tmp_path / CLUSTER_MANIFEST_FILE
        text = path.read_text(encoding="utf-8").replace("#shards 2", "#shards 3")
        path.write_text(text, encoding="utf-8")
        with pytest.raises(StorageError, match="declares 3 shard"):
            read_cluster_manifest(tmp_path)

    def test_unknown_header_rejected(self, tmp_path):
        (tmp_path / CLUSTER_MANIFEST_FILE).write_text("#not-a-cluster\n", encoding="utf-8")
        with pytest.raises(StorageError, match="unrecognised"):
            read_cluster_manifest(tmp_path)

    def test_out_of_range_assignment_in_manifest_is_a_storage_error(self, tmp_path):
        # A malformed manifest must fail while being *read* (StorageError),
        # before any shard is loaded — not later as a ClusterError from
        # partitioner construction.
        partitioner = ExplicitPartitioner({"retail": 1}, 2)
        write_cluster_manifest(
            tmp_path, manifest_for_partitioner(partitioner, ["shard-0", "shard-1"])
        )
        path = tmp_path / CLUSTER_MANIFEST_FILE
        text = path.read_text(encoding="utf-8").replace('assign 1 "retail"', 'assign 9 "retail"')
        path.write_text(text, encoding="utf-8")
        with pytest.raises(StorageError, match="outside"):
            read_cluster_manifest(tmp_path)

    def test_unknown_line_rejected(self, tmp_path):
        manifest = manifest_for_partitioner(HashPartitioner(1), ["shard-0"])
        write_cluster_manifest(tmp_path, manifest)
        path = tmp_path / CLUSTER_MANIFEST_FILE
        text = path.read_text(encoding="utf-8").replace(
            "shard shard-0", "shard shard-0\nmystery line"
        )
        path.write_text(text, encoding="utf-8")
        with pytest.raises(StorageError, match="unknown cluster manifest line"):
            read_cluster_manifest(tmp_path)

    def test_validate_rejects_duplicates_and_bad_kinds(self):
        with pytest.raises(ClusterError):
            ClusterManifest(
                version=1, partitioner="hash", shard_dirs=("a", "a")
            ).validate()
        with pytest.raises(ClusterError):
            ClusterManifest(
                version=1, partitioner="mystery", shard_dirs=("a",)
            ).validate()
        with pytest.raises(ClusterError):
            ClusterManifest(
                version=0, partitioner="hash", shard_dirs=("a",)
            ).validate()
        # assignments only make sense for the explicit partitioner
        with pytest.raises(ClusterError):
            ClusterManifest(
                version=1,
                partitioner="hash",
                shard_dirs=("a",),
                assignments=(("doc", 0),),
            ).validate()

    def test_manifest_for_partitioner_checks_dir_count(self):
        with pytest.raises(ClusterError):
            manifest_for_partitioner(HashPartitioner(2), ["only-one"])
