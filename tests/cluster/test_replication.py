"""Unit tests for the replication primitives — no processes, fake clients.

:class:`ReplicaSet` and :class:`HealthMonitor` are pure state machines
over a client interface; these tests pin their transition rules (read
rotation, shedding, staleness, promotion eligibility, who may mark an
endpoint up) without the cost or nondeterminism of spawned servers.  The
end-to-end behaviour over real processes lives in
``test_remote_faults.py``.
"""

from __future__ import annotations

import pytest

from repro.cluster import HealthMonitor, ReplicaSet, ShardEndpoint
from repro.cluster.replication import DEFAULT_OVERLOAD_THRESHOLD
from repro.errors import ClusterError


class FakeClient:
    """The slice of ServiceClient the replication layer touches."""

    def __init__(self, port: int, alive: bool = True):
        self.host = "127.0.0.1"
        self.port = port
        self.alive = alive
        self.health_calls = 0
        self.closed = False

    def health(self):
        self.health_calls += 1
        if not self.alive:
            raise ConnectionRefusedError(f"fake endpoint :{self.port} is down")
        return {"status": "ok"}

    def close(self):
        self.closed = True


def make_set(shard_id: int = 0, size: int = 3) -> ReplicaSet:
    endpoints = [ShardEndpoint(FakeClient(port=9000 + index)) for index in range(size)]
    return ReplicaSet(shard_id, endpoints)


class TestReplicaSetBasics:
    def test_endpoint_zero_becomes_primary(self):
        replica_set = make_set()
        assert replica_set.primary.role == "primary"
        assert all(endpoint.role == "replica" for endpoint in replica_set.replicas)
        assert len(replica_set) == 3

    def test_empty_set_rejected(self):
        with pytest.raises(ClusterError, match="at least one endpoint"):
            ReplicaSet(0, [])

    def test_endpoint_rejects_unknown_role(self):
        with pytest.raises(ClusterError, match="role"):
            ShardEndpoint(FakeClient(1), role="observer")

    def test_close_closes_every_client(self):
        replica_set = make_set()
        replica_set.close()
        assert all(endpoint.client.closed for endpoint in replica_set.endpoints())


class TestReadCandidates:
    def test_rotation_spreads_consecutive_reads(self):
        replica_set = make_set(size=3)
        first = [endpoint.address for endpoint in replica_set.read_candidates()]
        second = [endpoint.address for endpoint in replica_set.read_candidates()]
        third = [endpoint.address for endpoint in replica_set.read_candidates()]
        fourth = [endpoint.address for endpoint in replica_set.read_candidates()]
        assert sorted(first) == sorted(second) == sorted(third)
        assert first != second != third  # the head rotates
        assert fourth == first  # full cycle

    def test_unhealthy_endpoints_are_skipped(self):
        replica_set = make_set(size=3)
        victim = replica_set.replicas[0]
        replica_set.mark_down(victim)
        for _ in range(4):
            assert victim not in replica_set.read_candidates()

    def test_all_down_falls_back_to_non_stale(self):
        # A guaranteed failure helps nobody: when everything is marked
        # down, the non-stale endpoints are still offered (one may have
        # recovered since the last probe).
        replica_set = make_set(size=2)
        for endpoint in replica_set.endpoints():
            replica_set.mark_down(endpoint)
        candidates = replica_set.read_candidates()
        assert sorted(e.address for e in candidates) == sorted(
            e.address for e in replica_set.endpoints()
        )

    def test_stale_endpoints_never_serve_reads(self):
        replica_set = make_set(size=2)
        diverged = replica_set.replicas[0]
        replica_set.mark_stale(diverged)
        for _ in range(3):
            assert diverged not in replica_set.read_candidates()
        # ... even when everything else is down
        replica_set.mark_down(replica_set.primary)
        replica_set.mark_down(diverged)
        assert diverged not in replica_set.read_candidates()

    def test_everything_stale_yields_no_candidates(self):
        replica_set = make_set(size=2)
        for endpoint in replica_set.endpoints():
            replica_set.mark_stale(endpoint)
        assert replica_set.read_candidates() == []


class TestOverloadShedding:
    def test_streak_sheds_at_threshold(self):
        replica_set = make_set(size=2)
        endpoint = replica_set.primary
        for _ in range(DEFAULT_OVERLOAD_THRESHOLD - 1):
            assert replica_set.record_overloaded(endpoint) is False
            assert endpoint.healthy
        assert replica_set.record_overloaded(endpoint) is True
        assert not endpoint.healthy

    def test_served_answer_resets_the_streak(self):
        replica_set = make_set(size=2)
        endpoint = replica_set.primary
        replica_set.record_overloaded(endpoint)
        replica_set.record_overloaded(endpoint)
        replica_set.record_served(endpoint)
        assert endpoint.overloaded_streak == 0
        # the counter really restarted: threshold more needed to shed
        for _ in range(DEFAULT_OVERLOAD_THRESHOLD - 1):
            assert replica_set.record_overloaded(endpoint) is False

    def test_custom_threshold(self):
        replica_set = make_set(size=2)
        endpoint = replica_set.primary
        assert replica_set.record_overloaded(endpoint, threshold=1) is True
        assert not endpoint.healthy


class TestPromotion:
    def test_noop_while_primary_healthy(self):
        replica_set = make_set(size=3)
        primary = replica_set.primary
        assert replica_set.promote() is primary

    def test_promotes_first_healthy_in_sync_replica(self):
        replica_set = make_set(size=3)
        old_primary = replica_set.primary
        successor = replica_set.replicas[0]
        replica_set.mark_down(old_primary)
        promoted = replica_set.promote()
        assert promoted is successor
        assert replica_set.primary is successor
        assert successor.role == "primary"
        assert old_primary.role == "replica"
        # the dead primary went to the tail, not the middle
        assert replica_set.endpoints()[-1] is old_primary

    def test_stale_and_out_of_sync_replicas_are_skipped(self):
        replica_set = make_set(size=3)
        replica_set.record_commit(5)  # committed writes the replicas must have
        lagging, fresh = replica_set.replicas
        replica_set.record_applied(fresh, 5)
        replica_set.mark_stale(lagging)  # stale: excluded outright
        replica_set.mark_down(replica_set.primary)
        assert replica_set.promote() is fresh

    def test_no_candidate_leaves_shard_write_unavailable(self):
        replica_set = make_set(size=2)
        replica_set.record_commit(1)  # the replica (seq 0) is now behind
        replica_set.mark_down(replica_set.primary)
        assert replica_set.promote() is None
        # the dead primary is still in slot 0 — nothing was silently moved
        assert not replica_set.primary.healthy

    def test_commit_tracks_primary_sequence(self):
        replica_set = make_set(size=2)
        replica_set.record_commit(3)
        assert replica_set.sequence == 3
        assert replica_set.primary.sequence == 3
        assert replica_set.replicas[0].sequence == 0


class TestHealthMonitor:
    def test_check_once_marks_down_and_up(self):
        replica_set = make_set(size=3)
        dead = replica_set.replicas[0]
        dead.client.alive = False
        monitor = HealthMonitor([replica_set])
        monitor.check_once()
        assert not dead.healthy
        assert all(
            endpoint.healthy
            for endpoint in replica_set.endpoints()
            if endpoint is not dead
        )
        dead.client.alive = True
        monitor.check_once()
        assert dead.healthy
        assert monitor.probes == 2

    def test_probe_success_does_not_clear_staleness(self):
        replica_set = make_set(size=2)
        diverged = replica_set.replicas[0]
        replica_set.mark_stale(diverged)
        HealthMonitor([replica_set]).check_once()
        assert diverged.healthy and diverged.stale
        assert diverged not in replica_set.read_candidates()

    def test_sweep_promotes_past_dead_primary(self):
        replica_set = make_set(size=2)
        replica_set.primary.client.alive = False
        survivor = replica_set.replicas[0]
        HealthMonitor([replica_set]).check_once()
        assert replica_set.primary is survivor

    def test_background_lifecycle(self):
        replica_set = make_set(size=1)
        monitor = HealthMonitor([replica_set], interval=0.01)
        assert not monitor.running
        with monitor:
            assert monitor.running
            with pytest.raises(RuntimeError, match="already running"):
                monitor.start()
            deadline = 200
            while monitor.probes == 0 and deadline:
                deadline -= 1
                import time

                time.sleep(0.01)
            assert monitor.probes > 0
        assert not monitor.running
        monitor.stop()  # idempotent

    def test_rejects_non_positive_interval(self):
        with pytest.raises(ValueError, match="interval"):
            HealthMonitor([], interval=0)
