"""Remote cluster bootstrapped from v4 binary snapshots.

The distributed acceptance property of the binary format: a
:class:`~repro.cluster.remote.RemoteClusterService` whose shard processes
load their corpora through the v4 mmap path serves default wire responses
byte-identical to a single-corpus :class:`~repro.api.SnippetService` —
the snapshot format is invisible on the wire.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.api.protocol import BatchRequest, SearchRequest
from repro.api.service import SnippetService
from repro.cluster import ClusterService, RemoteClusterService
from repro.index.binfmt import BINARY_FILE
from repro.index.storage import BINARY_FORMAT_VERSION
from tests.cluster.conftest import CLUSTER_DATASETS, QUERIES, build_corpus


def wire(backend, payload) -> str:
    if hasattr(payload, "to_dict"):
        payload = payload.to_dict()
    return backend.handle_json(json.dumps(payload, sort_keys=True))


@pytest.fixture(scope="module")
def binary_cluster_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("binary-cluster")
    service = ClusterService.from_corpus(build_corpus(), shards=2)
    service.save_dir(directory, format_version=BINARY_FORMAT_VERSION)
    service.close()
    return directory


@pytest.fixture(scope="module")
def remote(binary_cluster_dir):
    service = RemoteClusterService.spawn(binary_cluster_dir)
    yield service
    service.close()


@pytest.fixture(scope="module")
def single():
    service = SnippetService(build_corpus())
    yield service
    service.close()


class TestBinaryBootstrap:
    def test_every_shard_snapshot_is_binary(self, binary_cluster_dir):
        binary = [
            os.path.join(root, name)
            for root, _dirs, names in os.walk(binary_cluster_dir)
            for name in names
            if name == BINARY_FILE
        ]
        assert binary, "no v4 snapshots written under the cluster directory"
        text = [
            name
            for _root, _dirs, names in os.walk(binary_cluster_dir)
            for name in names
            if name == "inverted.idx"
        ]
        assert text == []

    def test_search_bytes_identical(self, remote, single):
        for _dataset, name in CLUSTER_DATASETS:
            for query in QUERIES:
                request = SearchRequest(query=query, document=name)
                assert wire(remote, request) == wire(single, request)

    def test_batch_bytes_identical(self, remote, single):
        batch = BatchRequest(queries=QUERIES[:3], documents=None)
        assert wire(remote, batch) == wire(single, batch)

    def test_error_bytes_identical(self, remote, single):
        request = SearchRequest(query="anything", document="no-such-doc")
        assert wire(remote, request) == wire(single, request)
