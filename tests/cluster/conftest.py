"""Shared fixtures for the cluster (sharded serving) test suite."""

from __future__ import annotations

import pytest

from repro.corpus import Corpus

#: the documents every equivalence test serves — enough of them that any
#: shard count from 1 to 4 gets a non-trivial spread
CLUSTER_DATASETS = (
    ("figure5-stores", "stores"),
    ("retail", "retail"),
    ("movies", "movies"),
    ("bibliography", "bibliography"),
)

QUERIES = (
    "store texas",
    "retailer apparel",
    "movie drama",
    "author",
    "clothes casual",
)


def build_corpus() -> Corpus:
    """A fresh multi-document corpus (never share one between services —
    a document belongs to exactly one registry at a time)."""
    corpus = Corpus()
    for dataset, name in CLUSTER_DATASETS:
        corpus.add_builtin(dataset, name=name)
    return corpus


@pytest.fixture()
def corpus():
    return build_corpus()


@pytest.fixture()
def single_service():
    from repro.api import SnippetService

    return SnippetService(build_corpus())
