"""CLI tests for the cluster subcommands (init / serve-request / update)."""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import main
from repro.cluster import ClusterService, read_cluster_manifest
from repro.xmltree.serialize import to_xml_string


def run_cli(*argv: str) -> tuple[int, str]:
    buffer = io.StringIO()
    code = main(list(argv), out=buffer)
    return code, buffer.getvalue()


@pytest.fixture()
def cluster_dir(tmp_path):
    path = tmp_path / "cluster"
    code, output = run_cli(
        "cluster-init",
        "--dataset", "figure5-stores",
        "--dataset", "retail",
        "--dataset", "movies",
        "--shards", "3",
        "--output", str(path),
    )
    assert code == 0, output
    return path


class TestClusterInit:
    def test_init_reports_shard_layout(self, cluster_dir):
        manifest = read_cluster_manifest(cluster_dir)
        assert manifest.shards == 3
        assert manifest.version == 1
        loaded = ClusterService.load_dir(cluster_dir)
        assert loaded.names() == ["figure5-stores", "movies", "retail"]

    def test_init_with_explicit_assignments(self, tmp_path):
        path = tmp_path / "pinned"
        code, output = run_cli(
            "cluster-init",
            "--dataset", "figure5-stores",
            "--dataset", "retail",
            "--shards", "2",
            "--assign", "figure5-stores=1",
            "--assign", "retail=0",
            "--output", str(path),
        )
        assert code == 0, output
        loaded = ClusterService.load_dir(path)
        assert loaded._owning_shard("figure5-stores").shard_id == 1
        assert loaded._owning_shard("retail").shard_id == 0

    def test_bad_assignment_syntax(self, tmp_path):
        code, output = run_cli(
            "cluster-init", "--dataset", "retail", "--shards", "2",
            "--assign", "retail", "--output", str(tmp_path / "x"),
        )
        assert code == 1
        assert "NAME=SHARD" in output

    def test_default_shard_requires_assign(self, tmp_path):
        code, output = run_cli(
            "cluster-init", "--dataset", "retail", "--shards", "2",
            "--default-shard", "1", "--output", str(tmp_path / "x"),
        )
        assert code == 1
        assert "--default-shard" in output


class TestClusterServeRequest:
    def test_search_round_trip(self, cluster_dir, tmp_path):
        request = tmp_path / "request.json"
        request.write_text(
            json.dumps(
                {
                    "kind": "search", "schema_version": 1,
                    "query": "movie drama", "document": "movies",
                }
            ),
            encoding="utf-8",
        )
        code, output = run_cli(
            "cluster-serve-request", "--cluster-dir", str(cluster_dir),
            "--request", str(request),
        )
        assert code == 0, output
        payload = json.loads(output)
        assert payload["kind"] == "search_response"
        assert payload["total_results"] >= 1
        assert "meta" not in payload  # default wire form stays deterministic

    def test_matches_serve_request_byte_for_byte(self, cluster_dir, tmp_path):
        corpus_dir = tmp_path / "corpus"
        code, _ = run_cli(
            "corpus-save", "--dataset", "figure5-stores", "--dataset", "retail",
            "--dataset", "movies", "--output", str(corpus_dir),
        )
        assert code == 0
        request = tmp_path / "request.json"
        request.write_text(
            json.dumps(
                {
                    "kind": "batch", "schema_version": 1,
                    "queries": ["store texas", "movie drama"],
                }
            ),
            encoding="utf-8",
        )
        code_single, single_output = run_cli(
            "serve-request", "--corpus-dir", str(corpus_dir), "--request", str(request)
        )
        code_cluster, cluster_output = run_cli(
            "cluster-serve-request", "--cluster-dir", str(cluster_dir),
            "--request", str(request),
        )
        assert code_single == code_cluster == 0
        assert single_output == cluster_output

    def test_update_requests_are_rejected(self, cluster_dir, tmp_path):
        request = tmp_path / "update.json"
        request.write_text(
            json.dumps(
                {
                    "kind": "update", "schema_version": 1,
                    "document": "movies", "xml": "<root><a>x</a></root>",
                }
            ),
            encoding="utf-8",
        )
        code, output = run_cli(
            "cluster-serve-request", "--cluster-dir", str(cluster_dir),
            "--request", str(request),
        )
        assert code == 1
        payload = json.loads(output)
        assert payload["kind"] == "error"
        assert "cluster-update" in payload["message"]

    def test_malformed_request_fails_fast(self, cluster_dir, tmp_path):
        request = tmp_path / "bad.json"
        request.write_text("{not json", encoding="utf-8")
        code, output = run_cli(
            "cluster-serve-request", "--cluster-dir", str(cluster_dir),
            "--request", str(request),
        )
        assert code == 1
        assert json.loads(output)["error"] == "ProtocolError"


class TestClusterUpdate:
    def edited_xml(self, cluster_dir, document: str, old: str, new: str) -> str:
        loaded = ClusterService.load_dir(cluster_dir)
        tree = loaded._owning_shard(document).corpus.system(document).index.tree
        from repro.xmltree.diff import clone_tree

        copy = clone_tree(tree)
        for node in copy.iter_nodes():
            if node.text == old:
                node.text = new
        return to_xml_string(copy)

    def test_incremental_update_journalled_on_owning_shard(self, cluster_dir, tmp_path):
        xml = self.edited_xml(cluster_dir, "figure5-stores", "Texas", "Nevada")
        edited = tmp_path / "figure5-stores.xml"
        edited.write_text(xml, encoding="utf-8")
        code, output = run_cli(
            "cluster-update", "--cluster-dir", str(cluster_dir), "--file", str(edited)
        )
        assert code == 0, output
        assert "routing 'figure5-stores' to shard" in output
        assert "journalled as deltas" in output
        assert "version 1 -> 2" in output
        manifest = read_cluster_manifest(cluster_dir)
        assert manifest.version == 2
        # exactly one shard gained a journal, and a reload replays it
        journals = [
            subdir
            for subdir in manifest.shard_dirs
            if (cluster_dir / subdir / "corpus.journal").exists()
        ]
        assert len(journals) == 1
        loaded = ClusterService.load_dir(cluster_dir)
        from repro.api import SearchRequest

        response = loaded.run(
            SearchRequest(query="store nevada", document="figure5-stores", size_bound=6)
        )
        assert response.total_results >= 1

    def test_add_routes_by_partitioner(self, cluster_dir, tmp_path):
        new_doc = tmp_path / "newdoc.xml"
        new_doc.write_text("<root><name>alpha beta</name></root>", encoding="utf-8")
        code, output = run_cli(
            "cluster-update", "--cluster-dir", str(cluster_dir), "--file", str(new_doc)
        )
        assert code == 0, output
        loaded = ClusterService.load_dir(cluster_dir)
        assert "newdoc" in loaded
        expected = loaded.partitioner.shard_of("newdoc")
        assert loaded._owning_shard("newdoc").shard_id == expected

    def test_remove_and_unknown_remove(self, cluster_dir):
        code, output = run_cli(
            "cluster-update", "--cluster-dir", str(cluster_dir), "--remove", "retail"
        )
        assert code == 0, output
        assert "removed 'retail'" in output
        assert "retail" not in ClusterService.load_dir(cluster_dir)
        code, output = run_cli(
            "cluster-update", "--cluster-dir", str(cluster_dir), "--remove", "ghost"
        )
        assert code == 1
        assert "no document named 'ghost' in the cluster" in output

    def test_shard_compaction_folds_cluster_journal(self, cluster_dir, tmp_path):
        # cluster-update journals on the shard; corpus-compact on that
        # shard directory folds it back into base snapshots.
        xml = self.edited_xml(cluster_dir, "figure5-stores", "Texas", "Utah")
        edited = tmp_path / "figure5-stores.xml"
        edited.write_text(xml, encoding="utf-8")
        code, _ = run_cli(
            "cluster-update", "--cluster-dir", str(cluster_dir), "--file", str(edited)
        )
        assert code == 0
        manifest = read_cluster_manifest(cluster_dir)
        shard_dir = next(
            subdir
            for subdir in manifest.shard_dirs
            if (cluster_dir / subdir / "corpus.journal").exists()
        )
        before = ClusterService.load_dir(cluster_dir)
        from repro.api import SearchRequest

        probe = SearchRequest(query="store utah", document="figure5-stores", size_bound=6)
        expected = json.dumps(before.handle_dict(probe.to_dict()), sort_keys=True)
        code, output = run_cli("corpus-compact", "--corpus-dir", str(cluster_dir / shard_dir))
        assert code == 0, output
        assert not (cluster_dir / shard_dir / "corpus.journal").exists()
        after = ClusterService.load_dir(cluster_dir)
        assert json.dumps(after.handle_dict(probe.to_dict()), sort_keys=True) == expected
