"""Fault injection against spawned remote clusters.

Each test spawns its own small cluster, kills or isolates real processes,
and asserts the coordinator's behaviour: a dead replica loses no request,
a dead primary is promoted past (and the promotion then takes writes), a
fully-partitioned shard degrades to a structured error while the rest of
the cluster keeps serving byte-identical answers.  Health probing is
driven synchronously through :meth:`HealthMonitor.check_once` so every
test is deterministic — no sleeps racing a background thread.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.api.protocol import BatchRequest, SearchRequest, UpdateRequest
from repro.api.service import SnippetService
from repro.cluster import ClusterService, HealthMonitor, RemoteClusterService
from tests.cluster.conftest import QUERIES, build_corpus


def wire(backend, payload) -> str:
    if hasattr(payload, "to_dict"):
        payload = payload.to_dict()
    return backend.handle_json(json.dumps(payload, sort_keys=True))


def spawn_cluster(directory, replicas: int) -> RemoteClusterService:
    service = ClusterService.from_corpus(build_corpus(), shards=2)
    service.save_dir(directory)
    service.close()
    return RemoteClusterService.spawn(directory, replicas=replicas)


def processes_of_shard(remote: RemoteClusterService, shard_id: int):
    return [process for process in remote.processes if process.shard_id == shard_id]


def process_at(remote: RemoteClusterService, endpoint):
    """The spawned process behind ``endpoint`` (matched by port)."""
    for process in remote.processes:
        if process.port == endpoint.client.port:
            return process
    raise AssertionError(f"no spawned process listens on {endpoint.address}")


@pytest.fixture()
def single():
    service = SnippetService(build_corpus())
    yield service
    service.close()


class TestReplicaDeath:
    def test_killing_a_replica_loses_no_request(self, tmp_path, single):
        with spawn_cluster(tmp_path, replicas=2) as remote:
            victim = remote.replica_sets[0].replicas[0]
            process_at(remote, victim).kill()
            # Every read after the kill succeeds byte-identically: the
            # rotation will hand some of them to the dead endpoint first,
            # and the failover path must absorb that silently.
            for query in QUERIES:
                for _dataset, name in (("", "stores"), ("", "retail")):
                    request = SearchRequest(query=query, document=name)
                    assert wire(remote, request) == wire(single, request)
            assert not victim.healthy  # the failure was recorded, not ignored

    def test_killing_a_replica_mid_batch_stream_loses_no_request(
        self, tmp_path, single
    ):
        with spawn_cluster(tmp_path, replicas=2) as remote:
            batch = BatchRequest(queries=QUERIES[:2], documents=None)
            expected = wire(single, batch)
            results: list[str] = []
            errors: list[BaseException] = []

            def stream() -> None:
                try:
                    for _ in range(6):
                        results.append(wire(remote, batch))
                except BaseException as exc:  # pragma: no cover - fail loudly
                    errors.append(exc)

            worker = threading.Thread(target=stream)
            worker.start()
            # Kill a replica while the stream is in flight.
            victim = remote.replica_sets[1].replicas[0]
            process_at(remote, victim).kill()
            worker.join(timeout=120)
            assert not worker.is_alive()
            assert errors == []
            assert len(results) == 6
            assert all(result == expected for result in results)

    def test_monitor_marks_dead_replica_down_and_leaves_rest_up(self, tmp_path):
        with spawn_cluster(tmp_path, replicas=2) as remote:
            monitor = HealthMonitor(remote.replica_sets)
            victim = remote.replica_sets[0].replicas[0]
            process_at(remote, victim).kill()
            monitor.check_once()
            assert monitor.probes == 1
            assert not victim.healthy
            survivors = [
                endpoint
                for replica_set in remote.replica_sets
                for endpoint in replica_set.endpoints()
                if endpoint is not victim
            ]
            assert all(endpoint.healthy for endpoint in survivors)


class TestPrimaryDeath:
    def test_primary_death_promotes_and_next_update_lands(self, tmp_path, single):
        with spawn_cluster(tmp_path, replicas=2) as remote:
            shard_id = remote._registry()["movies"]
            replica_set = remote.replica_sets[shard_id]
            old_primary = replica_set.primary
            expected_new = replica_set.replicas[0]
            process_at(remote, old_primary).kill()

            # The doomed update is *not* retried: it reports a transport
            # failure (the primary may have applied it) — and promotes.
            doomed = remote.execute_update(
                UpdateRequest(action="remove", document="movies")
            )
            assert doomed.kind == "error"
            assert doomed.code == "internal"
            assert "transport failure" in doomed.message
            assert replica_set.primary is expected_new
            assert expected_new.role == "primary"
            assert old_primary.role == "replica"
            assert not old_primary.healthy

            # The retry lands on the promotion, byte-identical to the
            # single-corpus service applying the same remove.
            request = UpdateRequest(action="remove", document="movies")
            assert wire(remote, request) == wire(single, request)
            # ... and the post-remove state agrees too (unknown-doc bytes).
            probe = SearchRequest(query="drama", document="movies")
            assert wire(remote, probe) == wire(single, probe)

    def test_monitor_promotes_past_dead_primary(self, tmp_path):
        with spawn_cluster(tmp_path, replicas=2) as remote:
            monitor = HealthMonitor(remote.replica_sets)
            replica_set = remote.replica_sets[0]
            old_primary = replica_set.primary
            survivor = replica_set.replicas[0]
            process_at(remote, old_primary).kill()
            monitor.check_once()
            assert replica_set.primary is survivor
            assert survivor.role == "primary"
            assert not old_primary.healthy

    def test_writes_after_promotion_replicate_to_later_recoveries(
        self, tmp_path, single
    ):
        # A promoted primary keeps the replication contract: subsequent
        # updates bump the set sequence and reads still serve identically.
        with spawn_cluster(tmp_path, replicas=2) as remote:
            shard_id = remote._registry()["stores"]
            replica_set = remote.replica_sets[shard_id]
            process_at(remote, replica_set.primary).kill()
            remote.execute_update(UpdateRequest(action="remove", document="stores"))
            request = UpdateRequest(action="remove", document="stores")
            assert wire(remote, request) == wire(single, request)
            assert replica_set.sequence == 1
            probe = SearchRequest(query="store texas", document="stores")
            assert wire(remote, probe) == wire(single, probe)


class TestShardPartition:
    def test_partitioned_shard_degrades_to_structured_error(self, tmp_path, single):
        with spawn_cluster(tmp_path, replicas=2) as remote:
            dead_shard = remote._registry()["stores"]
            for process in processes_of_shard(remote, dead_shard):
                process.kill()

            # Reads on the dead shard: a structured internal error, never a
            # raised exception out of the backend surface.
            raw = json.loads(
                wire(remote, SearchRequest(query="store texas", document="stores"))
            )
            assert raw["kind"] == "error"
            assert raw["code"] == "internal"
            assert "unreachable" in raw["message"]
            assert raw["request"]["document"] == "stores"

            # A batch touching the dead shard degrades the same way, with
            # the caller's full batch echoed.
            batch = BatchRequest(queries=("store",), documents=None)
            raw = json.loads(wire(remote, batch))
            assert raw["kind"] == "error"
            assert raw["code"] == "internal"
            assert raw["request"]["kind"] == "batch"

            # Every other shard keeps serving byte-identical answers.
            live = [
                name
                for name, owner in remote._registry().items()
                if owner != dead_shard
            ]
            assert live, "the partition test needs a surviving shard"
            for name in live:
                request = SearchRequest(query="author movie store", document=name)
                assert wire(remote, request) == wire(single, request)
            live_batch = BatchRequest(queries=("author",), documents=tuple(sorted(live)))
            assert wire(remote, live_batch) == wire(single, live_batch)

    def test_recovered_replica_is_marked_up_by_monitor_only(self, tmp_path):
        # mark_down by the serving path is sticky until a probe succeeds:
        # the monitor owns the up transition.
        with spawn_cluster(tmp_path, replicas=2) as remote:
            monitor = HealthMonitor(remote.replica_sets)
            replica_set = remote.replica_sets[0]
            endpoint = replica_set.replicas[0]
            replica_set.mark_down(endpoint)  # spurious mark: process is alive
            assert not endpoint.healthy
            monitor.check_once()  # the probe reaches the live process
            assert endpoint.healthy
