"""Property test: a sharded cluster is byte-identical to one corpus.

For random corpora, shard counts, partitioners and add/update/remove
sequences applied through the wire protocol, the cluster router's
search/batch responses must be byte-identical to a single-corpus
:class:`~repro.api.SnippetService` that received the same requests
(ISSUE 4 acceptance criterion; mirrors
``tests/property/test_property_incremental.py``).
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import BatchRequest, SearchRequest, SnippetService, UpdateRequest
from repro.cluster import ClusterService, ExplicitPartitioner, HashPartitioner
from repro.corpus import Corpus
from repro.xmltree.node import XMLNode
from repro.xmltree.serialize import to_xml_string
from repro.xmltree.tree import XMLTree

TAGS = ("store", "item", "name", "city", "category", "info")
VALUES = ("texas", "houston", "austin", "suit", "outwear", "alpha", "beta")
QUERIES = ("store texas", "city houston", "item suit", "alpha", "name beta")
DOC_NAMES = ("doc-a", "doc-b", "doc-c", "doc-d")


@st.composite
def small_xml(draw) -> str:
    """A small random document over the shared vocabulary, as XML text —
    the wire form both services ingest through UpdateRequest."""

    def build(depth: int) -> XMLNode:
        node = XMLNode(draw(st.sampled_from(TAGS)))
        if depth >= 3 or draw(st.booleans()):
            node.text = draw(st.sampled_from(VALUES))
            return node
        for _ in range(draw(st.integers(min_value=1, max_value=3))):
            node.append_child(build(depth + 1))
        return node

    root = XMLNode("root")
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        root.append_child(build(1))
    return to_xml_string(XMLTree(root, name="property-doc"))


@st.composite
def scenarios(draw):
    """(shards, partitioner factory, wire operations) for one example.

    Operations are UpdateRequest payloads: upserts of random documents
    (sometimes re-upserting a registered name — an update, possibly
    structural) and removals (sometimes of unregistered names — the error
    path, which must also match byte for byte).
    """
    shards = draw(st.integers(min_value=1, max_value=4))
    if draw(st.booleans()):
        partitioner = HashPartitioner(shards)
    else:
        assignments = {
            name: draw(st.integers(min_value=0, max_value=shards - 1))
            for name in DOC_NAMES
        }
        partitioner = ExplicitPartitioner(assignments, shards, default=0)
    operations = []
    for _ in range(draw(st.integers(min_value=2, max_value=8))):
        name = draw(st.sampled_from(DOC_NAMES))
        if draw(st.integers(min_value=0, max_value=9)) < 3:
            operations.append(UpdateRequest(document=name, action="remove"))
        else:
            operations.append(UpdateRequest(document=name, xml=draw(small_xml())))
    return shards, partitioner, operations


def wire(service, payload: dict) -> str:
    return json.dumps(service.handle_dict(payload), sort_keys=True)


@settings(max_examples=20, deadline=None)
@given(scenarios())
def test_cluster_matches_single_corpus_byte_for_byte(scenario):
    shards, partitioner, operations = scenario

    single = SnippetService(Corpus())
    cluster = ClusterService.from_corpus(Corpus(), partitioner=partitioner)

    def probe() -> None:
        # Interleave queries so caches are populated and carried along the
        # way on both sides, not just compared cold at the end.
        for name in DOC_NAMES[:2]:
            payload = SearchRequest(
                query=QUERIES[0], document=name, size_bound=6, page_size=2
            ).to_dict()
            assert wire(cluster, payload) == wire(single, payload)

    for request in operations:
        payload = request.to_dict()
        assert wire(cluster, payload) == wire(single, payload), payload
        probe()

    assert cluster.names() == single.corpus.names()
    for name in cluster.names() + ["never-registered"]:
        for query in QUERIES:
            payload = SearchRequest(
                query=query, document=name, size_bound=6, page_size=2
            ).to_dict()
            assert wire(cluster, payload) == wire(single, payload), (name, query)
    batch = BatchRequest(queries=QUERIES[:3], size_bound=6).to_dict()
    assert wire(cluster, batch) == wire(single, batch)
