"""Tests for the experiment registry and the figure experiments.

The heavier sweep experiments (E1-E7, A1-A2) are exercised with reduced
parameters so the whole suite stays fast; their full-size versions are the
benchmark targets.
"""

from __future__ import annotations

import pytest

from repro.errors import EvaluationError
from repro.eval.experiments import EXPERIMENTS, list_experiments, run_experiment
from repro.eval.figures import (
    FIGURE2_EXPECTED_CONTENT,
    brook_brothers_result,
    run_figure1,
    run_figure2,
    run_figure3,
    run_figure5,
)


class TestRegistry:
    def test_all_design_md_experiments_registered(self):
        expected = {"F1", "F2", "F3", "F5", "E1", "E2", "E3", "E4", "E5", "E6", "E7", "A1", "A2", "A3"}
        assert expected <= set(list_experiments())

    def test_specs_have_descriptions_and_runners(self):
        for spec in EXPERIMENTS.values():
            assert spec.description
            assert callable(spec.runner)

    def test_unknown_experiment_raises(self):
        with pytest.raises(EvaluationError):
            run_experiment("Z9")


class TestFigureExperiments:
    def test_f1_counts_match(self, figure1_idx):
        table = run_figure1(figure1_idx)
        assert len(table) == 21
        for row in table.rows:
            assert row["paper_count"] == row["measured_count"]

    def test_f2_all_content_present(self, figure1_idx):
        table = run_figure2(figure1_idx)
        assert len(table) == len(FIGURE2_EXPECTED_CONTENT)
        assert all(row["present_in_generated_snippet"] == 1 for row in table.rows)

    def test_f3_items_and_scores_match(self, figure1_idx):
        table = run_figure3(figure1_idx)
        assert len(table) == 12
        for row in table.rows:
            assert row["paper_item"] == row["measured_item"]
            if row["paper_score"] != "":
                assert abs(float(row["measured_score"]) - float(row["paper_score"])) <= 0.08

    def test_f5_walkthrough_holds(self):
        table = run_figure5()
        assert {row["store"] for row in table.rows} == {"Levis", "ESprit"}
        for row in table.rows:
            assert row["within_bound"] == 1
            assert row["shows_store_name"] == 1
            assert row["shows_dominant_category"] == 1

    def test_brook_brothers_result_helper_raises_on_wrong_document(self, movies_idx):
        with pytest.raises(EvaluationError):
            brook_brothers_result(movies_idx)


class TestSweepExperimentsSmall:
    def test_e1_rows_scale_with_results(self):
        from repro.eval.efficiency import run_time_vs_results

        table = run_time_vs_results(retailer_counts=(2, 4), stores_per_retailer=3, clothes_per_store=3)
        assert len(table) == 2
        results = table.column("results")
        assert results[1] > results[0]

    def test_e2_coverage_grows_with_bound(self):
        from repro.eval.efficiency import run_time_vs_bound

        table = run_time_vs_bound(bounds=(4, 12), retailers=4)
        covered = table.column("mean_items_covered")
        assert covered[1] >= covered[0]

    def test_e3_rows_scale_with_docsize(self):
        from repro.eval.efficiency import run_time_vs_docsize

        table = run_time_vs_docsize(scales=(1, 2))
        nodes = table.column("nodes")
        assert nodes[1] > nodes[0]

    def test_e4_greedy_close_to_optimal(self):
        from repro.eval.quality import run_greedy_vs_optimal

        table = run_greedy_vs_optimal(bounds=(4, 8), queries=("store texas",))
        for row in table.rows:
            assert row["greedy_items"] <= row["optimal_items"] + 1e-9
            assert row["greedy_over_optimal"] >= 0.8
            assert row["optimal_items"] >= row["random_items"]

    def test_e5_dominance_beats_raw_frequency(self):
        from repro.eval.quality import run_feature_quality

        table = run_feature_quality(seeds=(0, 1), top_k=3)
        assert all(row["dominance_hit"] == 1 for row in table.rows)
        assert sum(row["raw_frequency_hit"] for row in table.rows) < len(table.rows)

    def test_e6_extract_beats_text_window(self):
        from repro.eval.userstudy import run_user_study

        table = run_user_study(size_bound=8, queries_per_dataset=4, seed=3)
        accuracy = {row["method"]: row["accuracy"] for row in table.rows}
        assert accuracy["extract"] >= accuracy["text_window"]
        assert accuracy["extract"] >= accuracy["random"]

    def test_e7_semantics_agree_and_scale(self):
        from repro.eval.efficiency import run_search_engine_scaling

        table = run_search_engine_scaling(scales=(1, 2))
        assert table.column("nodes")[1] > table.column("nodes")[0]

    def test_a1_dominance_ranking_wins(self):
        from repro.eval.ablation import run_ablation_dominance

        table = run_ablation_dominance(size_bound=10, queries_per_dataset=3, seed=2)
        by_key = {(row["dataset"], row["ranking"]): row for row in table.rows}
        for dataset in ("retail", "movies"):
            assert (
                by_key[(dataset, "dominance_score")]["mean_dominance_mass_coverage"]
                >= by_key[(dataset, "raw_frequency")]["mean_dominance_mass_coverage"]
            )

    def test_a2_greedy_closest_wins(self):
        from repro.eval.ablation import run_ablation_selector

        table = run_ablation_selector(size_bound=10, queries_per_dataset=3, seed=2)
        by_key = {(row["dataset"], row["strategy"]): row for row in table.rows}
        for dataset in ("retail", "movies"):
            assert (
                by_key[(dataset, "greedy_closest")]["mean_items_covered"]
                >= by_key[(dataset, "random_instance")]["mean_items_covered"]
            )

    def test_a3_distinct_postprocessing_improves_distinguishability(self):
        from repro.eval.ablation import run_ablation_distinct

        table = run_ablation_distinct(bounds=(6, 8), stores=4)
        for row in table.rows:
            assert row["distinct_distinguishability"] >= row["per_result_distinguishability"]
            assert row["max_edges"] <= row["size_bound"]
        assert table.rows[-1]["distinct_distinguishability"] >= 0.99

    def test_e5b_quality_by_dataset(self):
        from repro.eval.quality import run_snippet_quality_by_dataset

        table = run_snippet_quality_by_dataset(size_bound=10, queries_per_dataset=3, seed=4)
        assert len(table) == 2
        for row in table.rows:
            assert row["mean_ilist_coverage"] > 0.5
            assert row["key_in_snippet_rate"] > 0.5

    def test_e6b_distinguishability(self):
        from repro.eval.userstudy import run_distinguishability_study

        table = run_distinguishability_study(size_bound=8, seed=4, queries=3)
        values = {row["method"]: row["mean_distinguishability"] for row in table.rows}
        assert values["extract"] >= 0.8
