"""Tests for experiment tables."""

from __future__ import annotations

import pytest

from repro.errors import EvaluationError
from repro.eval.reporting import ExperimentTable


@pytest.fixture()
def table():
    table = ExperimentTable(
        experiment_id="T1",
        title="Example table",
        columns=["size", "seconds"],
        notes="a note",
    )
    table.add_row(size=10, seconds=0.5)
    table.add_row(size=20, seconds=1.25)
    return table


class TestRows:
    def test_add_row_and_len(self, table):
        assert len(table) == 2
        assert table.rows[0] == {"size": 10, "seconds": 0.5}

    def test_missing_column_rejected(self, table):
        with pytest.raises(EvaluationError):
            table.add_row(size=30)

    def test_extra_values_ignored(self, table):
        table.add_row(size=30, seconds=2.0, extra="dropped")
        assert "extra" not in table.rows[-1]

    def test_column_accessor(self, table):
        assert table.column("size") == [10, 20]
        with pytest.raises(EvaluationError):
            table.column("missing")


class TestRendering:
    def test_format_text_contains_everything(self, table):
        text = table.format_text()
        assert "[T1] Example table" in text
        assert "size" in text and "seconds" in text
        assert "a note" in text
        assert "0.5000" in text

    def test_format_text_alignment_for_empty_table(self):
        empty = ExperimentTable("T2", "Empty", ["a"])
        assert "[T2]" in empty.format_text()

    def test_format_markdown(self, table):
        markdown = table.format_markdown()
        assert markdown.count("|") >= 8
        assert "---" in markdown

    def test_float_formatting(self):
        table = ExperimentTable("T3", "Floats", ["x"])
        table.add_row(x=1234.5678)
        table.add_row(x=2.34567)
        table.add_row(x=0.001234)
        text = table.format_text()
        assert "1235" in text or "1234" in text
        assert "2.346" in text
        assert "0.0012" in text

    def test_save(self, table, tmp_path):
        target = tmp_path / "table.txt"
        table.save(target)
        assert target.read_text(encoding="utf-8").startswith("[T1]")

    def test_repr(self, table):
        assert "rows=2" in repr(table)
