"""The load harness: seeded determinism, the ablation matrix, measurement.

Three contracts from the PR acceptance list live here:

* **Seeded determinism** — the same profile over the same corpus plans
  byte-identical request sequences (payloads *and* offsets), twice, and
  across independently built corpora.
* **Ablation matrix** — baseline-plus-one-flip enumeration is exhaustive,
  deduplicated (duplicates are errors, not merges) and deterministic.
* **Measurement** — a smoke run against a real in-process
  :class:`HttpServer` fills every report field, the wire bytes under load
  stay identical to in-process ``handle_json``, and the report rows the
  harness emits agree with ``benchmarks/reporting.py`` (schema v2).
"""

from __future__ import annotations

import importlib.util
import json
import pathlib

import pytest

from repro.api import SnippetService
from repro.api.http import HttpServer
from repro.corpus import Corpus
from repro.errors import EvaluationError
from repro.eval import loadgen
from repro.eval.loadgen import (
    AblationFlag,
    FlagValue,
    LoadProfile,
    SMOKE_PROFILE,
    ablation_matrix,
    build_plan,
    default_flags,
    parse_mix,
    percentile,
    report_rows,
    run_load,
    smoke_flags,
    write_report_file,
)

_REPORTING_PATH = (
    pathlib.Path(__file__).resolve().parents[2] / "benchmarks" / "reporting.py"
)


def _load_reporting():
    spec = importlib.util.spec_from_file_location("bench_reporting", _REPORTING_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _fresh_corpus() -> Corpus:
    corpus = Corpus()
    corpus.add_builtin("figure5-stores", name="stores")
    corpus.add_builtin("retail")
    return corpus


# ---------------------------------------------------------------------- #
# layer 1: seeded determinism of the plan
# ---------------------------------------------------------------------- #
class TestPlanDeterminism:
    def test_same_seed_same_sequence(self):
        profile = LoadProfile(seed=7, requests=40)
        first = build_plan(_fresh_corpus(), profile)
        second = build_plan(_fresh_corpus(), profile)
        assert first.signature() == second.signature()
        assert first.sequence() == second.sequence()
        assert [p.offset for p in first.requests] == [
            p.offset for p in second.requests
        ]

    def test_different_seed_different_sequence(self):
        corpus = _fresh_corpus()
        assert (
            build_plan(corpus, LoadProfile(seed=7, requests=40)).signature()
            != build_plan(corpus, LoadProfile(seed=8, requests=40)).signature()
        )

    def test_smoke_profile_plans_a_mixed_stream(self):
        plan = build_plan(_fresh_corpus(), SMOKE_PROFILE)
        assert len(plan) == SMOKE_PROFILE.requests
        kinds = {planned.kind for planned in plan.requests}
        assert kinds == {"search", "batch", "update"}

    def test_pure_mix_plans_only_that_kind(self):
        profile = LoadProfile(
            seed=3, requests=20, search_weight=0.0, batch_weight=0.0,
            update_weight=1.0,
        )
        plan = build_plan(_fresh_corpus(), profile)
        assert {planned.kind for planned in plan.requests} == {"update"}

    def test_closed_arrivals_have_zero_offsets(self):
        plan = build_plan(_fresh_corpus(), LoadProfile(seed=1, requests=10))
        assert [planned.offset for planned in plan.requests] == [0.0] * 10

    def test_fixed_arrivals_pace_at_the_rate(self):
        profile = LoadProfile(seed=1, requests=5, arrival="fixed", rate_rps=10.0)
        plan = build_plan(_fresh_corpus(), profile)
        assert [planned.offset for planned in plan.requests] == [
            pytest.approx(index / 10.0) for index in range(5)
        ]

    def test_poisson_arrivals_are_monotone_and_seeded(self):
        profile = LoadProfile(seed=5, requests=20, arrival="poisson", rate_rps=50.0)
        offsets = [p.offset for p in build_plan(_fresh_corpus(), profile).requests]
        assert offsets == sorted(offsets)
        assert offsets[-1] > 0.0
        again = [p.offset for p in build_plan(_fresh_corpus(), profile).requests]
        assert offsets == again

    def test_empty_corpus_is_an_error(self):
        with pytest.raises(EvaluationError):
            build_plan(Corpus(), LoadProfile(seed=1))

    @pytest.mark.parametrize(
        "profile",
        [
            LoadProfile(requests=0),
            LoadProfile(concurrency=0),
            LoadProfile(arrival="bursty"),
            LoadProfile(arrival="poisson"),  # open loop without a rate
            LoadProfile(arrival="fixed", rate_rps=0.0),
            LoadProfile(search_weight=-1.0),
            LoadProfile(search_weight=0.0, batch_weight=0.0, update_weight=0.0),
            LoadProfile(duration_seconds=0.0),
            LoadProfile(batch_size=0),
            LoadProfile(seed=True),
        ],
    )
    def test_invalid_profiles_rejected(self, profile):
        with pytest.raises(EvaluationError):
            profile.validate()

    def test_parse_mix(self):
        assert parse_mix("search=0.8,batch=0.15,update=0.05") == {
            "search": 0.8, "batch": 0.15, "update": 0.05,
        }
        assert parse_mix("search=1") == {"search": 1.0, "batch": 0.0, "update": 0.0}
        for bad in ("scan=1", "search", "search=x", "search=0,batch=0,update=0"):
            with pytest.raises(EvaluationError):
                parse_mix(bad)

    def test_percentile(self):
        assert percentile([], 50) is None
        assert percentile([0.42], 99) == 0.42
        samples = [float(value) for value in range(1, 101)]
        assert percentile(samples, 50) == 50.0
        assert percentile(samples, 95) == 95.0
        assert percentile(samples, 99) == 99.0
        assert percentile(samples, 100) == 100.0


# ---------------------------------------------------------------------- #
# layer 3: the matrix generator (no servers involved)
# ---------------------------------------------------------------------- #
class TestAblationMatrix:
    FLAGS = [
        AblationFlag(
            name="caches",
            baseline=FlagValue("on"),
            variants=(FlagValue("off", ("--cache-size", "0")),),
        ),
        AblationFlag(
            name="max-in-flight",
            baseline=FlagValue("unlimited"),
            variants=(
                FlagValue("2", ("--max-in-flight", "2")),
                FlagValue("8", ("--max-in-flight", "8")),
            ),
        ),
    ]

    def test_exhaustive_one_flip_each(self):
        matrix = ablation_matrix(self.FLAGS)
        assert [config.name for config in matrix] == [
            "baseline", "caches=off", "max-in-flight=2", "max-in-flight=8",
        ]
        # every variant of every flag appears exactly once, flipped alone
        assert matrix[1].values == (("caches", "off"), ("max-in-flight", "unlimited"))
        assert matrix[2].values == (("caches", "on"), ("max-in-flight", "2"))

    def test_argv_carries_only_the_flip(self):
        matrix = ablation_matrix(self.FLAGS)
        assert matrix[0].argv == ()  # baseline: every flag at default
        assert matrix[1].argv == ("--cache-size", "0")
        assert matrix[3].argv == ("--max-in-flight", "8")

    def test_deterministic(self):
        assert ablation_matrix(self.FLAGS) == ablation_matrix(self.FLAGS)

    def test_duplicate_flag_name_is_an_error(self):
        flags = [self.FLAGS[0], self.FLAGS[0]]
        with pytest.raises(EvaluationError):
            ablation_matrix(flags)

    def test_duplicate_variant_label_is_an_error(self):
        flag = AblationFlag(
            name="caches",
            baseline=FlagValue("on"),
            variants=(FlagValue("off"), FlagValue("off", ("--cache-size", "0"))),
        )
        with pytest.raises(EvaluationError):
            ablation_matrix([flag])

    def test_variant_shadowing_baseline_is_an_error(self):
        flag = AblationFlag(
            name="caches", baseline=FlagValue("on"), variants=(FlagValue("on"),)
        )
        with pytest.raises(EvaluationError):
            ablation_matrix([flag])

    def test_empty_matrix_is_an_error(self):
        with pytest.raises(EvaluationError):
            ablation_matrix([])

    def test_builtin_matrices(self):
        smoke = ablation_matrix(smoke_flags())
        assert len(smoke) >= 4  # the CI acceptance floor
        assert smoke[0].name == "baseline"
        full = ablation_matrix(default_flags())
        assert len(full) == 1 + sum(len(f.variants) for f in default_flags())


# ---------------------------------------------------------------------- #
# layer 2: measurement against a real in-process server
# ---------------------------------------------------------------------- #
class TestRunLoad:
    @pytest.fixture(scope="class")
    def run(self):
        corpus = _fresh_corpus()
        plan = build_plan(corpus, LoadProfile(seed=7, requests=24, concurrency=2))
        with HttpServer(SnippetService(corpus), port=0) as server:
            report = run_load(plan, port=server.port)
        return plan, report

    def test_every_report_field_is_filled(self, run):
        plan, report = run
        assert report.requests_sent == len(plan)
        assert set(report.latency) == {"p50", "p95", "p99"}
        assert all(value is not None and value > 0 for value in report.latency.values())
        assert report.latency["p50"] <= report.latency["p95"] <= report.latency["p99"]
        assert report.throughput_rps > 0
        assert report.errors == 0 and report.error_rate == 0.0
        assert report.shed == 0 and report.shed_rate == 0.0
        assert sum(report.by_kind.values()) == report.requests_sent

    def test_cache_hit_rate_measured_from_stats_delta(self, run):
        _, report = run
        # the Zipf-skewed stream repeats hot queries, so the delta of the
        # serving caches over exactly this run must show hits
        assert report.cache_hit_rate is not None
        assert 0.0 < report.cache_hit_rate <= 1.0

    def test_report_rows_carry_the_v2_fields(self, run):
        _, report = run
        (row,) = report_rows(report)
        assert row["op"] == "loadgen_mixed"
        assert row["requests"] == report.requests_sent
        assert set(row["latency"]) == {"p50", "p95", "p99"}
        for field in ("seconds", "throughput_rps", "error_rate", "shed_rate"):
            assert isinstance(row[field], float)

    def test_to_dict_is_json_clean(self, run):
        _, report = run
        round_tripped = json.loads(json.dumps(report.to_dict()))
        assert round_tripped["requests_sent"] == report.requests_sent


class TestWireBytesUnderLoad:
    def test_served_bytes_identical_to_handle_json(self):
        corpus = _fresh_corpus()
        plan = build_plan(corpus, LoadProfile(seed=11, requests=16))
        reference = SnippetService(_fresh_corpus())
        import http.client

        with HttpServer(SnippetService(corpus), port=0) as server:
            connection = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
            try:
                for planned in plan.requests:
                    text = json.dumps(planned.payload, sort_keys=True)
                    expected = reference.handle_json(text)
                    connection.request(
                        "POST", f"/v1/{planned.kind}", body=text.encode("utf-8")
                    )
                    response = connection.getresponse()
                    body = response.read().decode("utf-8")
                    assert body == expected, (planned.kind, planned.payload)
            finally:
                connection.close()


# ---------------------------------------------------------------------- #
# the report contract with benchmarks/reporting.py
# ---------------------------------------------------------------------- #
class TestReportSchema:
    def test_schema_versions_pinned_together(self):
        reporting = _load_reporting()
        assert loadgen.REPORT_SCHEMA_VERSION == reporting.REPORT_SCHEMA_VERSION
        assert (
            loadgen.REPORT_SCHEMA_VERSION in reporting.COMPATIBLE_SCHEMA_VERSIONS
        )

    def test_write_report_file_matches_record_benchmark(self, tmp_path, monkeypatch):
        reporting = _load_reporting()
        rows = [
            {
                "op": "loadgen_mixed",
                "seconds": 1.5,
                "requests": 48,
                "latency": {"p50": 0.01, "p95": 0.02, "p99": 0.03},
                "throughput_rps": 32.0,
                "error_rate": 0.0,
                "shed_rate": 0.0,
                "cache_hit_rate": 0.5,
            }
        ]
        cli_path = tmp_path / "BENCH_cli.json"
        write_report_file(rows, str(cli_path), benchmark="loadgen")
        monkeypatch.setenv(reporting.REPORT_DIR_ENV, str(tmp_path))
        bench_path = reporting.record_benchmark("loadgen", rows)
        cli_report = json.loads(cli_path.read_text())
        bench_report = json.loads(pathlib.Path(bench_path).read_text())
        assert cli_report == bench_report

    def test_v1_reports_still_load_and_merge(self, tmp_path, monkeypatch):
        reporting = _load_reporting()
        monkeypatch.setenv(reporting.REPORT_DIR_ENV, str(tmp_path))
        v1 = {
            "schema_version": 1,
            "benchmark": "loadgen",
            "results": [{"op": "old_point", "seconds": 2.0}],
        }
        pathlib.Path(reporting.report_path("loadgen")).write_text(
            json.dumps(v1), encoding="utf-8"
        )
        assert reporting.load_report("loadgen") == v1
        reporting.record_benchmark(
            "loadgen", [{"op": "loadgen_mixed", "seconds": 1.0, "requests": 4}]
        )
        merged = reporting.load_report("loadgen")
        assert merged["schema_version"] == reporting.REPORT_SCHEMA_VERSION
        assert [row["op"] for row in merged["results"]] == [
            "loadgen_mixed", "old_point",
        ]
