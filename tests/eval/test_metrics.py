"""Tests for snippet quality metrics."""

from __future__ import annotations

import pytest

from repro.eval.metrics import (
    distinguishability,
    evaluate_snippet,
    mean,
    snippet_signature,
    text_snippet_contains,
)
from repro.search.engine import SearchEngine
from repro.snippet.baselines import TextWindowSnippetGenerator
from repro.snippet.generator import SnippetGenerator


@pytest.fixture()
def figure5_snippets(figure5_idx):
    results = SearchEngine(figure5_idx).search("store texas")
    generator = SnippetGenerator(figure5_idx.analyzer)
    return [generator.generate(result, size_bound=6) for result in results]


class TestEvaluateSnippet:
    def test_metrics_in_unit_range(self, figure5_snippets):
        for generated in figure5_snippets:
            quality = evaluate_snippet(generated)
            assert 0.0 <= quality.ilist_coverage <= 1.0
            assert 0.0 <= quality.keyword_coverage <= 1.0
            assert 0.0 <= quality.entity_name_coverage <= 1.0
            assert 0.0 <= quality.dominant_feature_coverage <= 1.0
            assert 0.0 <= quality.dominance_mass_coverage <= 1.0
            assert quality.within_bound

    def test_key_detected(self, figure5_snippets):
        assert all(evaluate_snippet(generated).has_result_key for generated in figure5_snippets)

    def test_full_budget_gives_full_coverage(self, figure5_idx):
        results = SearchEngine(figure5_idx).search("store texas")
        generated = SnippetGenerator(figure5_idx.analyzer).generate(results[0], size_bound=1000)
        quality = evaluate_snippet(generated)
        assert quality.ilist_coverage == pytest.approx(1.0)
        assert quality.dominance_mass_coverage == pytest.approx(1.0)

    def test_as_dict_round_trip(self, figure5_snippets):
        quality = evaluate_snippet(figure5_snippets[0])
        data = quality.as_dict()
        assert data["ilist_coverage"] == quality.ilist_coverage
        assert data["has_result_key"] in (0.0, 1.0)

    def test_tiny_bound_reduces_coverage(self, figure5_idx):
        results = SearchEngine(figure5_idx).search("store texas")
        generator = SnippetGenerator(figure5_idx.analyzer)
        small = evaluate_snippet(generator.generate(results[0], size_bound=2))
        large = evaluate_snippet(generator.generate(results[0], size_bound=20))
        assert small.ilist_coverage <= large.ilist_coverage


class TestSignaturesAndDistinguishability:
    def test_signature_contains_tag_value_pairs(self, figure5_snippets):
        signature = snippet_signature(figure5_snippets[0])
        assert any(part.startswith("name=") for part in signature)

    def test_different_results_distinguishable(self, figure5_snippets):
        assert distinguishability(figure5_snippets) == pytest.approx(1.0)

    def test_single_snippet_trivially_distinguishable(self, figure5_snippets):
        assert distinguishability(figure5_snippets[:1]) == 1.0

    def test_identical_snippets_not_distinguishable(self, figure5_snippets):
        assert distinguishability([figure5_snippets[0], figure5_snippets[0]]) == 0.0


class TestTextHelpers:
    def test_text_snippet_contains(self, figure5_idx):
        results = SearchEngine(figure5_idx).search("store texas")
        snippet = TextWindowSnippetGenerator().generate(results[0], 10)
        assert text_snippet_contains(snippet, "texas") or text_snippet_contains(snippet, "Levis")
        assert not text_snippet_contains(snippet, "antarctica")

    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert mean([]) == 0.0
