"""Tests for workload generation."""

from __future__ import annotations

import pytest

from repro.errors import EvaluationError
from repro.eval.workload import WorkloadGenerator
from repro.search.engine import SearchEngine


class TestWorkloadGenerator:
    def test_generates_requested_number(self, retail_idx):
        workload = WorkloadGenerator(retail_idx, seed=1).generate(query_count=8, keywords_per_query=2)
        assert len(workload) == 8
        assert len(set(workload.texts())) == 8

    def test_queries_have_requested_keyword_count(self, retail_idx):
        workload = WorkloadGenerator(retail_idx, seed=2).generate(query_count=5, keywords_per_query=3)
        assert all(query.size <= 3 for query in workload)
        assert all(query.size >= 2 for query in workload)

    def test_entity_keyword_included(self, retail_idx):
        generator = WorkloadGenerator(retail_idx, seed=3)
        entities = set(generator.entity_keywords())
        workload = generator.generate(query_count=5, keywords_per_query=2, include_entity_keyword=True)
        assert all(query.keywords[0] in entities for query in workload)

    def test_most_queries_have_results(self, retail_idx):
        workload = WorkloadGenerator(retail_idx, seed=4).generate(query_count=6, keywords_per_query=2)
        engine = SearchEngine(retail_idx)
        with_results = sum(1 for query in workload if len(engine.search(query)) > 0)
        assert with_results >= len(workload) // 2

    def test_deterministic_for_seed(self, retail_idx):
        first = WorkloadGenerator(retail_idx, seed=5).generate(query_count=5)
        second = WorkloadGenerator(retail_idx, seed=5).generate(query_count=5)
        assert first.texts() == second.texts()

    def test_value_keywords_are_frequent_tokens(self, retail_idx):
        generator = WorkloadGenerator(retail_idx, seed=6)
        values = generator.value_keywords(min_occurrences=2, limit=20)
        assert values
        assert all(retail_idx.inverted.document_frequency(term) >= 2 for term in values)

    def test_invalid_keyword_count(self, retail_idx):
        with pytest.raises(EvaluationError):
            WorkloadGenerator(retail_idx).generate(keywords_per_query=0)

    def test_fixed_paper_queries(self, retail_idx):
        workload = WorkloadGenerator(retail_idx).fixed_paper_queries()
        assert workload.texts() == ["Texas, apparel, retailer", "store texas"]

    def test_workload_protocol(self, retail_idx):
        workload = WorkloadGenerator(retail_idx, seed=7).generate(query_count=3)
        assert workload[0] is list(workload)[0]
        assert len(workload.texts()) == 3
