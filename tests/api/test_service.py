"""Tests for the SnippetService facade (and the deprecated shims over it)."""

from __future__ import annotations

import json

import pytest

from repro.api import (
    BatchRequest,
    ErrorResponse,
    SearchRequest,
    SearchResponse,
    SnippetService,
)
from repro.corpus import Corpus
from repro.errors import ExtractError, ProtocolError
from repro.xmltree.builder import tree_from_dict


@pytest.fixture()
def corpus(small_retailer_tree):
    corpus = Corpus()
    corpus.add_tree("retailer", small_retailer_tree)
    corpus.add_builtin("figure5-stores", name="stores")
    return corpus


@pytest.fixture()
def service(corpus):
    return SnippetService(corpus)


class TestRun:
    def test_basic_response_shape(self, service):
        response = service.run(SearchRequest(query="store texas", document="stores", size_bound=6))
        assert isinstance(response, SearchResponse)
        assert response.document == "stores"
        assert response.keywords == ("store", "texas")
        assert response.algorithm == "slca"
        assert response.total_results == len(response.results) >= 2
        assert response.next_page is None
        for payload in response.results:
            assert payload.snippet_edges <= 6
            assert payload.text
            assert payload.root_tag == "store"

    def test_unknown_document_raises(self, service):
        with pytest.raises(ExtractError):
            service.run(SearchRequest(query="store", document="nope"))

    def test_execute_wraps_errors(self, service):
        response = service.execute(SearchRequest(query="store", document="nope"))
        assert isinstance(response, ErrorResponse)
        assert response.error == "UnknownDocumentError"
        assert response.code == "unknown_document"
        assert response.request["document"] == "nope"

    def test_invalid_request_is_protocol_error(self, service):
        response = service.execute(SearchRequest(query="store", document="stores", page=0))
        assert isinstance(response, ErrorResponse)
        assert response.error == "ProtocolError"

    def test_limit_caps_results(self, service):
        response = service.run(
            SearchRequest(query="store texas", document="stores", size_bound=6, limit=1)
        )
        assert len(response.results) == 1
        assert response.total_results >= 2  # pre-limit count is preserved

    def test_results_only_request_skips_snippets(self, service):
        response = service.run(
            SearchRequest(query="store texas", document="stores", include_snippets=False)
        )
        assert len(response.results) >= 2
        for payload in response.results:
            assert payload.text is None
            assert payload.snippet_edges is None
            assert payload.result_edges > 0

    def test_meta_only_when_requested(self, service):
        bare = service.run(SearchRequest(query="store texas", document="stores", size_bound=6))
        assert bare.timings == {}
        cold = service.run(
            SearchRequest(
                query="store austin", document="stores", size_bound=6, include_meta=True
            )
        )
        assert {"search", "snippets"} <= set(cold.timings)

    def test_warm_meta_reports_no_phase_timings(self, service):
        request = SearchRequest(
            query="store texas", document="stores", size_bound=6, include_meta=True
        )
        cold = service.run(request)
        warm = service.run(request)
        assert cold.from_cache is False and {"search", "snippets"} <= set(cold.timings)
        # a cache hit did no phase work; stale cold timings would
        # contradict the hit's near-zero wall clock
        assert warm.from_cache is True and warm.timings == {}

    def test_results_only_cache_provenance_in_meta(self, service):
        request = SearchRequest(
            query="store texas", document="stores", include_snippets=False, include_meta=True
        )
        assert service.run(request).from_cache is False
        warm = service.run(request)
        assert warm.from_cache is True
        assert warm.timings == {}  # a cache hit skips the engine

    def test_shim_run_skips_payload_construction(self, service):
        response = service.run(
            SearchRequest(query="store texas", document="stores", size_bound=6),
            build_payloads=False,
        )
        assert response.results == ()
        assert response.total_results >= 2
        assert response.outcome is not None  # the raw handle the shims consume

    def test_results_only_meta_has_engine_timings(self, service):
        response = service.run(
            SearchRequest(
                query="store texas", document="stores",
                include_snippets=False, include_meta=True, use_cache=False,
            )
        )
        assert {"lookup", "lca", "ranking"} <= set(response.timings)

    def test_results_only_request_leaves_engine_state_untouched(self, service, corpus):
        service.run(
            SearchRequest(query="store texas", document="stores", include_snippets=False)
        )
        assert corpus.system("stores").engine.timings.phases == {}


class TestPagination:
    def test_page_walk_covers_everything_once(self, service):
        full = service.run(SearchRequest(query="store", document="stores", size_bound=6))
        request = SearchRequest(query="store", document="stores", size_bound=6, page_size=2)
        seen: list[int] = []
        pages = 0
        while True:
            response = service.run(request)
            assert len(response.results) <= 2
            seen.extend(payload.result_id for payload in response.results)
            pages += 1
            if response.next_page is None:
                break
            request = request.with_page(response.next_page)
        assert seen == [payload.result_id for payload in full.results]
        assert pages == (len(full.results) + 1) // 2

    def test_all_pages_share_one_cached_outcome(self, service, corpus):
        request = SearchRequest(query="store", document="stores", size_bound=6, page_size=1)
        first = service.run(request)
        assert first.from_cache is False
        second = service.run(request.with_page(first.next_page))
        # page 2 is served from the same cached outcome, not recomputed
        assert second.from_cache is True

    def test_page_past_the_end_is_empty(self, service):
        response = service.run(
            SearchRequest(query="store texas", document="stores", size_bound=6, page=99, page_size=5)
        )
        assert response.results == ()
        assert response.next_page is None

    def test_page_size_none_is_one_page(self, service):
        response = service.run(SearchRequest(query="store texas", document="stores", size_bound=6))
        assert response.page == 1
        assert response.page_size is None
        assert response.next_page is None


class TestNextPageBoundaries:
    """ISSUE 3 satellite: no token may ever point at an empty trailing page."""

    def walk(self, service, request: SearchRequest) -> list[SearchResponse]:
        responses = []
        while True:
            response = service.run(request)
            responses.append(response)
            if response.next_page is None:
                break
            request = request.with_page(response.next_page)
        return responses

    def total(self, service, query: str) -> int:
        return service.run(
            SearchRequest(query=query, document="stores", size_bound=6)
        ).total_results

    def test_exact_multiple_emits_no_trailing_token(self, service):
        count = self.total(service, "store")
        assert count >= 2
        divisor = next(size for size in (2, 3, count) if count % size == 0)
        responses = self.walk(
            service,
            SearchRequest(query="store", document="stores", size_bound=6, page_size=divisor),
        )
        # every page non-empty, count/divisor pages, last token absent
        assert len(responses) == count // divisor
        assert all(response.results for response in responses)
        assert responses[-1].next_page is None

    def test_one_over_gets_a_final_short_page(self, service):
        count = self.total(service, "store")
        size = count - 1
        if size < 1:
            pytest.skip("needs at least two results")
        responses = self.walk(
            service,
            SearchRequest(query="store", document="stores", size_bound=6, page_size=size),
        )
        assert len(responses) == 2
        assert len(responses[-1].results) == 1
        assert responses[-1].next_page is None

    def test_empty_result_set_has_no_token(self, service):
        response = service.run(
            SearchRequest(
                query="zzz-no-such-keyword", document="stores", size_bound=6, page_size=3
            )
        )
        assert response.total_results == 0
        assert response.results == ()
        assert response.next_page is None

    def test_results_only_requests_agree(self, service):
        count = self.total(service, "store")
        divisor = next(size for size in (2, 3, count) if count % size == 0)
        responses = self.walk(
            service,
            SearchRequest(
                query="store",
                document="stores",
                size_bound=6,
                page_size=divisor,
                include_snippets=False,
            ),
        )
        assert len(responses) == count // divisor
        assert responses[-1].next_page is None


class TestPagingValidation:
    """Negative pages become ErrorResponses, never wrapped garbage pages."""

    @pytest.mark.parametrize("bad", [{"page": 0}, {"page": -1}, {"page_size": -2}, {"page_size": 0}])
    def test_bad_paging_is_error_response(self, service, bad):
        request = SearchRequest(query="store texas", document="stores", size_bound=6, **bad)
        response = service.execute(request)
        assert isinstance(response, ErrorResponse)
        assert response.error == "ProtocolError"

    def test_bad_paging_over_the_wire(self, service):
        payload = {
            "kind": "search",
            "schema_version": 1,
            "query": "store texas",
            "document": "stores",
            "page": -1,
            "page_size": 2,
        }
        wire = service.handle_dict(payload)
        assert wire["kind"] == "error"
        assert wire["error"] == "ProtocolError"

    def test_internal_page_slice_guard(self, service):
        # Even bypassing request validation, the paging utility refuses to
        # wrap around (PagingError is an ExtractError -> ErrorResponse).
        from repro.errors import PagingError
        from repro.utils.paging import page_slice

        outcome = service.run(
            SearchRequest(query="store texas", document="stores", size_bound=6)
        )
        with pytest.raises(PagingError):
            page_slice(list(outcome.results), page=-1, page_size=1)


class TestBatch:
    def test_batch_covers_queries_and_documents(self, service):
        response = service.run_batch(
            BatchRequest(queries=("store texas", "clothes casual"), size_bound=6)
        )
        assert response.documents == ("retailer", "stores")
        assert len(response.entries) == 2
        for entry in response.entries:
            assert [r.document for r in entry.responses] == ["retailer", "stores"]

    def test_batch_document_subset_in_order(self, service):
        response = service.run_batch(
            BatchRequest(queries=("store texas",), documents=("stores",))
        )
        assert response.documents == ("stores",)
        assert [r.document for r in response.entries[0].responses] == ["stores"]

    def test_batch_unknown_document_errors(self, service):
        result = service.execute_batch(
            BatchRequest(queries=("store",), documents=("ghost",))
        )
        assert isinstance(result, ErrorResponse)

    def test_batch_matches_single_requests(self, service):
        batch = service.run_batch(BatchRequest(queries=("store texas",), size_bound=6))
        single = service.run(
            SearchRequest(query="store texas", document="stores", size_bound=6)
        )
        batch_response = batch.entries[0].responses[1]  # stores
        assert batch_response.to_dict() == single.to_dict()


class TestJsonEndpoints:
    def test_handle_dict_search(self, service):
        payload = SearchRequest(query="store texas", document="stores", size_bound=6).to_dict()
        response = service.handle_dict(payload)
        assert response["kind"] == "search_response"
        assert response["total_results"] >= 2
        assert "meta" not in response

    def test_handle_dict_batch(self, service):
        payload = BatchRequest(queries=("store texas",), size_bound=6).to_dict()
        response = service.handle_dict(payload)
        assert response["kind"] == "batch_response"
        assert response["documents"] == ["retailer", "stores"]

    def test_handle_dict_error_never_raises(self, service):
        response = service.handle_dict({"kind": "search", "schema_version": 1, "query": "store"})
        assert response["kind"] == "error"
        assert response["error"] == "ProtocolError"

    def test_handle_dict_meta_opt_in(self, service):
        payload = SearchRequest(
            query="store texas", document="stores", size_bound=6, include_meta=True
        ).to_dict()
        response = service.handle_dict(payload)
        assert "timings" in response["meta"]

    def test_handle_json_round_trip(self, service):
        text = json.dumps(SearchRequest(query="store texas", document="stores").to_dict())
        response = json.loads(service.handle_json(text))
        assert response["kind"] == "search_response"

    def test_handle_json_malformed_input(self, service):
        response = json.loads(service.handle_json("{not json"))
        assert response["kind"] == "error"
        assert response["error"] == "ProtocolError"

    def test_wrong_schema_version_is_error_response(self, service):
        payload = SearchRequest(query="store", document="stores").to_dict()
        payload["schema_version"] = 99
        response = service.handle_dict(payload)
        assert response["kind"] == "error"


def _cluster_facade(corpus_factory):
    from repro.cluster import ClusterService

    return ClusterService.from_corpus(corpus_factory(), shards=2)


class TestHandleJsonNeverRaises:
    """Satellite regression: every malformed payload — bad JSON, scalars,
    arrays, unhashable ``kind`` values — must come back as a structured
    ``bad_request`` error response, never raise, on *both* facades."""

    MALFORMED = (
        "not json at all",
        "{truncated",
        "[1, 2, 3]",            # JSON, but not an object
        '"scalar"',
        "null",
        "42",
        '{"kind": ["search"]}',  # unhashable kind used to raise TypeError
        '{"kind": {"a": 1}}',
        '{"kind": null}',
        '{"kind": "nope"}',
        "{}",
    )

    @pytest.fixture(params=["service", "cluster"])
    def facade(self, request, small_retailer_tree):
        def fresh():
            corpus = Corpus()
            corpus.add_tree("retailer", small_retailer_tree)
            corpus.add_builtin("figure5-stores", name="stores")
            return corpus

        if request.param == "service":
            return SnippetService(fresh())
        return _cluster_facade(fresh)

    @pytest.mark.parametrize("text", MALFORMED)
    def test_malformed_payload_is_bad_request(self, facade, text):
        response = json.loads(facade.handle_json(text))
        assert response["kind"] == "error"
        assert response["error"] == "ProtocolError"
        assert response["code"] == "bad_request"

    def test_handle_dict_non_object_payload(self, facade):
        for payload in ([1, 2], "scalar", None, 42):
            response = facade.handle_dict(payload)
            assert response["kind"] == "error"
            assert response["code"] == "bad_request"
            assert response["request"] is None  # nothing sane to echo

    def test_unknown_document_code_on_the_wire(self, facade):
        payload = SearchRequest(query="store", document="ghost").to_dict()
        response = facade.handle_dict(payload)
        assert response["kind"] == "error"
        assert response["error"] == "UnknownDocumentError"
        assert response["code"] == "unknown_document"

    def test_error_bytes_identical_across_facades(self, small_retailer_tree):
        def fresh():
            corpus = Corpus()
            corpus.add_tree("retailer", small_retailer_tree)
            return corpus

        single = SnippetService(fresh())
        cluster = _cluster_facade(fresh)
        for text in (*self.MALFORMED, json.dumps(SearchRequest(query="q", document="ghost").to_dict())):
            assert single.handle_json(text) == cluster.handle_json(text)


class TestShimEquivalence:
    """The deprecated surfaces must return exactly what the service returns."""

    def test_extract_system_query_equals_service_execute(self, service, corpus):
        response = service.run(
            SearchRequest(query="store texas", document="stores", size_bound=6, use_cache=False)
        )
        outcome = corpus.system("stores").query("store texas", size_bound=6, use_cache=False)
        assert outcome.render_text() == response.outcome.render_text()
        assert [r.result_id for r in outcome.results] == [
            payload.result_id for payload in response.results
        ]
        assert [f"{r.score:.6f}" for r in outcome.results] == [
            f"{payload.score:.6f}" for payload in response.results
        ]

    def test_corpus_query_unwraps_service_outcome(self, corpus):
        outcome = corpus.query("stores", "store texas", size_bound=6)
        response = corpus.service.run(
            SearchRequest(query="store texas", document="stores", size_bound=6)
        )
        assert response.from_cache is True  # shim populated the same cache
        assert response.outcome.render_text() == outcome.render_text()

    def test_corpus_query_all_matches_individual_queries(self, corpus):
        outcomes = corpus.query_all("store texas", size_bound=6)
        assert set(outcomes) == {"retailer", "stores"}
        for name, outcome in outcomes.items():
            individual = corpus.query(name, "store texas", size_bound=6)
            assert individual.render_text() == outcome.render_text()

    def test_search_batch_report_equals_batch_response(self, corpus):
        report = corpus.search_batch(["store texas"], size_bound=6)
        response = corpus.service.run_batch(
            BatchRequest(queries=("store texas",), size_bound=6)
        )
        for batch_response in response.entries[0].responses:
            legacy = report.entry("store texas").outcomes[batch_response.document]
            assert legacy.render_text() == batch_response.outcome.render_text()


class TestShimErrorContract:
    """The deprecated shims keep raising the pre-service error types."""

    def test_corpus_query_bad_size_bound_raises_legacy_error(self, corpus):
        from repro.errors import InvalidSizeBoundError

        with pytest.raises(InvalidSizeBoundError):
            corpus.query("stores", "store texas", size_bound=0)

    def test_corpus_query_negative_limit_keeps_slice_semantics(self, corpus):
        full = corpus.query("stores", "store", size_bound=6)
        trimmed = corpus.query("stores", "store", size_bound=6, limit=-1)
        assert len(trimmed.results) == len(full.results) - 1

    def test_protocol_surface_stays_strict(self, service):
        response = service.execute(
            SearchRequest(query="store texas", document="stores", size_bound=0)
        )
        assert isinstance(response, ErrorResponse)
        assert response.error == "ProtocolError"

    def test_protocol_rejects_stringly_typed_flags(self, service):
        payload = SearchRequest(query="store texas", document="stores").to_dict()
        payload["include_snippets"] = "false"  # truthy string would invert intent
        response = service.handle_dict(payload)
        assert response["kind"] == "error"
        assert "include_snippets" in response["message"]


class TestStaleCacheRegression:
    """Satellite: a removed-then-re-added document must never serve stale state."""

    def _documents(self):
        old = tree_from_dict(
            "shop", {"store": [{"name": "Alpha", "state": "Texas"}]}, name="doc"
        )
        new = tree_from_dict(
            "shop",
            {"store": [{"name": "Beta", "state": "Texas"}, {"name": "Gamma", "state": "Texas"}]},
            name="doc",
        )
        return old, new

    def test_remove_then_re_add_serves_fresh_results(self):
        old, new = self._documents()
        corpus = Corpus()
        service = SnippetService(corpus)
        corpus.add_tree("doc", old)
        request = SearchRequest(query="store texas", document="doc", size_bound=6)
        before = service.run(request)
        assert before.total_results == 1
        assert "Alpha" in before.results[0].text

        corpus.remove("doc")
        corpus.add_tree("doc", new)
        after = service.run(request)
        assert after.from_cache is False
        assert after.total_results == 2
        assert "Beta" in after.results[0].text

    def test_replace_true_purges_batch_memoised_postings(self):
        old, new = self._documents()
        corpus = Corpus()
        corpus.add_tree("doc", old)
        # Memoise postings at the batch level (corpus-wide shared state).
        corpus.search_batch(["store texas"], size_bound=6)
        memo = corpus.shared_postings("doc")
        assert memo.get("store") is not None

        corpus.add_tree("doc", new, replace=True)
        # The memo bound to the replaced index must be gone...
        assert corpus.shared_postings("doc") is not memo
        # ...and a fresh batch must see the new document's two stores.
        report = corpus.search_batch(["store texas"], size_bound=6)
        assert report.entry("store texas").outcomes["doc"].results.total_results == 2

    def test_shared_postings_memo_is_bounded(self):
        from repro.corpus import _SharedPostings

        corpus = Corpus()
        corpus.add_tree("doc", self._documents()[0])
        memo = _SharedPostings(corpus.system("doc").index, maxsize=3)
        for keyword in ("alpha", "beta", "gamma", "delta", "epsilon"):
            memo.get(keyword)
        # never grows past the cap, even under a stream of unseen keywords
        assert len(memo) == 3
        assert "alpha" not in memo  # least recently used evicted first
        assert "epsilon" in memo

    def test_shared_postings_keeps_hot_keywords_resident(self):
        from repro.corpus import _SharedPostings

        corpus = Corpus()
        corpus.add_tree("doc", self._documents()[0])
        memo = _SharedPostings(corpus.system("doc").index, maxsize=3)
        memo.get("store")
        for keyword in ("one", "two", "three", "four"):
            memo.get("store")  # keep the hot keyword recently used
            memo.get(keyword)
        assert "store" in memo  # LRU, not FIFO: the hot entry survives

    def test_stale_postings_would_have_leaked_without_purge(self):
        """Demonstrate the hazard the purge closes: an old memo answers for
        the old index even after the document changed."""
        old, new = self._documents()
        corpus = Corpus()
        corpus.add_tree("doc", old)
        stale_memo = corpus.shared_postings("doc")
        stale_postings = stale_memo.get("store")
        corpus.add_tree("doc", new, replace=True)
        fresh_postings = corpus.shared_postings("doc").get("store")
        assert len(fresh_postings) != len(stale_postings)


class TestObservability:
    def test_cache_stats_shape(self, service):
        service.run(SearchRequest(query="store texas", document="stores", size_bound=6))
        stats = service.cache_stats()
        assert set(stats) == {"retailer", "stores"}
        assert set(stats["stores"]) == {"query", "snippet"}
        snapshot = stats["stores"]["query"]
        assert snapshot["misses"] >= 1  # the one cold evaluation above
        assert "evictions" in snapshot and "hit_rate" in snapshot

    def test_cache_stats_survives_concurrent_removal(self, service, corpus):
        import threading

        stop = threading.Event()
        errors: list[BaseException] = []

        def poll() -> None:
            while not stop.is_set():
                try:
                    service.cache_stats()
                except BaseException as error:  # noqa: BLE001 - recording any crash
                    errors.append(error)
                    return

        poller = threading.Thread(target=poll)
        poller.start()
        try:
            for round_number in range(20):
                corpus.add_xml("transient", "<d><item><name>x</name></item></d>", replace=True)
                corpus.remove("transient")
        finally:
            stop.set()
            poller.join()
        assert errors == []

    def test_repr(self, service):
        assert "documents=2" in repr(service)
        assert "serial" in repr(service)

    def test_context_manager_closes_executor(self, corpus):
        from repro.api import ConcurrentExecutor

        executor = ConcurrentExecutor(max_workers=2)
        with SnippetService(corpus, executor=executor) as service:
            service.run_many(
                [
                    SearchRequest(query="store texas", document="stores"),
                    SearchRequest(query="store texas", document="retailer"),
                ]
            )
            assert "running" in repr(executor)
        # Exiting the context manager closes the executor; per the
        # lifecycle contract it now refuses work until re-entered.
        assert "closed" in repr(executor)
        assert executor.closed

    def test_run_batch_rejects_mismatched_parsed_queries(self, service):
        from repro.search.query import KeywordQuery

        with pytest.raises(ProtocolError):
            service.run_batch(
                BatchRequest(queries=("store", "texas")),
                parsed_queries=[KeywordQuery.parse("store")],
            )
