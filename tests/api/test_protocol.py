"""Tests for the typed request/response protocol (JSON round trips)."""

from __future__ import annotations

import json

import pytest

from repro.api.protocol import (
    SCHEMA_VERSION,
    BatchEntry,
    BatchRequest,
    BatchResponse,
    ErrorResponse,
    SearchRequest,
    SearchResponse,
    SnippetPayload,
    UpdateRequest,
    UpdateResponse,
    decode_page_token,
    encode_page_token,
    parse_request,
    parse_response,
)
from repro.errors import ProtocolError


def _json_round_trip(payload: dict) -> dict:
    """Force an actual JSON serialisation (tuples become lists, etc.)."""
    return json.loads(json.dumps(payload))


def make_payload(**overrides) -> SnippetPayload:
    base = dict(
        result_id=0,
        score=2.5,
        root="0.1",
        root_tag="store",
        matched_keywords=("store", "texas"),
        result_edges=9,
        snippet_edges=6,
        covered_items=5,
        coverable_items=8,
        text="Result #0\n  store\n    state: Texas",
    )
    base.update(overrides)
    return SnippetPayload(**base)


def make_response(**overrides) -> SearchResponse:
    base = dict(
        query="store texas",
        document="stores",
        keywords=("store", "texas"),
        algorithm="slca",
        total_results=2,
        page=1,
        page_size=1,
        next_page="p2",
        results=(make_payload(),),
        from_cache=True,
        seconds=0.25,
        timings={"search": 0.1, "snippets": 0.15},
    )
    base.update(overrides)
    return SearchResponse(**base)


class TestPageTokens:
    def test_round_trip(self):
        for page in (1, 2, 17, 1000):
            assert decode_page_token(encode_page_token(page)) == page

    @pytest.mark.parametrize(
        "bad",
        ["", "2", "p", "p0", "page2", "p-1", "pp2", None, 2, "p²", "p٣"],
    )
    def test_malformed_tokens_rejected(self, bad):
        # includes unicode digits: superscript two passes str.isdigit() but
        # not int(); Arabic-Indic three would decode to a different page.
        with pytest.raises(ProtocolError):
            decode_page_token(bad)

    def test_bad_page_number_rejected(self):
        with pytest.raises(ProtocolError):
            encode_page_token(0)
        with pytest.raises(ProtocolError):
            encode_page_token(True)


class TestSearchRequest:
    def test_round_trip_is_lossless(self):
        request = SearchRequest(
            query="store texas",
            document="stores",
            size_bound=6,
            limit=5,
            construction="subtree",
            use_cache=False,
            page=3,
            page_size=2,
            include_snippets=False,
            include_meta=True,
        )
        assert SearchRequest.from_dict(_json_round_trip(request.to_dict())) == request

    def test_defaults_round_trip(self):
        request = SearchRequest(query="a b", document="doc")
        assert SearchRequest.from_dict(_json_round_trip(request.to_dict())) == request

    def test_schema_version_is_serialised(self):
        assert SearchRequest(query="q", document="d").to_dict()["schema_version"] == SCHEMA_VERSION

    def test_wrong_schema_version_rejected(self):
        payload = SearchRequest(query="q", document="d").to_dict()
        payload["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ProtocolError):
            SearchRequest.from_dict(payload)

    def test_missing_schema_version_rejected(self):
        payload = SearchRequest(query="q", document="d").to_dict()
        del payload["schema_version"]
        with pytest.raises(ProtocolError):
            SearchRequest.from_dict(payload)

    def test_unknown_field_rejected(self):
        payload = SearchRequest(query="q", document="d").to_dict()
        payload["limitt"] = 3
        with pytest.raises(ProtocolError) as excinfo:
            SearchRequest.from_dict(payload)
        assert "limitt" in str(excinfo.value)

    def test_missing_required_field_rejected(self):
        payload = SearchRequest(query="q", document="d").to_dict()
        del payload["document"]
        with pytest.raises(ProtocolError):
            SearchRequest.from_dict(payload)

    @pytest.mark.parametrize(
        "field, value",
        [
            ("query", "   "),
            ("document", ""),
            ("size_bound", 0),
            ("size_bound", True),
            ("limit", -1),
            ("construction", "xpath"),
            ("page", 0),
            ("page_size", 0),
        ],
    )
    def test_validate_rejects_bad_values(self, field, value):
        payload = SearchRequest(query="store", document="doc").to_dict()
        payload[field] = value
        with pytest.raises(ProtocolError):
            SearchRequest.from_dict(payload)

    def test_with_page_accepts_token_and_int(self):
        request = SearchRequest(query="q", document="d", page_size=2)
        assert request.with_page("p4").page == 4
        assert request.with_page(2).page == 2
        # frozen: the original is untouched
        assert request.page == 1


class TestBatchRequest:
    def test_round_trip_is_lossless(self):
        request = BatchRequest(
            queries=("store texas", "clothes casual"),
            documents=("stores", "retailer"),
            size_bound=6,
            limit=3,
            construction="match_paths",
            use_cache=False,
            include_snippets=False,
            include_meta=True,
        )
        assert BatchRequest.from_dict(_json_round_trip(request.to_dict())) == request

    def test_none_documents_round_trip(self):
        request = BatchRequest(queries=("store",))
        restored = BatchRequest.from_dict(_json_round_trip(request.to_dict()))
        assert restored.documents is None
        assert restored == request

    def test_empty_queries_rejected(self):
        with pytest.raises(ProtocolError):
            BatchRequest(queries=()).validate()

    def test_bare_string_queries_rejected(self):
        # a string would char-split into one-letter queries if iterated
        with pytest.raises(ProtocolError):
            BatchRequest(queries="store texas").validate()
        with pytest.raises(ProtocolError):
            BatchRequest(queries=("store",), documents="stores").validate()

    def test_search_request_projection(self):
        batch = BatchRequest(queries=("a b",), size_bound=7, limit=2, use_cache=False)
        single = batch.search_request("a b", "doc")
        assert single.size_bound == 7
        assert single.limit == 2
        assert single.use_cache is False
        assert single.document == "doc"


class TestResponses:
    def test_snippet_payload_round_trip(self):
        payload = make_payload()
        assert SnippetPayload.from_dict(_json_round_trip(payload.to_dict())) == payload

    def test_nested_payloads_reject_envelope_fields(self):
        # sub-objects never carry kind/schema_version; a stray one is a
        # structural error, not something to silently accept
        stray = make_payload().to_dict()
        stray["kind"] = "garbage"
        with pytest.raises(ProtocolError):
            SnippetPayload.from_dict(stray)

    def test_results_only_payload_round_trip(self):
        payload = make_payload(snippet_edges=None, covered_items=None, coverable_items=None, text=None)
        restored = SnippetPayload.from_dict(_json_round_trip(payload.to_dict()))
        assert restored == payload
        assert restored.text is None

    def test_search_response_round_trip_without_meta(self):
        response = make_response()
        restored = SearchResponse.from_dict(_json_round_trip(response.to_dict()))
        assert restored == response  # meta fields are excluded from equality
        assert restored.from_cache is False  # meta was not serialised

    def test_search_response_round_trip_with_meta(self):
        response = make_response()
        restored = SearchResponse.from_dict(_json_round_trip(response.to_dict(include_meta=True)))
        assert restored == response
        assert restored.from_cache is True
        assert restored.seconds == pytest.approx(0.25)
        assert restored.timings == {"search": 0.1, "snippets": 0.15}

    def test_default_serialisation_is_deterministic(self):
        fast = make_response(seconds=0.001, from_cache=False)
        slow = make_response(seconds=9.0, from_cache=True)
        assert json.dumps(fast.to_dict(), sort_keys=True) == json.dumps(slow.to_dict(), sort_keys=True)

    def test_shard_provenance_round_trips_in_meta_only(self):
        import dataclasses

        stamped = dataclasses.replace(make_response(), shard=3)
        # the default wire form never carries provenance
        assert "meta" not in stamped.to_dict()
        restored = SearchResponse.from_dict(_json_round_trip(stamped.to_dict(include_meta=True)))
        assert restored.shard == 3
        # an unstamped (single-corpus) response keeps its meta form unchanged
        plain = make_response()
        assert plain.shard is None
        assert "shard" not in plain.to_dict(include_meta=True)["meta"]
        assert SearchResponse.from_dict(
            _json_round_trip(plain.to_dict(include_meta=True))
        ).shard is None

    def test_batch_response_round_trip(self):
        response = BatchResponse(
            entries=(
                BatchEntry(query="store texas", responses=(make_response(),), seconds=0.5),
            ),
            documents=("stores",),
        )
        restored = BatchResponse.from_dict(_json_round_trip(response.to_dict(include_meta=True)))
        assert restored == response
        assert restored.total_results == 2

    def test_error_response_round_trip(self):
        error = ErrorResponse(error="QueryError", message="no usable keyword", request={"kind": "search"})
        assert ErrorResponse.from_dict(_json_round_trip(error.to_dict())) == error

    def test_error_from_exception(self):
        error = ErrorResponse.from_exception(ProtocolError("boom"))
        assert error.error == "ProtocolError"
        assert error.message == "boom"
        assert error.code == "bad_request"

    def test_error_code_round_trip(self):
        error = ErrorResponse(
            error="UnknownDocumentError", message="x", code="unknown_document"
        )
        restored = ErrorResponse.from_dict(_json_round_trip(error.to_dict()))
        assert restored == error
        assert restored.code == "unknown_document"

    def test_code_optional_for_pre_code_payloads(self):
        # Payloads written by builds that predate the code field still parse.
        legacy = {
            "kind": "error",
            "schema_version": SCHEMA_VERSION,
            "error": "QueryError",
            "message": "no usable keyword",
            "request": None,
        }
        restored = ErrorResponse.from_dict(legacy)
        assert restored.code is None

    def test_exception_to_code_mapping(self):
        from repro.errors import (
            DeadlineError,
            ExtractError,
            OverloadedError,
            PagingError,
            QueryError,
            UnknownDocumentError,
        )
        from repro.api.protocol import code_for_exception, http_status_for_code

        cases = {
            UnknownDocumentError("x"): ("unknown_document", 404),
            OverloadedError("x"): ("overloaded", 503),
            DeadlineError("x"): ("deadline_exceeded", 504),
            PagingError("x"): ("invalid_page", 400),
            ProtocolError("x"): ("bad_request", 400),
            QueryError("x"): ("bad_request", 400),
            ExtractError("x"): ("internal", 500),
        }
        for exc, (code, status) in cases.items():
            assert code_for_exception(exc) == code, exc
            assert http_status_for_code(code) == status, exc

    def test_every_code_has_an_http_status(self):
        from repro.api.protocol import (
            ERROR_CODES,
            HTTP_STATUS_BY_CODE,
            http_status_for_code,
        )

        assert set(ERROR_CODES) == set(HTTP_STATUS_BY_CODE)
        assert http_status_for_code(None) == 500
        assert http_status_for_code("never-heard-of-it") == 500

    @pytest.mark.parametrize(
        "parser, payload, field",
        [
            (SearchResponse, "keywords", "keywords"),
            (SnippetPayload, "matched_keywords", "matched_keywords"),
            (BatchResponse, "documents", "documents"),
        ],
    )
    def test_scalar_where_list_expected_rejected(self, parser, payload, field):
        # a JSON string must not silently explode into per-character tuples
        if parser is SearchResponse:
            base = make_response().to_dict()
        elif parser is SnippetPayload:
            base = make_payload().to_dict()
        else:
            base = BatchResponse(entries=(), documents=("d",)).to_dict()
        base[field] = "retail"
        with pytest.raises(ProtocolError) as excinfo:
            parser.from_dict(base)
        assert field in str(excinfo.value)


class TestUpdateRequest:
    def test_round_trip(self):
        request = UpdateRequest(document="doc", xml="<a><b>x</b></a>")
        assert UpdateRequest.from_dict(_json_round_trip(request.to_dict())) == request

    def test_remove_round_trip(self):
        request = UpdateRequest(document="doc", action="remove")
        assert UpdateRequest.from_dict(_json_round_trip(request.to_dict())) == request

    def test_update_needs_xml(self):
        with pytest.raises(ProtocolError):
            UpdateRequest(document="doc").validate()
        with pytest.raises(ProtocolError):
            UpdateRequest(document="doc", xml="   ").validate()

    def test_remove_forbids_xml(self):
        with pytest.raises(ProtocolError):
            UpdateRequest(document="doc", action="remove", xml="<a/>").validate()

    def test_unknown_action_rejected(self):
        with pytest.raises(ProtocolError):
            UpdateRequest(document="doc", xml="<a/>", action="upgrade").validate()

    def test_empty_document_rejected(self):
        with pytest.raises(ProtocolError):
            UpdateRequest(document="", xml="<a/>").validate()

    def test_unknown_field_rejected(self):
        payload = UpdateRequest(document="doc", xml="<a/>").to_dict()
        payload["force"] = True
        with pytest.raises(ProtocolError):
            UpdateRequest.from_dict(payload)

    def test_wrong_schema_version_rejected(self):
        payload = UpdateRequest(document="doc", xml="<a/>").to_dict()
        payload["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ProtocolError):
            UpdateRequest.from_dict(payload)


class TestUpdateResponse:
    def make(self) -> UpdateResponse:
        return UpdateResponse(
            document="doc",
            action="updated",
            incremental=True,
            nodes=14,
            changed_nodes=2,
            changed_terms=5,
            seconds=0.25,
            cache_entries_kept=3,
            cache_entries_invalidated=1,
        )

    def test_default_wire_form_is_deterministic(self):
        payload = self.make().to_dict()
        assert "meta" not in payload
        assert payload["incremental"] is True
        assert payload["changed_nodes"] == 2

    def test_meta_round_trip(self):
        response = self.make()
        restored = UpdateResponse.from_dict(_json_round_trip(response.to_dict(include_meta=True)))
        assert restored == response  # volatile fields excluded from equality
        assert restored.seconds == 0.25
        assert restored.cache_entries_kept == 3

    def test_round_trip_without_meta(self):
        response = self.make()
        restored = UpdateResponse.from_dict(_json_round_trip(response.to_dict()))
        assert restored == response
        assert restored.seconds == 0.0


class TestDispatch:
    def test_parse_request_dispatches_on_kind(self):
        search = SearchRequest(query="q", document="d")
        batch = BatchRequest(queries=("q",))
        update = UpdateRequest(document="d", xml="<a/>")
        assert parse_request(search.to_dict()) == search
        assert parse_request(batch.to_dict()) == batch
        assert parse_request(update.to_dict()) == update

    def test_parse_response_dispatches_on_kind(self):
        response = make_response()
        error = ErrorResponse(error="SearchError", message="x")
        assert parse_response(response.to_dict()) == response
        assert parse_response(error.to_dict()) == error

    def test_unknown_kind_rejected(self):
        with pytest.raises(ProtocolError):
            parse_request({"kind": "teleport", "schema_version": SCHEMA_VERSION})
        with pytest.raises(ProtocolError):
            parse_response({"kind": "teleport", "schema_version": SCHEMA_VERSION})

    def test_non_dict_rejected(self):
        with pytest.raises(ProtocolError):
            parse_request([1, 2, 3])

    @pytest.mark.parametrize("kind", [["search"], {"a": 1}, None, 7])
    def test_unhashable_or_non_string_kind_rejected(self, kind):
        # An unhashable kind used to escape as a TypeError from the dict
        # lookup — a wire frontend could never shape that into an error.
        with pytest.raises(ProtocolError):
            parse_request({"kind": kind, "schema_version": SCHEMA_VERSION})
        with pytest.raises(ProtocolError):
            parse_response({"kind": kind, "schema_version": SCHEMA_VERSION})
