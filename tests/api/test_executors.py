"""Tests for the pluggable executors, including the lifecycle contract.

The lifecycle contract (documented in :mod:`repro.api.executors`) is
shared by every implementation — :class:`SerialExecutor`,
:class:`ConcurrentExecutor` and the cluster's
:class:`~repro.cluster.router.ShardExecutor`: close is idempotent,
submitting through a closed executor raises a clear :class:`RuntimeError`,
and context-manager re-entry re-opens the executor.
"""

from __future__ import annotations

import threading

import pytest

from repro.api.executors import ConcurrentExecutor, Executor, SerialExecutor
from repro.cluster.router import ShardExecutor


class TestSerialExecutor:
    def test_maps_in_order(self):
        executor = SerialExecutor()
        assert executor.map(lambda x: x * 2, [1, 2, 3]) == [2, 4, 6]

    def test_propagates_first_exception(self):
        def boom(x):
            if x == 2:
                raise ValueError("two")
            return x

        with pytest.raises(ValueError, match="two"):
            SerialExecutor().map(boom, [1, 2, 3])

    def test_runs_in_calling_thread(self):
        threads = SerialExecutor().map(lambda _: threading.current_thread().name, range(3))
        assert set(threads) == {threading.current_thread().name}

    def test_context_manager(self):
        with SerialExecutor() as executor:
            assert executor.map(str, [1]) == ["1"]


class TestConcurrentExecutor:
    def test_maps_in_order(self):
        with ConcurrentExecutor(max_workers=4) as executor:
            assert executor.map(lambda x: x * 2, list(range(20))) == [x * 2 for x in range(20)]

    def test_actually_uses_worker_threads(self):
        barrier = threading.Barrier(2, timeout=5)

        def rendezvous(_):
            # Both items must be in flight at once for the barrier to lift;
            # a serial executor would deadlock (barrier timeout).
            barrier.wait()
            return threading.current_thread().name

        with ConcurrentExecutor(max_workers=2) as executor:
            names = executor.map(rendezvous, [0, 1])
        assert all(name.startswith("repro-") for name in names)

    def test_single_item_runs_inline(self):
        with ConcurrentExecutor(max_workers=2) as executor:
            names = executor.map(lambda _: threading.current_thread().name, [0])
        assert names == [threading.current_thread().name]

    def test_propagates_first_exception_by_item_order(self):
        def boom(x):
            if x in (1, 3):
                raise ValueError(f"item-{x}")
            return x

        with ConcurrentExecutor(max_workers=4) as executor:
            with pytest.raises(ValueError, match="item-1"):
                executor.map(boom, [0, 1, 2, 3])

    def test_concurrent_first_use_shares_one_pool(self):
        executor = ConcurrentExecutor(max_workers=2)
        barrier = threading.Barrier(4, timeout=5)

        def use(_):
            barrier.wait()
            return executor.map(lambda x: x + 1, [1, 2])

        # four threads race the lazy pool creation; exactly one pool must
        # survive (no leaked duplicates) and all maps must succeed
        starters = [threading.Thread(target=use, args=(i,)) for i in range(4)]
        for thread in starters:
            thread.start()
        for thread in starters:
            thread.join()
        assert executor._pool is not None
        executor.close()
        assert executor._pool is None

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ValueError):
            ConcurrentExecutor(max_workers=0)
        with pytest.raises(ValueError):
            ConcurrentExecutor(max_workers=True)

    def test_repr_shows_state(self):
        executor = ConcurrentExecutor(max_workers=3)
        assert "idle" in repr(executor)
        executor.map(str, [1, 2])
        assert "running" in repr(executor)
        executor.close()
        assert "closed" in repr(executor)


#: every executor implementation must satisfy the same lifecycle contract
LIFECYCLE_FACTORIES = [
    pytest.param(SerialExecutor, id="serial"),
    pytest.param(lambda: ConcurrentExecutor(max_workers=2), id="concurrent"),
    pytest.param(lambda: ShardExecutor(shards=2), id="shard"),
]


class TestExecutorLifecycleContract:
    @pytest.mark.parametrize("factory", LIFECYCLE_FACTORIES)
    def test_close_is_idempotent(self, factory):
        executor = factory()
        executor.map(str, [1, 2])
        executor.close()
        executor.close()  # second close must be a harmless no-op
        assert executor.closed

    @pytest.mark.parametrize("factory", LIFECYCLE_FACTORIES)
    def test_submitting_after_close_raises_clear_error(self, factory):
        executor = factory()
        executor.close()
        with pytest.raises(RuntimeError, match="closed"):
            executor.map(str, [1, 2])
        # the single-item inline fast path must refuse too
        with pytest.raises(RuntimeError, match="closed"):
            executor.map(str, [1])

    @pytest.mark.parametrize("factory", LIFECYCLE_FACTORIES)
    def test_context_manager_reentry_reopens(self, factory):
        executor = factory()
        with executor as entered:
            assert entered is executor
            assert executor.map(str, [1, 2]) == ["1", "2"]
        assert executor.closed
        # Re-entry re-opens the executor; worker resources come back
        # lazily on the next submission.
        with executor:
            assert not executor.closed
            assert executor.map(str, [3, 4]) == ["3", "4"]
        assert executor.closed

    @pytest.mark.parametrize("factory", LIFECYCLE_FACTORIES)
    def test_new_executor_starts_open(self, factory):
        executor = factory()
        assert not executor.closed
        executor.close()

    @pytest.mark.parametrize("factory", LIFECYCLE_FACTORIES)
    def test_submit_returns_a_future(self, factory):
        executor = factory()
        try:
            assert executor.submit(str, 7).result(timeout=10) == "7"
        finally:
            executor.close()

    @pytest.mark.parametrize("factory", LIFECYCLE_FACTORIES)
    def test_submit_mirrors_exceptions_into_the_future(self, factory):
        def boom():
            raise ValueError("worker failure")

        executor = factory()
        try:
            future = executor.submit(boom)
            with pytest.raises(ValueError, match="worker failure"):
                future.result(timeout=10)
        finally:
            executor.close()

    @pytest.mark.parametrize("factory", LIFECYCLE_FACTORIES)
    def test_submit_after_close_raises(self, factory):
        executor = factory()
        executor.close()
        with pytest.raises(RuntimeError, match="closed"):
            executor.submit(str, 1)

    def test_concurrent_submit_runs_off_thread(self):
        with ConcurrentExecutor(max_workers=2) as executor:
            worker = executor.submit(threading.get_ident).result(timeout=10)
            assert worker != threading.get_ident()

    def test_shard_executor_is_an_executor(self):
        assert issubclass(ShardExecutor, Executor)
        executor = ShardExecutor(shards=3)
        assert executor.name == "shard"
        assert executor.max_workers == 3
        executor.close()

    def test_shard_executor_rejects_bad_shard_count(self):
        from repro.errors import ClusterError

        with pytest.raises(ClusterError):
            ShardExecutor(shards=0)
        with pytest.raises(ClusterError):
            ShardExecutor(shards=True)
