"""Tests for the pluggable executors."""

from __future__ import annotations

import threading

import pytest

from repro.api.executors import ConcurrentExecutor, SerialExecutor


class TestSerialExecutor:
    def test_maps_in_order(self):
        executor = SerialExecutor()
        assert executor.map(lambda x: x * 2, [1, 2, 3]) == [2, 4, 6]

    def test_propagates_first_exception(self):
        def boom(x):
            if x == 2:
                raise ValueError("two")
            return x

        with pytest.raises(ValueError, match="two"):
            SerialExecutor().map(boom, [1, 2, 3])

    def test_runs_in_calling_thread(self):
        threads = SerialExecutor().map(lambda _: threading.current_thread().name, range(3))
        assert set(threads) == {threading.current_thread().name}

    def test_context_manager(self):
        with SerialExecutor() as executor:
            assert executor.map(str, [1]) == ["1"]


class TestConcurrentExecutor:
    def test_maps_in_order(self):
        with ConcurrentExecutor(max_workers=4) as executor:
            assert executor.map(lambda x: x * 2, list(range(20))) == [x * 2 for x in range(20)]

    def test_actually_uses_worker_threads(self):
        barrier = threading.Barrier(2, timeout=5)

        def rendezvous(_):
            # Both items must be in flight at once for the barrier to lift;
            # a serial executor would deadlock (barrier timeout).
            barrier.wait()
            return threading.current_thread().name

        with ConcurrentExecutor(max_workers=2) as executor:
            names = executor.map(rendezvous, [0, 1])
        assert all(name.startswith("repro-api") for name in names)

    def test_single_item_runs_inline(self):
        with ConcurrentExecutor(max_workers=2) as executor:
            names = executor.map(lambda _: threading.current_thread().name, [0])
        assert names == [threading.current_thread().name]

    def test_propagates_first_exception_by_item_order(self):
        def boom(x):
            if x in (1, 3):
                raise ValueError(f"item-{x}")
            return x

        with ConcurrentExecutor(max_workers=4) as executor:
            with pytest.raises(ValueError, match="item-1"):
                executor.map(boom, [0, 1, 2, 3])

    def test_close_is_idempotent_and_reusable(self):
        executor = ConcurrentExecutor(max_workers=2)
        assert executor.map(str, [1, 2]) == ["1", "2"]
        executor.close()
        executor.close()
        # a closed executor transparently recreates its pool
        assert executor.map(str, [3, 4]) == ["3", "4"]
        executor.close()

    def test_concurrent_first_use_shares_one_pool(self):
        executor = ConcurrentExecutor(max_workers=2)
        barrier = threading.Barrier(4, timeout=5)

        def use(_):
            barrier.wait()
            return executor.map(lambda x: x + 1, [1, 2])

        # four threads race the lazy pool creation; exactly one pool must
        # survive (no leaked duplicates) and all maps must succeed
        starters = [threading.Thread(target=use, args=(i,)) for i in range(4)]
        for thread in starters:
            thread.start()
        for thread in starters:
            thread.join()
        assert executor._pool is not None
        executor.close()
        assert executor._pool is None

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ValueError):
            ConcurrentExecutor(max_workers=0)
        with pytest.raises(ValueError):
            ConcurrentExecutor(max_workers=True)

    def test_repr_shows_state(self):
        executor = ConcurrentExecutor(max_workers=3)
        assert "idle" in repr(executor)
        executor.map(str, [1, 2])
        assert "running" in repr(executor)
        executor.close()
        assert "idle" in repr(executor)
