"""Concurrent serving tests (ISSUE 2 satellite).

Eight threads pushing identical/overlapping requests through the
``ConcurrentExecutor`` must produce responses **byte-identical** to the
serial path, and the locked caches must report coherent statistics.
"""

from __future__ import annotations

import json
import threading

from repro.api import (
    BatchRequest,
    ConcurrentExecutor,
    SearchRequest,
    SerialExecutor,
    SnippetService,
)
from repro.corpus import Corpus
from repro.utils.cache import LRUCache

THREADS = 8

QUERIES = [
    "store texas",
    "clothes casual",
    "store austin",
    "suit formal",
]


def fresh_corpus() -> Corpus:
    corpus = Corpus()
    corpus.add_builtin("figure5-stores", name="stores")
    corpus.add_builtin("retail")
    return corpus


def wire_bytes(response) -> str:
    """The canonical wire form (no volatile meta), as sorted JSON bytes."""
    return json.dumps(response.to_dict(), sort_keys=True)


class TestIdenticalConcurrentRequests:
    def test_eight_threads_byte_identical_to_serial(self):
        request = SearchRequest(query="store texas", document="stores", size_bound=6)

        # Reference: the serial path on a pristine corpus.
        serial_service = SnippetService(fresh_corpus(), executor=SerialExecutor())
        reference = wire_bytes(serial_service.run(request))

        # Eight threads, same request, pristine corpus: every thread races
        # through parsing, posting lookups, caching and snippet generation.
        with SnippetService(
            fresh_corpus(), executor=ConcurrentExecutor(max_workers=THREADS)
        ) as service:
            responses = service.run_many([request] * THREADS)

        assert len(responses) == THREADS
        for response in responses:
            assert wire_bytes(response) == reference

    def test_eight_threads_coherent_cache_stats(self):
        request = SearchRequest(query="store texas", document="stores", size_bound=6)
        with SnippetService(
            fresh_corpus(), executor=ConcurrentExecutor(max_workers=THREADS)
        ) as service:
            service.run_many([request] * THREADS)
            stats = service.cache_stats()["stores"]["query"]

        # Every thread either hit or missed — no lookup may be lost to a
        # race — and at least the very first evaluation was a miss.
        assert stats["hits"] + stats["misses"] == THREADS
        assert 1 <= stats["misses"] <= THREADS
        assert stats["evictions"] == 0

    def test_eight_threads_raw_threading_on_one_service(self):
        """Belt and braces: plain ``threading.Thread`` callers (no executor)
        against one shared service must also match the serial path."""
        request = SearchRequest(query="clothes casual", document="retail", size_bound=6)
        serial_service = SnippetService(fresh_corpus())
        reference = wire_bytes(serial_service.run(request))

        service = SnippetService(fresh_corpus())
        results: list[str] = [""] * THREADS
        barrier = threading.Barrier(THREADS)

        def worker(slot: int) -> None:
            barrier.wait()  # maximise overlap
            results[slot] = wire_bytes(service.run(request))

        threads = [threading.Thread(target=worker, args=(slot,)) for slot in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert all(result == reference for result in results)


class TestOverlappingConcurrentRequests:
    def test_mixed_workload_matches_serial(self):
        """Overlapping (not only identical) requests: many queries times
        many documents, shuffled across 8 workers."""
        requests = [
            SearchRequest(query=query, document=document, size_bound=6, page_size=2)
            for query in QUERIES
            for document in ("stores", "retail")
        ] * 2  # repeats exercise the warm path under contention

        serial_service = SnippetService(fresh_corpus())
        reference = [wire_bytes(r) for r in serial_service.run_many(requests)]

        with SnippetService(
            fresh_corpus(), executor=ConcurrentExecutor(max_workers=THREADS)
        ) as service:
            concurrent = [wire_bytes(r) for r in service.run_many(requests)]

        assert concurrent == reference

    def test_concurrent_batch_matches_serial_batch(self):
        batch = BatchRequest(queries=tuple(QUERIES), size_bound=6)

        serial = SnippetService(fresh_corpus()).run_batch(batch)
        with SnippetService(
            fresh_corpus(), executor=ConcurrentExecutor(max_workers=THREADS)
        ) as service:
            concurrent = service.run_batch(batch)

        assert json.dumps(serial.to_dict(), sort_keys=True) == json.dumps(
            concurrent.to_dict(), sort_keys=True
        )

    def test_concurrent_snippet_cache_stats_are_coherent(self):
        request = SearchRequest(query="store texas", document="stores", size_bound=6)
        with SnippetService(
            fresh_corpus(), executor=ConcurrentExecutor(max_workers=THREADS)
        ) as service:
            service.run_many([request] * THREADS)
            snippet_stats = service.cache_stats()["stores"]["snippet"]
        # Lookups happen only on cold evaluations; hits+misses must equal
        # the number of generate() calls that reached the cache, with no
        # counter lost to a race (every snippet lookup is accounted for).
        assert snippet_stats["hits"] + snippet_stats["misses"] >= snippet_stats["misses"] > 0


class TestRegistrationUnderServing:
    def test_replace_leaves_no_unregistered_window(self):
        """Requests racing a replace must always find the document — the
        swap is atomic, never a delete-then-insert window."""
        from repro.xmltree.builder import tree_from_dict

        corpus = Corpus()
        corpus.add_tree(
            "doc", tree_from_dict("shop", {"store": [{"name": "A", "state": "Texas"}]}, name="doc")
        )
        service = SnippetService(corpus)
        request = SearchRequest(query="store texas", document="doc", size_bound=6)
        errors: list[object] = []
        stop = threading.Event()

        def reader() -> None:
            while not stop.is_set():
                response = service.execute(request)
                if response.kind == "error":
                    errors.append(response)
                    return

        def replacer() -> None:
            for round_number in range(25):
                corpus.add_tree(
                    "doc",
                    tree_from_dict(
                        "shop",
                        {"store": [{"name": f"S{round_number}", "state": "Texas"}]},
                        name="doc",
                    ),
                    replace=True,
                )
            stop.set()

        threads = [threading.Thread(target=reader) for _ in range(4)]
        threads.append(threading.Thread(target=replacer))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []


class TestIncrementalUpdateUnderServing:
    def make_tree(self, city: str):
        from repro.xmltree.builder import tree_from_dict

        return tree_from_dict(
            "shop",
            {
                "store": [
                    {"name": "Galleria", "state": "Texas", "city": city},
                    {"name": "Downtown", "state": "Oregon", "city": "Portland"},
                ]
            },
            name="doc",
        )

    def test_readers_see_old_or_new_state_never_a_mix(self):
        """8 reader threads racing incremental updates must only ever see a
        response byte-identical to one of the versioned reference
        responses — the swap is atomic and copy-on-write."""
        corpus = Corpus()
        corpus.add_tree("doc", self.make_tree("Houston"))
        service = SnippetService(corpus)
        request = SearchRequest(query="store texas", document="doc", size_bound=6)

        cities = [f"City{round_number}" for round_number in range(20)]
        references = set()
        reference_corpus = Corpus()
        reference_corpus.add_tree("doc", self.make_tree("Houston"))
        references.add(wire_bytes(SnippetService(reference_corpus).run(request)))
        for city in cities:
            versioned = Corpus()
            versioned.add_tree("doc", self.make_tree(city))
            references.add(wire_bytes(SnippetService(versioned).run(request)))

        seen: list[str] = []
        errors: list[BaseException] = []
        stop = threading.Event()

        def reader() -> None:
            try:
                while not stop.is_set():
                    seen.append(wire_bytes(service.run(request)))
            except BaseException as exc:  # noqa: BLE001 - surfaced in the assert
                errors.append(exc)

        def updater() -> None:
            try:
                for city in cities:
                    report = corpus.update_document("doc", self.make_tree(city))
                    assert report.incremental, report
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)
            finally:
                stop.set()

        threads = [threading.Thread(target=reader) for _ in range(THREADS - 1)]
        threads.append(threading.Thread(target=updater))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert errors == []
        assert seen, "readers never completed a request"
        stray = [response for response in seen if response not in references]
        assert stray == [], f"{len(stray)} responses matched no document version"

    def test_concurrent_cache_precision_after_update(self):
        """Under 8-thread serving, an update must invalidate exactly the
        affected document's affected entries: the untouched document keeps
        hitting, the unaffected query on the updated document keeps
        hitting, and the affected query misses (ISSUE 3 satellite)."""
        corpus = Corpus()
        corpus.add_tree("doc", self.make_tree("Houston"))
        corpus.add_tree("other", self.make_tree("Houston"))
        affected = SearchRequest(query="city houston", document="doc", size_bound=6)
        unaffected = SearchRequest(query="store oregon", document="doc", size_bound=6)
        untouched = SearchRequest(query="city houston", document="other", size_bound=6)
        requests = [affected, unaffected, untouched] * 4

        with SnippetService(
            corpus, executor=ConcurrentExecutor(max_workers=THREADS)
        ) as service:
            service.run_many(requests)  # warm every cache under contention
            report = corpus.update_document("doc", self.make_tree("Dallas"))
            assert report.incremental
            assert report.cache_entries_kept >= 1

            doc_before = corpus.system("doc").cache.stats_snapshot()
            other_before = corpus.system("other").cache.stats_snapshot()
            responses = service.run_many(requests)
            doc_after = corpus.system("doc").cache.stats_snapshot()
            other_after = corpus.system("other").cache.stats_snapshot()

        assert all(response.kind == "search_response" for response in responses)
        # the untouched document served every repeat from cache
        assert other_after.hits - other_before.hits == requests.count(untouched)
        assert other_after.misses == other_before.misses
        # only the affected query's re-evaluations may miss (identical
        # requests racing before the first one repopulates the entry); the
        # unaffected query keeps hitting from the adopted cache
        doc_lookups = len(requests) - requests.count(untouched)
        miss_delta = doc_after.misses - doc_before.misses
        assert 1 <= miss_delta <= requests.count(affected)
        assert doc_after.hits - doc_before.hits == doc_lookups - miss_delta


class TestLRUCacheUnderContention:
    def test_hammered_cache_keeps_coherent_counters(self):
        cache = LRUCache(maxsize=32)
        operations_per_thread = 500
        barrier = threading.Barrier(THREADS)

        def worker(seed: int) -> None:
            barrier.wait()
            for step in range(operations_per_thread):
                key = (seed * step) % 48  # force hits, misses and evictions
                if cache.get(key) is None:
                    cache.put(key, key)

        threads = [threading.Thread(target=worker, args=(seed + 1,)) for seed in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        stats = cache.stats_snapshot()
        assert stats.hits + stats.misses == THREADS * operations_per_thread
        assert len(cache) <= 32
