"""ServiceClient transport resilience: retry policy and keep-alive reconnect.

A hand-rolled socket server plays the failure modes HTTP libraries are bad
at faking: a server killed mid-request (accept, then slam the connection),
and a keep-alive peer that closes the socket between requests without
saying so.  The assertions count *connections observed by the server* —
the ground truth for "was this request re-sent", which is exactly the
property that separates idempotent reads (retried under a policy) from
updates and replication ops (never re-sent, no matter what).
"""

from __future__ import annotations

import http.client
import json
import socket
import threading

import pytest

from repro.api import RetryPolicy, ServiceClient, UpdateRequest
from repro.errors import ProtocolError


class MiniServer:
    """A tiny HTTP server with scriptable connection behaviour.

    The first ``abort_first`` accepted connections are closed without a
    byte of response — what a client sees when the server dies
    mid-request.  Later connections serve up to ``serve_per_connection``
    well-formed JSON responses, then close the socket *without* a
    ``Connection: close`` header — the stale-keep-alive trap.
    """

    def __init__(self, abort_first: int = 0, serve_per_connection: int = 1):
        self.abort_first = abort_first
        self.serve_per_connection = serve_per_connection
        self.connections = 0
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self._sock.settimeout(0.1)
        self.port = self._sock.getsockname()[1]
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _addr = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            self.connections += 1
            if self.connections <= self.abort_first:
                conn.close()  # the mid-request kill
                continue
            conn.settimeout(5.0)
            try:
                for _ in range(self.serve_per_connection):
                    if not self._read_request(conn):
                        break
                    body = json.dumps(
                        {"status": "ok", "connection": self.connections}
                    ).encode("utf-8")
                    conn.sendall(
                        b"HTTP/1.1 200 OK\r\n"
                        b"Content-Type: application/json\r\n"
                        b"Content-Length: " + str(len(body)).encode("ascii") + b"\r\n"
                        b"\r\n" + body
                    )
            except OSError:
                pass
            finally:
                conn.close()

    @staticmethod
    def _read_request(conn: socket.socket) -> bool:
        """Consume one full HTTP request; False when the peer closed."""
        data = b""
        while b"\r\n\r\n" not in data:
            chunk = conn.recv(4096)
            if not chunk:
                return False
            data += chunk
        head, _, rest = data.partition(b"\r\n\r\n")
        length = 0
        for line in head.split(b"\r\n"):
            if line.lower().startswith(b"content-length:"):
                length = int(line.split(b":", 1)[1].strip())
        while len(rest) < length:
            chunk = conn.recv(4096)
            if not chunk:
                return False
            rest += chunk
        return True

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5)
        self._sock.close()

    def __enter__(self) -> "MiniServer":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.stop()


FAST_RETRY = RetryPolicy(attempts=3, backoff=0.001, multiplier=2.0, max_backoff=0.01)


class TestRetryPolicy:
    def test_delay_schedule_is_exponential_and_capped(self):
        policy = RetryPolicy(attempts=5, backoff=0.05, multiplier=2.0, max_backoff=0.15)
        assert policy.delay_before(2) == pytest.approx(0.05)
        assert policy.delay_before(3) == pytest.approx(0.10)
        assert policy.delay_before(4) == pytest.approx(0.15)  # capped
        assert policy.delay_before(5) == pytest.approx(0.15)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"attempts": 0},
            {"attempts": -1},
            {"attempts": True},
            {"attempts": 2.5},
            {"backoff": -0.1},
            {"max_backoff": -1.0},
            {"multiplier": 0.5},
        ],
    )
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestReadRetry:
    def test_read_survives_a_server_killed_mid_request(self):
        # The first two connections die without a response byte; the third
        # succeeds.  attempts=3 absorbs exactly that.
        with MiniServer(abort_first=2) as server:
            client = ServiceClient("127.0.0.1", server.port, retry=FAST_RETRY)
            reply = client.health()
            assert reply["status"] == "ok"
            assert server.connections == 3

    def test_read_posts_retry_too(self):
        with MiniServer(abort_first=1) as server:
            client = ServiceClient("127.0.0.1", server.port, retry=FAST_RETRY)
            reply = client.post({"kind": "search", "query": "x", "document": "d"})
            assert reply["status"] == "ok"
            assert server.connections == 2

    def test_attempts_are_bounded(self):
        # Everything fails: the client must give up after exactly
        # `attempts` connections, not hammer forever.
        with MiniServer(abort_first=10 ** 6) as server:
            client = ServiceClient("127.0.0.1", server.port, retry=FAST_RETRY)
            with pytest.raises((OSError, http.client.HTTPException)):
                client.health()
            assert server.connections == FAST_RETRY.attempts

    def test_no_policy_means_one_attempt(self):
        with MiniServer(abort_first=10 ** 6) as server:
            client = ServiceClient("127.0.0.1", server.port)
            with pytest.raises((OSError, http.client.HTTPException)):
                client.health()
            assert server.connections == 1


class TestNonIdempotentNeverRetried:
    def test_update_is_sent_exactly_once(self):
        # The server may have applied an update whose response was lost;
        # re-sending would apply it twice.  Even with a retry policy the
        # wire must see exactly one connection.
        with MiniServer(abort_first=10 ** 6) as server:
            client = ServiceClient("127.0.0.1", server.port, retry=FAST_RETRY)
            response = client.execute_update(
                UpdateRequest(action="remove", document="doomed")
            )
            assert response.kind == "error"
            assert response.code == "internal"
            assert "transport failure" in response.message
            assert server.connections == 1

    def test_replicate_is_sent_exactly_once(self):
        with MiniServer(abort_first=10 ** 6) as server:
            client = ServiceClient("127.0.0.1", server.port, retry=FAST_RETRY)
            with pytest.raises((OSError, http.client.HTTPException)):
                client.replicate({"op": "apply-delta", "delta": None, "sequence": 1})
            assert server.connections == 1

    def test_replicate_rejects_unserialisable_payload(self):
        client = ServiceClient("127.0.0.1", 1)
        with pytest.raises(ProtocolError, match="not JSON-serialisable"):
            client.replicate({"op": object()})


class TestKeepAliveReconnect:
    def test_stale_keep_alive_socket_is_reconnected_for_reads(self):
        # The server closes the connection after each response without
        # announcing it; the client's second request hits a dead socket
        # and must transparently reconnect.  Three requests = three
        # server-side connections, all successful.
        with MiniServer(serve_per_connection=1) as server:
            client = ServiceClient("127.0.0.1", server.port, keep_alive=True)
            try:
                for _ in range(3):
                    assert client.health()["status"] == "ok"
            finally:
                client.close()
            assert server.connections == 3

    def test_keep_alive_reuses_a_live_connection(self):
        # Control: when the server honours keep-alive, every request rides
        # one connection — proving the test above really exercised the
        # reconnect path rather than per-request connections.
        with MiniServer(serve_per_connection=100) as server:
            client = ServiceClient("127.0.0.1", server.port, keep_alive=True)
            try:
                for _ in range(3):
                    assert client.health()["status"] == "ok"
            finally:
                client.close()
            assert server.connections == 1

    def test_stale_keep_alive_update_is_not_resent(self):
        # First request warms the connection; the server then closes it.
        # The update that hits the stale socket must NOT be transparently
        # re-sent on a fresh connection — the server never sees a second
        # connection, and the caller gets a structured transport error.
        with MiniServer(serve_per_connection=1) as server:
            client = ServiceClient("127.0.0.1", server.port, keep_alive=True)
            try:
                assert client.health()["status"] == "ok"
                response = client.execute_update(
                    UpdateRequest(action="remove", document="doomed")
                )
            finally:
                client.close()
            assert response.kind == "error"
            assert response.code == "internal"
            assert server.connections == 1
