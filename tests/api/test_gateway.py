"""Tests for the gateway middleware pipeline (:mod:`repro.api.gateway`).

The contracts under test:

* every middleware (and both service facades) satisfies the checked
  :class:`~repro.api.backend.ServingBackend` protocol;
* admission control under concurrent load rejects the overflow with
  ``overloaded`` (never deadlocks, never loses a slot), while admitted
  requests complete correctly;
* deadline expiry surfaces a structured ``deadline_exceeded`` error;
* middleware ordering is observable (capabilities chain + short-circuit
  behaviour);
* metrics count what actually happened.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.api import (
    BatchRequest,
    ErrorResponse,
    SearchRequest,
    SearchResponse,
    ServingBackend,
    SnippetService,
    UpdateRequest,
    build_gateway,
)
from repro.api.gateway import (
    AdmissionControlMiddleware,
    DeadlineMiddleware,
    MetricsMiddleware,
    Middleware,
    ValidationMiddleware,
)
from repro.corpus import Corpus


@pytest.fixture()
def service():
    corpus = Corpus()
    corpus.add_builtin("figure5-stores", name="stores")
    return SnippetService(corpus)


REQUEST = SearchRequest(query="store texas", document="stores", size_bound=6)


class Gate(Middleware):
    """A controllable stage: blocks every request until released."""

    name = "gate"

    def __init__(self, inner):
        super().__init__(inner)
        self.release = threading.Event()
        self.entered = threading.Semaphore(0)

    def process(self, request, call_next):
        self.entered.release()
        assert self.release.wait(timeout=30), "gate never released (deadlock?)"
        return call_next(request)


class Trace(Middleware):
    """Records the order it saw the request in a shared list."""

    name = "trace"

    def __init__(self, inner, log, tag):
        super().__init__(inner)
        self._order_log = log
        self._tag = tag

    def process(self, request, call_next):
        self._order_log.append(f"{self._tag}:in")
        response = call_next(request)
        self._order_log.append(f"{self._tag}:out")
        return response


class TestServingBackendProtocol:
    def test_service_is_a_backend(self, service):
        assert isinstance(service, ServingBackend)

    def test_cluster_is_a_backend(self):
        from repro.cluster import ClusterService

        corpus = Corpus()
        corpus.add_builtin("figure5-stores", name="stores")
        assert isinstance(ClusterService.from_corpus(corpus, shards=2), ServingBackend)

    def test_every_middleware_is_a_backend(self, service):
        stages = [
            ValidationMiddleware(service),
            DeadlineMiddleware(service, timeout=1.0),
            AdmissionControlMiddleware(service, max_in_flight=2),
            MetricsMiddleware(service),
            Middleware(service),
        ]
        for stage in stages:
            assert isinstance(stage, ServingBackend), stage

    def test_client_is_a_backend(self):
        from repro.api import ServiceClient

        assert isinstance(ServiceClient(port=1), ServingBackend)

    def test_transparent_middleware_preserves_bytes(self, service):
        wrapped = Middleware(Middleware(service))
        text = json.dumps(REQUEST.to_dict())
        assert wrapped.handle_json(text) == service.handle_json(text)

    def test_capabilities_report_chain_innermost_first(self, service):
        stack = build_gateway(service, max_in_flight=2, deadline=5.0)
        caps = stack.capabilities()
        assert caps["backend"] == "snippet-service"
        assert caps["middleware"] == [
            "admission",
            "deadline",
            "validation",
            "metrics",
            "tracing",
        ]
        assert caps["documents"] == 1


class TestValidation:
    def test_invalid_request_short_circuits(self, service):
        calls = []

        class Spy(Middleware):
            def process(self, request, call_next):
                calls.append(request)
                return call_next(request)

        stack = ValidationMiddleware(Spy(service))
        response = stack.execute(SearchRequest(query="", document="stores"))
        assert isinstance(response, ErrorResponse)
        assert response.code == "bad_request"
        assert calls == []  # the backend never saw the garbage

    def test_valid_request_passes_through(self, service):
        response = ValidationMiddleware(service).execute(REQUEST)
        assert isinstance(response, SearchResponse)
        assert response.total_results >= 2

    def test_all_three_request_shapes_guarded(self, service):
        stack = ValidationMiddleware(service)
        bad_batch = stack.execute_batch(BatchRequest(queries=()))
        bad_update = stack.execute_update(UpdateRequest(document="", xml="<a/>"))
        assert bad_batch.code == "bad_request"
        assert bad_update.code == "bad_request"


class TestDeadline:
    def test_fast_request_unaffected(self, service):
        stack = DeadlineMiddleware(service, timeout=30.0)
        try:
            response = stack.execute(REQUEST)
            assert isinstance(response, SearchResponse)
        finally:
            stack.close()

    def test_expiry_surfaces_timeout_error(self, service):
        class Slow(Middleware):
            def process(self, request, call_next):
                time.sleep(0.5)
                return call_next(request)

        stack = DeadlineMiddleware(Slow(service), timeout=0.05)
        try:
            started = time.perf_counter()
            response = stack.execute(REQUEST)
            elapsed = time.perf_counter() - started
            assert isinstance(response, ErrorResponse)
            assert response.code == "deadline_exceeded"
            assert response.error == "DeadlineError"
            assert response.request["query"] == REQUEST.query
            assert elapsed < 0.4  # answered at the deadline, not after the work
        finally:
            stack.close()

    def test_rejects_non_positive_timeout(self, service):
        with pytest.raises(ValueError):
            DeadlineMiddleware(service, timeout=0)

    def test_worker_exception_propagates(self, service):
        class Broken(Middleware):
            def process(self, request, call_next):
                raise RuntimeError("programming error")

        stack = DeadlineMiddleware(Broken(service), timeout=5.0)
        with pytest.raises(RuntimeError, match="programming error"):
            stack.execute(REQUEST)

    def test_abandoned_worker_keeps_its_admission_slot(self, service):
        # build_gateway composes admission INSIDE the deadline: a timed-out
        # request's worker must hold its slot until the backend call really
        # finishes, so max_in_flight bounds actual backend concurrency and
        # a wedged backend sheds later arrivals instead of stacking
        # abandoned workers.
        gate = Gate(service)
        admission = AdmissionControlMiddleware(gate, max_in_flight=1)
        stack = DeadlineMiddleware(admission, timeout=0.2)

        stuck = stack.execute(REQUEST)
        assert stuck.code == "deadline_exceeded"
        shed = stack.execute(REQUEST)  # slot still held by the stuck worker
        assert shed.code == "overloaded"
        gate.release.set()
        deadline = time.time() + 10
        while time.time() < deadline:  # slot frees once the worker finishes
            response = stack.execute(REQUEST)
            if isinstance(response, SearchResponse):
                break
            time.sleep(0.05)
        assert isinstance(response, SearchResponse)
        assert admission.stats()["admission"]["rejected"] >= 1

    def test_abandoned_workers_never_block_new_requests(self, service):
        # A timed-out request's worker keeps running in the background;
        # requests admitted afterwards must get a *fresh* worker, not
        # queue behind the dead one and burn their deadline waiting.
        release = threading.Event()

        class StuckOnce(Middleware):
            def __init__(self, inner):
                super().__init__(inner)
                self.calls = 0
                self._lock = threading.Lock()

            def process(self, request, call_next):
                with self._lock:
                    self.calls += 1
                    first = self.calls == 1
                if first:
                    assert release.wait(timeout=30)
                return call_next(request)

        stack = DeadlineMiddleware(StuckOnce(service), timeout=0.2)
        try:
            stuck = stack.execute(REQUEST)
            assert stuck.code == "deadline_exceeded"
            fresh = stack.execute(REQUEST)  # must not wait for the stuck worker
            assert isinstance(fresh, SearchResponse)
        finally:
            release.set()


class TestAdmissionControl:
    def test_burst_beyond_limit_gets_overloaded(self, service):
        limit = 2
        extra = 4
        gate = Gate(service)
        stack = AdmissionControlMiddleware(gate, max_in_flight=limit)
        responses: list = [None] * (limit + extra)

        def call(index):
            responses[index] = stack.execute(REQUEST)

        threads = [
            threading.Thread(target=call, args=(index,))
            for index in range(limit + extra)
        ]
        for thread in threads[:limit]:
            thread.start()
        # Wait until both admitted requests are inside the gate, so the
        # burst below deterministically finds every slot taken.
        for _ in range(limit):
            assert gate.entered.acquire(timeout=10)
        for thread in threads[limit:]:
            thread.start()
        for thread in threads[limit:]:
            thread.join(timeout=10)  # rejections return without the gate
            assert not thread.is_alive(), "overload path blocked (deadlock?)"
        gate.release.set()
        for thread in threads[:limit]:
            thread.join(timeout=30)
            assert not thread.is_alive()

        overloaded = [r for r in responses if isinstance(r, ErrorResponse)]
        served = [r for r in responses if isinstance(r, SearchResponse)]
        assert len(overloaded) == extra
        assert len(served) == limit
        for response in overloaded:
            assert response.code == "overloaded"
            assert response.error == "OverloadedError"
        for response in served:  # admitted work completed correctly
            assert response.total_results >= 2
        stats = stack.stats()["admission"]
        assert stats == {"max_in_flight": limit, "admitted": limit, "rejected": extra}

    def test_slots_are_released_after_completion(self, service):
        stack = AdmissionControlMiddleware(service, max_in_flight=1)
        for _ in range(5):  # sequential requests never trip the limit
            assert isinstance(stack.execute(REQUEST), SearchResponse)
        assert stack.stats()["admission"]["rejected"] == 0

    def test_slot_released_when_backend_errors(self, service):
        stack = AdmissionControlMiddleware(service, max_in_flight=1)
        for _ in range(3):
            response = stack.execute(SearchRequest(query="x", document="ghost"))
            assert response.code == "unknown_document"
        assert stack.stats()["admission"]["admitted"] == 3

    def test_rejects_non_positive_limit(self, service):
        with pytest.raises(ValueError):
            AdmissionControlMiddleware(service, max_in_flight=0)


class TestMetrics:
    def test_counts_requests_and_errors(self, service):
        logged = []
        stack = MetricsMiddleware(
            service, log=lambda req, resp, secs: logged.append((req.kind, resp.kind))
        )
        stack.execute(REQUEST)
        stack.execute(SearchRequest(query="x", document="ghost"))
        stack.execute_batch(BatchRequest(queries=("store",)))
        stats = stack.stats()["requests"]
        assert stats["total"] == 3
        assert stats["by_kind"] == {"search": 2, "batch": 1}
        assert stats["errors"] == 1
        assert stats["by_code"] == {"unknown_document": 1}
        assert stats["seconds"] > 0
        assert logged == [
            ("search", "search_response"),
            ("search", "error"),
            ("batch", "batch_response"),
        ]

    def test_failing_logger_never_fails_the_request(self, service):
        def bad_log(*_args):
            raise RuntimeError("observability crashed")

        stack = MetricsMiddleware(service, log=bad_log)
        assert isinstance(stack.execute(REQUEST), SearchResponse)

    def test_malformed_payloads_are_counted(self, service):
        # Garbage never produces a typed request, but a flood of it must
        # still be visible in the stats (the "invalid" kind bucket).
        stack = MetricsMiddleware(service)
        stack.handle_json("{not json")
        stack.handle_dict({"kind": "nope"})
        stack.handle_dict([1, 2])
        stack.execute(REQUEST)
        stats = stack.stats()["requests"]
        assert stats["total"] == 4
        assert stats["by_kind"] == {"invalid": 3, "search": 1}
        assert stats["errors"] == 3
        assert stats["by_code"] == {"bad_request": 3}

    def test_parseable_requests_counted_exactly_once(self, service):
        stack = MetricsMiddleware(service)
        stack.handle_dict(REQUEST.to_dict())  # flows through process() only
        assert stack.stats()["requests"]["total"] == 1


class TestOrdering:
    def test_order_is_observable_and_matches_composition(self, service):
        order: list[str] = []
        stack = Trace(Trace(service, order, "inner"), order, "outer")
        stack.execute(REQUEST)
        assert order == ["outer:in", "inner:in", "inner:out", "outer:out"]

    def test_validation_before_admission_spares_a_slot(self, service):
        # build_gateway puts validation outside admission: garbage must be
        # rejected without ever touching the admission counters.
        stack = build_gateway(service, max_in_flight=1, metrics=False)
        admission = stack.inner.inner  # tracing -> validation -> admission -> backend
        assert isinstance(admission, AdmissionControlMiddleware)
        response = stack.execute(SearchRequest(query="", document="stores"))
        assert response.code == "bad_request"
        assert admission.stats()["admission"] == {
            "max_in_flight": 1,
            "admitted": 0,
            "rejected": 0,
        }

    def test_metrics_outermost_counts_shed_load(self, service):
        gate = Gate(service)
        admission = AdmissionControlMiddleware(gate, max_in_flight=1)
        stack = MetricsMiddleware(admission)

        blocker = threading.Thread(target=stack.execute, args=(REQUEST,))
        blocker.start()
        assert gate.entered.acquire(timeout=10)
        rejected = stack.execute(REQUEST)
        gate.release.set()
        blocker.join(timeout=30)
        assert rejected.code == "overloaded"
        stats = stack.stats()["requests"]
        assert stats["total"] == 2  # the shed request was counted too
        assert stats["by_code"] == {"overloaded": 1}

    def test_close_closes_the_whole_stack(self, service):
        stack = build_gateway(service, max_in_flight=2, deadline=5.0)
        stack.close()
        # the service's executor honours the documented lifecycle contract
        assert service.executor.closed

    def test_gateway_wire_bytes_match_bare_backend(self, service):
        corpus = Corpus()
        corpus.add_builtin("figure5-stores", name="stores")
        bare = SnippetService(corpus)
        stack = build_gateway(service, max_in_flight=8, deadline=30.0)
        try:
            for payload in (
                REQUEST.to_dict(),
                BatchRequest(queries=("store texas",)).to_dict(),
                SearchRequest(query="x", document="ghost").to_dict(),
            ):
                text = json.dumps(payload)
                assert stack.handle_json(text) == bare.handle_json(text)
        finally:
            stack.close()
