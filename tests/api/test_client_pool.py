"""ClientPool: one keep-alive connection per worker slot.

The load harness (``repro.eval.loadgen``) gives each worker thread one
dedicated keep-alive client; the property that makes the pool worth
having — N workers issuing M requests each cost exactly N connections,
not N×M — is asserted against the same :class:`MiniServer` the retry
tests use, because *connections observed by the server* is the ground
truth a mocked transport cannot fake.
"""

from __future__ import annotations

import threading

import pytest

from repro.api import ClientPool

from test_client_retry import MiniServer


class TestClientPool:
    def test_n_workers_m_requests_cost_n_connections(self):
        with MiniServer(serve_per_connection=100) as server:
            with ClientPool(port=server.port, size=3) as pool:
                def work(worker: int) -> None:
                    client = pool.client(worker)
                    for _ in range(4):
                        assert client.health()["status"] == "ok"

                threads = [
                    threading.Thread(target=work, args=(worker,))
                    for worker in range(3)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
            assert server.connections == 3

    def test_clients_are_lazy_and_sticky(self):
        pool = ClientPool(port=1, size=4)
        assert len(pool) == 4
        assert pool.clients() == []  # nothing built for idle slots
        first = pool.client(2)
        assert pool.client(2) is first  # same worker, same client
        assert pool.clients() == [first]

    def test_worker_index_bounds(self):
        pool = ClientPool(port=1, size=2)
        with pytest.raises(ValueError):
            pool.client(-1)
        with pytest.raises(ValueError):
            pool.client(2)

    @pytest.mark.parametrize("size", [0, -1, 1.5, True])
    def test_invalid_size_rejected(self, size):
        with pytest.raises(ValueError):
            ClientPool(port=1, size=size)

    def test_close_resets_but_pool_stays_usable(self):
        with MiniServer(serve_per_connection=100) as server:
            pool = ClientPool(port=server.port, size=2)
            assert pool.client(0).health()["status"] == "ok"
            pool.close()
            assert pool.clients() == []
            # a later client() call reconnects lazily on a new connection
            assert pool.client(0).health()["status"] == "ok"
            pool.close()
            assert server.connections == 2

    def test_context_manager_closes(self):
        with MiniServer(serve_per_connection=100) as server:
            with ClientPool(port=server.port, size=1) as pool:
                pool.client(0).health()
                assert len(pool.clients()) == 1
            assert pool.clients() == []
