"""Tests for the HTTP frontend (:mod:`repro.api.http`) and typed client.

The headline contract (the PR's acceptance criterion): for every request
shape, the default (meta-free) JSON body served over a real listening
socket is **byte-identical** to the in-process ``handle_json`` result —
for a single-corpus :class:`SnippetService` backend and for a 3-shard
:class:`ClusterService` backend alike.  On top of that: error codes map to
the documented HTTP statuses, health/stats work, keep-alive works, and
the typed client round-trips protocol objects.
"""

from __future__ import annotations

import http.client
import json
import threading

import pytest

from repro.api import (
    BatchRequest,
    ErrorResponse,
    SearchRequest,
    SearchResponse,
    ServiceClient,
    SnippetService,
    UpdateRequest,
    UpdateResponse,
    build_gateway,
)
from repro.api.http import HttpServer
from repro.corpus import Corpus
from repro.xmltree.diff import clone_tree
from repro.xmltree.serialize import to_xml_string


def _fresh_corpus() -> Corpus:
    corpus = Corpus()
    corpus.add_builtin("figure5-stores", name="stores")
    corpus.add_builtin("retail")
    return corpus


def _edited_stores_xml(corpus: Corpus) -> str:
    edited = clone_tree(corpus.system("stores").index.tree)
    for node in edited.iter_nodes():
        if node.tag == "state" and node.text == "Texas":
            node.text = "Nevada"
            break
    return to_xml_string(edited)


def _backend(kind: str):
    if kind == "service":
        return SnippetService(_fresh_corpus())
    from repro.cluster import ClusterService

    return ClusterService.from_corpus(_fresh_corpus(), shards=3)


def _raw_post(port: int, path: str, body: str) -> tuple[int, str]:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request("POST", path, body=body.encode("utf-8"))
        response = conn.getresponse()
        return response.status, response.read().decode("utf-8")
    finally:
        conn.close()


def _raw_get(port: int, path: str) -> tuple[int, str]:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, response.read().decode("utf-8")
    finally:
        conn.close()


#: every request shape of the protocol, with its endpoint.  Updates run
#: last in the byte-identity walk, so earlier searches see the same
#: corpus state on both sides.
def _request_shapes(reference_corpus: Corpus) -> list[tuple[str, dict]]:
    update_xml = _edited_stores_xml(reference_corpus)
    return [
        ("/v1/search", SearchRequest(query="store texas", document="stores", size_bound=6).to_dict()),
        ("/v1/search", SearchRequest(query="store", document="stores", page_size=1, page=2).to_dict()),
        ("/v1/search", SearchRequest(query="clothes casual", document="retail", include_snippets=False).to_dict()),
        ("/v1/search", SearchRequest(query="store", document="ghost").to_dict()),
        ("/v1/batch", BatchRequest(queries=("store texas", "clothes casual"), size_bound=6).to_dict()),
        ("/v1/batch", BatchRequest(queries=("store",), documents=("stores", "retail")).to_dict()),
        ("/v1/update", UpdateRequest(document="stores", xml=update_xml).to_dict()),
        ("/v1/update", UpdateRequest(document="ghost", action="remove").to_dict()),
    ]


class TestByteIdentity:
    @pytest.mark.parametrize("backend_kind", ["service", "cluster"])
    def test_http_body_identical_to_handle_json(self, backend_kind):
        served = _backend(backend_kind)
        reference = _backend(backend_kind)
        reference_corpus = _fresh_corpus()
        with HttpServer(served, port=0) as server:
            for path, payload in _request_shapes(reference_corpus):
                text = json.dumps(payload, sort_keys=True)
                expected = reference.handle_json(text)
                status, body = _raw_post(server.port, path, text)
                assert body == expected, (path, payload)
                expected_dict = json.loads(expected)
                if expected_dict.get("kind") == "error":
                    assert status != 200
                else:
                    assert status == 200

    def test_malformed_bodies_identical_too(self):
        served = SnippetService(_fresh_corpus())
        reference = SnippetService(_fresh_corpus())
        with HttpServer(served, port=0) as server:
            for text in ("{not json", "[1,2]", "null", '"x"', '{"kind": ["search"]}'):
                status, body = _raw_post(server.port, "/v1/search", text)
                assert body == reference.handle_json(text)
                assert status == 400


class TestStatusMapping:
    @pytest.fixture(scope="class")
    def server(self):
        backend = SnippetService(_fresh_corpus())
        with HttpServer(backend, port=0) as server:
            yield server

    def test_ok_is_200(self, server):
        status, _ = _raw_post(
            server.port,
            "/v1/search",
            json.dumps(SearchRequest(query="store texas", document="stores").to_dict()),
        )
        assert status == 200

    def test_unknown_document_is_404(self, server):
        status, body = _raw_post(
            server.port,
            "/v1/search",
            json.dumps(SearchRequest(query="store", document="ghost").to_dict()),
        )
        assert status == 404
        assert json.loads(body)["code"] == "unknown_document"

    def test_bad_request_is_400(self, server):
        status, body = _raw_post(server.port, "/v1/search", "{broken")
        assert status == 400
        assert json.loads(body)["code"] == "bad_request"

    def test_kind_endpoint_mismatch_is_400(self, server):
        status, body = _raw_post(
            server.port,
            "/v1/batch",
            json.dumps(SearchRequest(query="store", document="stores").to_dict()),
        )
        assert status == 400
        payload = json.loads(body)
        assert payload["code"] == "bad_request"
        assert "/v1/batch" in payload["message"]

    def test_unknown_endpoint_is_404(self, server):
        status, body = _raw_post(server.port, "/v2/search", "{}")
        assert status == 404
        assert json.loads(body)["code"] == "not_found"

    def test_oversized_request_line_is_400_not_dropped(self, server):
        # A request line beyond the stream buffer must produce a 400
        # response, not a silently dropped connection.
        import socket

        with socket.create_connection(("127.0.0.1", server.port), timeout=30) as sock:
            sock.sendall(b"GET /" + b"a" * 70000 + b" HTTP/1.1\r\n\r\n")
            raw = b""
            while b"\r\n\r\n" not in raw:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                raw += chunk
        assert raw.startswith(b"HTTP/1.1 400 "), raw[:80]

    def test_backend_crash_answers_500(self):
        class Exploding(SnippetService):
            def handle_dict(self, payload, request=None):
                raise RuntimeError("backend blew up")

        with HttpServer(Exploding(_fresh_corpus()), port=0) as server:
            status, body = _raw_post(
                server.port,
                "/v1/search",
                json.dumps(SearchRequest(query="store", document="stores").to_dict()),
            )
            assert status == 500
            payload = json.loads(body)
            assert payload["code"] == "internal"
            assert "backend blew up" in payload["message"]

    def test_unsupported_method_is_405(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        try:
            conn.request("DELETE", "/v1/search")
            response = conn.getresponse()
            assert response.status == 405
            assert json.loads(response.read())["code"] == "method_not_allowed"
        finally:
            conn.close()

    def test_wrong_verb_on_existing_endpoint_is_405(self, server):
        # The endpoint exists, the verb is wrong: 405, not 404 — the
        # documented distinction between the two codes.
        status, body = _raw_get(server.port, "/v1/search")
        assert status == 405
        payload = json.loads(body)
        assert payload["code"] == "method_not_allowed"
        assert "use POST" in payload["message"]
        status, body = _raw_post(server.port, "/v1/health", "{}")
        assert status == 405
        assert "use GET" in json.loads(body)["message"]

    def test_chunked_transfer_encoding_rejected(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        try:
            conn.putrequest("POST", "/v1/search", skip_accept_encoding=True)
            conn.putheader("Transfer-Encoding", "chunked")
            conn.endheaders()
            conn.send(b"5\r\nhello\r\n0\r\n\r\n")
            response = conn.getresponse()
            assert response.status == 400
            payload = json.loads(response.read())
            assert payload["code"] == "bad_request"
            assert "Transfer-Encoding" in payload["message"]
        finally:
            conn.close()

    def test_health_and_stats(self, server):
        status, body = _raw_get(server.port, "/v1/health")
        assert status == 200
        health = json.loads(body)
        assert health["status"] == "ok"
        assert health["backend"]["backend"] == "snippet-service"
        assert health["backend"]["documents"] == 2
        status, body = _raw_get(server.port, "/v1/stats")
        assert status == 200
        assert "documents" in json.loads(body)

    def test_keep_alive_serves_sequential_requests(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        try:
            for _ in range(3):
                conn.request(
                    "POST",
                    "/v1/search",
                    body=json.dumps(
                        SearchRequest(query="store texas", document="stores").to_dict()
                    ).encode(),
                )
                response = conn.getresponse()
                assert response.status == 200
                response.read()  # drain so the connection can be reused
        finally:
            conn.close()


class TestGatewayOverHttp:
    def test_overloaded_maps_to_503(self):
        # A 1-slot gateway with a gated backend: the second concurrent
        # request must be shed with HTTP 503 while the first completes.
        from repro.api.gateway import AdmissionControlMiddleware, Middleware

        release = threading.Event()

        class Gate(Middleware):
            name = "gate"

            def __init__(self, inner):
                super().__init__(inner)
                self.entered = threading.Semaphore(0)

            def process(self, request, call_next):
                self.entered.release()
                assert release.wait(timeout=30)
                return call_next(request)

        gate = Gate(SnippetService(_fresh_corpus()))
        stack = AdmissionControlMiddleware(gate, max_in_flight=1)
        with HttpServer(stack, port=0) as server:
            payload = json.dumps(
                SearchRequest(query="store texas", document="stores").to_dict()
            )
            first: dict = {}

            def blocked():
                first["status"], first["body"] = _raw_post(
                    server.port, "/v1/search", payload
                )

            thread = threading.Thread(target=blocked)
            thread.start()
            assert gate.entered.acquire(timeout=10)
            status, body = _raw_post(server.port, "/v1/search", payload)
            release.set()
            thread.join(timeout=30)
            assert status == 503
            assert json.loads(body)["code"] == "overloaded"
            assert first["status"] == 200  # the admitted request completed

    def test_deadline_maps_to_504(self):
        import time

        from repro.api.gateway import DeadlineMiddleware, Middleware

        class Slow(Middleware):
            name = "slow"

            def process(self, request, call_next):
                time.sleep(0.5)
                return call_next(request)

        stack = DeadlineMiddleware(Slow(SnippetService(_fresh_corpus())), timeout=0.05)
        with HttpServer(stack, port=0) as server:
            status, body = _raw_post(
                server.port,
                "/v1/search",
                json.dumps(SearchRequest(query="store", document="stores").to_dict()),
            )
            assert status == 504
            assert json.loads(body)["code"] == "deadline_exceeded"


class TestServiceClient:
    @pytest.fixture(scope="class")
    def server(self):
        backend = build_gateway(SnippetService(_fresh_corpus()), max_in_flight=8)
        with HttpServer(backend, port=0) as server:
            yield server

    def test_execute_returns_typed_response(self, server):
        client = ServiceClient(port=server.port)
        response = client.execute(
            SearchRequest(query="store texas", document="stores", size_bound=6)
        )
        assert isinstance(response, SearchResponse)
        assert response.total_results >= 2
        assert response.results[0].text

    def test_execute_batch_and_update(self, server):
        client = ServiceClient(port=server.port)
        batch = client.execute_batch(BatchRequest(queries=("store texas",)))
        assert batch.kind == "batch_response"
        assert batch.documents == ("retail", "stores")
        update = client.execute_update(
            UpdateRequest(
                document="stores", xml=_edited_stores_xml(_fresh_corpus())
            )
        )
        assert isinstance(update, UpdateResponse)
        assert update.action == "updated"

    def test_error_comes_back_typed(self, server):
        client = ServiceClient(port=server.port)
        response = client.execute(SearchRequest(query="store", document="ghost"))
        assert isinstance(response, ErrorResponse)
        assert response.code == "unknown_document"

    def test_keep_alive_client(self, server):
        client = ServiceClient(port=server.port, keep_alive=True)
        try:
            for _ in range(3):
                response = client.execute(
                    SearchRequest(query="store texas", document="stores")
                )
                assert isinstance(response, SearchResponse)
        finally:
            client.close()

    def test_handle_dict_total_on_garbage(self, server):
        # The client's JSON endpoints are total functions too: unhashable
        # kinds, non-objects and unserialisable payloads all come back as
        # structured errors through the server (or locally), never raise.
        client = ServiceClient(port=server.port)
        for payload in ({"kind": ["search"]}, {"kind": {"a": 1}}, [1, 2], None, 42):
            response = client.handle_dict(payload)
            assert response["kind"] == "error"
            assert response["code"] == "bad_request"
        unserialisable = client.handle_dict({"kind": "search", "query": object()})
        assert unserialisable["kind"] == "error"

    def test_transport_failure_is_structured(self):
        # Nothing listens on port 1 — the client must answer with a
        # structured internal error, not raise through execute().
        client = ServiceClient(port=1, timeout=0.5)
        response = client.execute(SearchRequest(query="q", document="d"))
        assert isinstance(response, ErrorResponse)
        assert response.code == "internal"
        with pytest.raises(OSError):
            client.health()  # health checks do raise: "down" != "unhealthy"

    def test_health_and_capabilities(self, server):
        client = ServiceClient(port=server.port)
        assert client.health()["status"] == "ok"
        caps = client.capabilities()
        assert caps["backend"] == "snippet-service"
        assert "metrics" in caps["middleware"]
        assert client.stats()["requests"]["total"] >= 1


class TestServerLifecycle:
    def test_max_requests_stops_the_server(self):
        backend = SnippetService(_fresh_corpus())
        server = HttpServer(backend, port=0, max_requests=2)
        server.start()
        try:
            _raw_get(server.port, "/v1/health")
            _raw_get(server.port, "/v1/health")
            server.join(timeout=10)
            assert server.requests_served == 2
        finally:
            server.stop()

    def test_stop_is_idempotent(self):
        server = HttpServer(SnippetService(_fresh_corpus()), port=0)
        server.start()
        server.stop()
        server.stop()

    def test_restart_after_stop(self):
        server = HttpServer(SnippetService(_fresh_corpus()), port=0)
        server.start()
        first_port = server.port
        server.stop()
        # stop() closed the owned executor; start() must reopen it so the
        # restarted server actually serves (not 500 off a closed pool).
        server.start()
        try:
            status, _ = _raw_get(server.port, "/v1/health")
            assert status == 200
            status, body = _raw_post(
                server.port,
                "/v1/search",
                json.dumps(
                    SearchRequest(query="store texas", document="stores").to_dict()
                ),
            )
            assert status == 200
            assert json.loads(body)["total_results"] >= 2
            assert server.port != 0 and first_port != 0
        finally:
            server.stop()
