"""The runtime twin of the static ``error-contract`` rule: walk
``repro.errors`` with :mod:`inspect` and assert the protocol's error-code
tables cover it.  The static rule checks the source; this checks the live
modules, so the contract holds even when the linter is skipped."""

from __future__ import annotations

import inspect

import pytest

import repro.errors as errors_module
from repro.api.protocol import (
    ERROR_CODES,
    HTTP_STATUS_BY_CODE,
    _CODE_BY_EXCEPTION,
    code_for_exception,
    http_status_for_code,
)
from repro.errors import ExtractError


def _error_classes() -> list[type[ExtractError]]:
    """Every concrete ExtractError subclass defined in repro.errors."""
    classes = [
        cls
        for _name, cls in inspect.getmembers(errors_module, inspect.isclass)
        if issubclass(cls, ExtractError) and cls.__module__ == errors_module.__name__
    ]
    assert len(classes) >= 15  # the hierarchy, not an accidental empty walk
    return classes


class TestCodeTables:
    def test_every_code_has_an_http_status(self):
        assert set(ERROR_CODES) == set(HTTP_STATUS_BY_CODE)

    def test_statuses_are_plausible_http_codes(self):
        for code, status in HTTP_STATUS_BY_CODE.items():
            assert 400 <= status <= 599, (code, status)

    def test_internal_fallback_exists(self):
        assert "internal" in ERROR_CODES
        assert http_status_for_code("internal") == 500

    def test_unknown_code_falls_back_to_500(self):
        assert http_status_for_code("no-such-code") == 500
        assert http_status_for_code(None) == 500

    def test_mapping_targets_are_declared_codes(self):
        for exc_class, code in _CODE_BY_EXCEPTION:
            assert code in ERROR_CODES, (exc_class.__name__, code)

    def test_mapping_classes_live_in_repro_errors(self):
        for exc_class, _code in _CODE_BY_EXCEPTION:
            assert exc_class.__module__ == errors_module.__name__
            assert issubclass(exc_class, ExtractError)


class TestExceptionCoverage:
    @pytest.mark.parametrize(
        "exc_class", _error_classes(), ids=lambda cls: cls.__name__
    )
    def test_every_errors_class_maps_to_a_declared_code(self, exc_class):
        code = code_for_exception(exc_class("boom"))
        assert code in ERROR_CODES
        assert http_status_for_code(code) in range(400, 600)

    def test_specific_wire_semantics_preserved(self):
        from repro.errors import (
            DeadlineError,
            OverloadedError,
            PagingError,
            ProtocolError,
            UnknownDocumentError,
        )

        expectations = {
            UnknownDocumentError: ("unknown_document", 404),
            OverloadedError: ("overloaded", 503),
            DeadlineError: ("deadline_exceeded", 504),
            PagingError: ("invalid_page", 400),
            ProtocolError: ("bad_request", 400),
        }
        for exc_class, (code, status) in expectations.items():
            assert code_for_exception(exc_class("x")) == code
            assert http_status_for_code(code) == status

    def test_foreign_exception_maps_to_internal(self):
        assert code_for_exception(RuntimeError("boom")) == "internal"
