"""Tests for index persistence."""

from __future__ import annotations

import os

import pytest

from repro.errors import StorageError
from repro.index.builder import IndexBuilder
from repro.index.storage import load_index, save_index


class TestSaveLoad:
    def test_round_trip(self, small_index, tmp_path):
        directory = tmp_path / "idx"
        save_index(small_index, directory)
        assert (directory / "document.xml").exists()
        assert (directory / "inverted.idx").exists()

        loaded = load_index(directory)
        assert loaded.tree.size_nodes == small_index.tree.size_nodes
        assert loaded.inverted.vocabulary == small_index.inverted.vocabulary
        assert loaded.keyword_matches("texas").to_strings() == small_index.keyword_matches(
            "texas"
        ).to_strings()

    def test_loaded_index_searchable(self, small_index, tmp_path):
        from repro.search.engine import SearchEngine

        save_index(small_index, tmp_path / "idx")
        loaded = load_index(tmp_path / "idx")
        results = SearchEngine(loaded).search("store texas")
        assert len(results) == 2

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(StorageError):
            load_index(tmp_path / "does-not-exist")

    def test_missing_index_file_raises(self, small_index, tmp_path):
        directory = tmp_path / "idx"
        save_index(small_index, directory)
        os.remove(directory / "inverted.idx")
        with pytest.raises(StorageError):
            load_index(directory)

    def test_bad_header_raises(self, small_index, tmp_path):
        directory = tmp_path / "idx"
        save_index(small_index, directory)
        (directory / "inverted.idx").write_text("garbage\n", encoding="utf-8")
        with pytest.raises(StorageError):
            load_index(directory)

    def test_node_count_mismatch_raises(self, small_index, tmp_path):
        directory = tmp_path / "idx"
        save_index(small_index, directory)
        index_file = directory / "inverted.idx"
        content = index_file.read_text(encoding="utf-8").replace(
            f"#nodes {small_index.tree.size_nodes}", "#nodes 9999"
        )
        index_file.write_text(content, encoding="utf-8")
        with pytest.raises(StorageError):
            load_index(directory)

    def test_save_creates_directory(self, small_index, tmp_path):
        nested = tmp_path / "a" / "b" / "c"
        save_index(small_index, nested)
        assert nested.exists()


class TestSnapshotV3:
    def test_document_name_survives_round_trip(self, small_index, tmp_path):
        save_index(small_index, tmp_path / "idx")
        loaded = load_index(tmp_path / "idx")
        assert loaded.tree.name == small_index.tree.name == "small-retailer"

    def test_snapshot_contains_all_sections(self, small_index, tmp_path):
        save_index(small_index, tmp_path / "idx")
        content = (tmp_path / "idx" / "inverted.idx").read_text(encoding="utf-8")
        lines = content.splitlines()
        assert lines[0] == "#extract-index v3"
        assert any(line.startswith("#summary entity=") for line in lines)
        assert any(line.startswith("#counts terms=") for line in lines)
        assert any(line.startswith("T ") for line in lines)
        assert any(line.startswith("P ") for line in lines)
        assert lines[-1] == "#end"

    def test_truncated_snapshot_raises(self, small_index, tmp_path):
        # Cut the file mid-way: the missing #end sentinel (and short
        # section counts) must be rejected before any posting is trusted.
        save_index(small_index, tmp_path / "idx")
        index_file = tmp_path / "idx" / "inverted.idx"
        lines = index_file.read_text(encoding="utf-8").splitlines()
        cut = len(lines) // 2
        index_file.write_text("\n".join(lines[:cut]) + "\n", encoding="utf-8")
        with pytest.raises(StorageError, match="truncated"):
            load_index(tmp_path / "idx")

    def test_missing_end_sentinel_raises(self, small_index, tmp_path):
        save_index(small_index, tmp_path / "idx")
        index_file = tmp_path / "idx" / "inverted.idx"
        content = index_file.read_text(encoding="utf-8")
        index_file.write_text(content.replace("#end\n", ""), encoding="utf-8")
        with pytest.raises(StorageError, match="#end"):
            load_index(tmp_path / "idx")

    def test_dropped_posting_line_raises(self, small_index, tmp_path):
        # Remove one T line but keep the sentinel: the #counts section
        # still detects the loss.
        save_index(small_index, tmp_path / "idx")
        index_file = tmp_path / "idx" / "inverted.idx"
        lines = index_file.read_text(encoding="utf-8").splitlines()
        survivors = [line for line in lines if not line.startswith("T texas")]
        assert len(survivors) == len(lines) - 1
        index_file.write_text("\n".join(survivors) + "\n", encoding="utf-8")
        with pytest.raises(StorageError):
            load_index(tmp_path / "idx")

    def test_content_after_end_sentinel_is_ignored(self, small_index, tmp_path):
        # #end terminates the snapshot: a concatenated fragment must not be
        # able to override the validated header sections.
        save_index(small_index, tmp_path / "idx")
        index_file = tmp_path / "idx" / "inverted.idx"
        content = index_file.read_text(encoding="utf-8")
        index_file.write_text(
            content + "#counts terms=0 paths=0\n#document hijacked\nT bogus 9.9\n",
            encoding="utf-8",
        )
        loaded = load_index(tmp_path / "idx")
        assert loaded.tree.name == small_index.tree.name
        assert loaded.inverted.vocabulary == small_index.inverted.vocabulary

    def test_v2_snapshot_still_loads(self, small_index, tmp_path):
        save_index(small_index, tmp_path / "idx")
        index_file = tmp_path / "idx" / "inverted.idx"
        lines = index_file.read_text(encoding="utf-8").splitlines()
        v2_lines = ["#extract-index v2"] + [
            line
            for line in lines[1:]
            if not line.startswith("#counts") and line != "#end"
        ]
        index_file.write_text("\n".join(v2_lines) + "\n", encoding="utf-8")
        loaded = load_index(tmp_path / "idx")
        assert loaded.inverted.vocabulary == small_index.inverted.vocabulary

    def test_structure_paths_round_trip(self, small_index, tmp_path):
        save_index(small_index, tmp_path / "idx")
        loaded = load_index(tmp_path / "idx")
        assert loaded.structure.known_paths == small_index.structure.known_paths

    def test_postings_byte_identical_round_trip(self, small_index, tmp_path):
        save_index(small_index, tmp_path / "idx")
        loaded = load_index(tmp_path / "idx")
        original = small_index.inverted.postings_dict()
        restored = loaded.inverted.postings_dict()
        assert sorted(original) == sorted(restored)
        for term, postings in original.items():
            assert restored[term].to_strings() == postings.to_strings(), term

    def test_repeated_save_load_is_stable(self, small_index, tmp_path):
        save_index(small_index, tmp_path / "a")
        first = load_index(tmp_path / "a")
        save_index(first, tmp_path / "b")
        second = load_index(tmp_path / "b")
        content_a = (tmp_path / "a" / "inverted.idx").read_text(encoding="utf-8")
        content_b = (tmp_path / "b" / "inverted.idx").read_text(encoding="utf-8")
        assert content_a == content_b
        assert second.inverted.vocabulary == first.inverted.vocabulary

    def test_v1_snapshot_still_loads(self, small_index, tmp_path):
        save_index(small_index, tmp_path / "idx")
        index_file = tmp_path / "idx" / "inverted.idx"
        lines = index_file.read_text(encoding="utf-8").splitlines()
        v1_lines = ["#extract-index v1"] + [
            line
            for line in lines[1:]
            if not line.startswith(("#summary", "#counts", "P ")) and line != "#end"
        ]
        index_file.write_text("\n".join(v1_lines) + "\n", encoding="utf-8")
        loaded = load_index(tmp_path / "idx")
        assert loaded.inverted.vocabulary == small_index.inverted.vocabulary

    def test_tampered_summary_raises(self, small_index, tmp_path):
        save_index(small_index, tmp_path / "idx")
        index_file = tmp_path / "idx" / "inverted.idx"
        content = index_file.read_text(encoding="utf-8")
        tampered = content.replace("#summary entity=", "#summary entity=9")
        index_file.write_text(tampered, encoding="utf-8")
        with pytest.raises(StorageError):
            load_index(tmp_path / "idx")

    def test_tampered_structure_paths_raise(self, small_index, tmp_path):
        save_index(small_index, tmp_path / "idx")
        index_file = tmp_path / "idx" / "inverted.idx"
        content = index_file.read_text(encoding="utf-8")
        tampered = content.replace("P retailer ", "P bogus-path ", 1)
        index_file.write_text(tampered, encoding="utf-8")
        with pytest.raises(StorageError):
            load_index(tmp_path / "idx")

    def test_search_results_identical_after_load(self, small_index, tmp_path):
        from repro.system import ExtractSystem

        before = ExtractSystem(small_index).query("store texas", size_bound=6)
        save_index(small_index, tmp_path / "idx")
        after = ExtractSystem(load_index(tmp_path / "idx")).query("store texas", size_bound=6)
        assert before.render_text() == after.render_text()

    def test_vocabulary_term_drift_raises(self, small_index, tmp_path):
        # Same term COUNT but different term names must be rejected: a
        # size-only check would silently serve wrong results.
        save_index(small_index, tmp_path / "idx")
        index_file = tmp_path / "idx" / "inverted.idx"
        content = index_file.read_text(encoding="utf-8")
        tampered = content.replace("T texas ", "T ztexas ", 1)
        index_file.write_text(tampered, encoding="utf-8")
        with pytest.raises(StorageError):
            load_index(tmp_path / "idx")

    def test_tampered_structure_labels_raise(self, small_index, tmp_path):
        # Path names intact but posting labels drifted: also rejected.
        save_index(small_index, tmp_path / "idx")
        index_file = tmp_path / "idx" / "inverted.idx"
        lines = index_file.read_text(encoding="utf-8").splitlines()
        for position, line in enumerate(lines):
            if line.startswith("P ") and line.count(" ") >= 2:
                prefix, _, labels = line.rpartition(" ")
                lines[position] = f"{prefix} 99.99.99"
                break
        index_file.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(StorageError):
            load_index(tmp_path / "idx")
