"""Tests for index persistence."""

from __future__ import annotations

import os

import pytest

from repro.errors import StorageError
from repro.index.builder import IndexBuilder
from repro.index.storage import load_index, save_index


class TestSaveLoad:
    def test_round_trip(self, small_index, tmp_path):
        directory = tmp_path / "idx"
        save_index(small_index, directory)
        assert (directory / "document.xml").exists()
        assert (directory / "inverted.idx").exists()

        loaded = load_index(directory)
        assert loaded.tree.size_nodes == small_index.tree.size_nodes
        assert loaded.inverted.vocabulary == small_index.inverted.vocabulary
        assert loaded.keyword_matches("texas").to_strings() == small_index.keyword_matches(
            "texas"
        ).to_strings()

    def test_loaded_index_searchable(self, small_index, tmp_path):
        from repro.search.engine import SearchEngine

        save_index(small_index, tmp_path / "idx")
        loaded = load_index(tmp_path / "idx")
        results = SearchEngine(loaded).search("store texas")
        assert len(results) == 2

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(StorageError):
            load_index(tmp_path / "does-not-exist")

    def test_missing_index_file_raises(self, small_index, tmp_path):
        directory = tmp_path / "idx"
        save_index(small_index, directory)
        os.remove(directory / "inverted.idx")
        with pytest.raises(StorageError):
            load_index(directory)

    def test_bad_header_raises(self, small_index, tmp_path):
        directory = tmp_path / "idx"
        save_index(small_index, directory)
        (directory / "inverted.idx").write_text("garbage\n", encoding="utf-8")
        with pytest.raises(StorageError):
            load_index(directory)

    def test_node_count_mismatch_raises(self, small_index, tmp_path):
        directory = tmp_path / "idx"
        save_index(small_index, directory)
        index_file = directory / "inverted.idx"
        content = index_file.read_text(encoding="utf-8").replace(
            f"#nodes {small_index.tree.size_nodes}", "#nodes 9999"
        )
        index_file.write_text(content, encoding="utf-8")
        with pytest.raises(StorageError):
            load_index(directory)

    def test_save_creates_directory(self, small_index, tmp_path):
        nested = tmp_path / "a" / "b" / "c"
        save_index(small_index, nested)
        assert nested.exists()
