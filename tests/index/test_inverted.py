"""Tests for the keyword inverted index."""

from __future__ import annotations

import pytest

from repro.errors import IndexNotBuiltError
from repro.index.inverted import InvertedIndex
from repro.xmltree.builder import tree_from_dict


@pytest.fixture()
def index(small_retailer_tree):
    return InvertedIndex().build(small_retailer_tree)


class TestBuild:
    def test_indexed_node_count(self, index, small_retailer_tree):
        assert index.indexed_nodes == small_retailer_tree.size_nodes

    def test_unbuilt_index_raises(self):
        with pytest.raises(IndexNotBuiltError):
            InvertedIndex().lookup("x")
        with pytest.raises(IndexNotBuiltError):
            _ = InvertedIndex().vocabulary

    def test_repr(self, index):
        assert "terms=" in repr(index)
        assert "unbuilt" in repr(InvertedIndex())


class TestLookup:
    def test_tag_lookup(self, index, small_retailer_tree):
        postings = index.lookup("store")
        assert len(postings) == 2
        assert all(small_retailer_tree.node(label).tag == "store" for label in postings)

    def test_value_lookup(self, index):
        assert len(index.lookup("houston")) == 1
        assert len(index.lookup("texas")) == 2

    def test_case_insensitive(self, index):
        assert index.lookup("TEXAS") == index.lookup("texas")

    def test_multi_word_value_tokens(self, index, small_retailer_tree):
        brook = index.lookup("brook")
        brothers = index.lookup("brothers")
        assert len(brook) == 1 and brook == brothers

    def test_unknown_keyword_empty(self, index):
        assert index.lookup("zzz").is_empty

    def test_plural_query_matches_singular_tag(self, index):
        assert len(index.lookup("stores")) == 2

    def test_singular_query_matches_plural_tag(self):
        tree = tree_from_dict("db", {"clothes": [{"category": "suit"}], "shirts": "two"})
        index = InvertedIndex().build(tree)
        assert len(index.lookup("shirt")) == 1

    def test_lookup_all(self, index):
        result = index.lookup_all(["store", "texas"])
        assert set(result) == {"store", "texas"}
        assert len(result["store"]) == 2

    def test_document_frequency(self, index):
        assert index.document_frequency("texas") == 2
        assert index.document_frequency("missing") == 0

    def test_contains_term(self, index):
        assert index.contains_term("houston")
        assert index.contains_term("Stores")
        assert not index.contains_term("nothing")


class TestVocabulary:
    def test_vocabulary_sorted(self, index):
        vocabulary = index.vocabulary
        assert vocabulary == sorted(vocabulary)
        assert "texas" in vocabulary

    def test_vocabulary_size(self, index):
        assert index.vocabulary_size == len(index.vocabulary)

    def test_from_postings_round_trip(self, index):
        rebuilt = InvertedIndex.from_postings(index.postings_dict())
        assert rebuilt.vocabulary == index.vocabulary
        assert rebuilt.lookup("texas") == index.lookup("texas")


class TestTokenisationConsistency:
    """Index-side and query-side tokenisation must not drift: a query term
    whose singular form appears only in the index (and vice versa) matches
    identically through both paths."""

    def test_plural_query_matches_singular_index(self):
        from repro.index.builder import IndexBuilder
        from repro.search.engine import SearchEngine
        from repro.search.query import KeywordQuery
        from repro.xmltree.builder import tree_from_dict

        tree = tree_from_dict("shop", {"store": [{"name": "Galleria"}]})
        index = IndexBuilder().build(tree)
        # "stores" is not literally in the document; its singular is.
        parsed = KeywordQuery.parse("stores")
        assert parsed.keywords == ("stores",)
        direct = index.inverted.lookup("stores")
        via_engine = SearchEngine(index).search("stores")
        assert not direct.is_empty
        assert len(via_engine) == len(direct)

    def test_singular_query_matches_plural_text(self):
        from repro.index.builder import IndexBuilder
        from repro.search.engine import SearchEngine
        from repro.xmltree.builder import tree_from_dict

        tree = tree_from_dict("doc", {"item": [{"note": "great stores here"}]})
        index = IndexBuilder().build(tree)
        # The text token "stores" is indexed under both "stores" and "store".
        assert not index.inverted.lookup("store").is_empty
        assert len(SearchEngine(index).search("store")) >= 1

    def test_query_and_index_share_normalisation(self):
        from repro.utils.text import iter_index_terms, tokenize_query

        # Every non-stopword query token must be findable among the index
        # terms generated for the same text — the two paths share
        # utils.text tokenisation, so there is no drift.
        for text in ("The Stores in Texas", "Movie, drama!", "children's CLOTHES"):
            index_terms = set(iter_index_terms(text))
            for keyword in tokenize_query(text):
                assert keyword in index_terms, (text, keyword, index_terms)

    def test_identical_matches_via_both_plural_forms(self, small_index):
        singular = small_index.inverted.lookup("store")
        plural = small_index.inverted.lookup("stores")
        assert singular.to_strings() == plural.to_strings()
