"""Tests for posting lists."""

from __future__ import annotations

from repro.index.postings import PostingList
from repro.xmltree.dewey import Dewey


def labels(*texts: str) -> list[Dewey]:
    return [Dewey.parse(text) for text in texts]


class TestBasics:
    def test_sorted_and_deduplicated(self):
        plist = PostingList(labels("1.2", "0", "1.2", "0.5"))
        assert plist.to_strings() == ["0", "0.5", "1.2"]

    def test_len_iter_getitem_contains(self):
        plist = PostingList(labels("0", "1"))
        assert len(plist) == 2
        assert list(plist) == labels("0", "1")
        assert plist[1] == Dewey((1,))
        assert Dewey((0,)) in plist
        assert Dewey((5,)) not in plist

    def test_is_empty(self):
        assert PostingList().is_empty
        assert not PostingList(labels("0")).is_empty

    def test_equality(self):
        assert PostingList(labels("0", "1")) == PostingList(labels("1", "0"))
        assert PostingList(labels("0")) != PostingList(labels("1"))

    def test_labels_returns_copy(self):
        plist = PostingList(labels("0"))
        copy = plist.labels
        copy.append(Dewey((9,)))
        assert len(plist) == 1

    def test_from_strings_round_trip(self):
        plist = PostingList(labels("0.1", "2"))
        assert PostingList.from_strings(plist.to_strings()) == plist

    def test_repr_preview(self):
        plist = PostingList(labels("0", "1", "2", "3", "4"))
        assert "n=5" in repr(plist) and "..." in repr(plist)


class TestNeighbourQueries:
    def test_left_right_neighbours(self):
        plist = PostingList(labels("0.1", "0.5", "2"))
        assert plist.left_neighbour(Dewey.parse("0.3")) == Dewey.parse("0.1")
        assert plist.right_neighbour(Dewey.parse("0.3")) == Dewey.parse("0.5")

    def test_neighbours_at_extremes(self):
        plist = PostingList(labels("1", "2"))
        assert plist.left_neighbour(Dewey.parse("0")) is None
        assert plist.right_neighbour(Dewey.parse("3")) is None

    def test_neighbours_exact_hit(self):
        plist = PostingList(labels("1", "2"))
        assert plist.left_neighbour(Dewey.parse("2")) == Dewey.parse("2")
        assert plist.right_neighbour(Dewey.parse("2")) == Dewey.parse("2")

    def test_closest_match_prefers_deeper_lca(self):
        plist = PostingList(labels("0.0.5", "1.9"))
        # anchor 0.0.1: left neighbour shares prefix 0.0 (depth 2), right shares nothing
        assert plist.closest_match(Dewey.parse("0.0.7")) == Dewey.parse("0.0.5")

    def test_closest_match_right_when_no_left(self):
        plist = PostingList(labels("5"))
        assert plist.closest_match(Dewey.parse("1")) == Dewey.parse("5")

    def test_closest_match_empty(self):
        assert PostingList().closest_match(Dewey.parse("1")) is None


class TestSubtreeQueries:
    def test_has_descendant_of(self):
        plist = PostingList(labels("0.1.2", "3"))
        assert plist.has_descendant_of(Dewey.parse("0.1"))
        assert plist.has_descendant_of(Dewey.parse("0.1.2"))
        assert not plist.has_descendant_of(Dewey.parse("0.2"))

    def test_descendants_of(self):
        plist = PostingList(labels("0.1", "0.1.2", "0.2", "1"))
        result = plist.descendants_of(Dewey.parse("0.1"))
        assert result == labels("0.1", "0.1.2")

    def test_descendants_of_root(self):
        plist = PostingList(labels("0", "1.5"))
        assert plist.descendants_of(Dewey.root()) == labels("0", "1.5")

    def test_descendants_of_no_match(self):
        plist = PostingList(labels("2"))
        assert plist.descendants_of(Dewey.parse("1")) == []


class TestSetOperations:
    def test_union(self):
        first = PostingList(labels("0", "1"))
        second = PostingList(labels("1", "2"))
        assert first.union(second).to_strings() == ["0", "1", "2"]

    def test_intersection(self):
        first = PostingList(labels("0", "1", "2"))
        second = PostingList(labels("1", "2", "3"))
        assert first.intersection(second).to_strings() == ["1", "2"]

    def test_difference(self):
        first = PostingList(labels("0", "1", "2"))
        second = PostingList(labels("1"))
        assert first.difference(second).to_strings() == ["0", "2"]

    def test_union_all(self):
        lists = [PostingList(labels("0")), PostingList(labels("1")), PostingList(labels("0"))]
        assert PostingList.union_all(lists).to_strings() == ["0", "1"]


class TestClosestMatchTieBreak:
    """Regression tests for the documented lm-first tie-break of
    ``closest_match`` (Indexed Lookup Eager, [7])."""

    def test_symmetric_neighbours_prefer_left(self):
        # Anchor 1.1 sits exactly between matches 1.0.0 and 1.2.0: both
        # neighbours yield the LCA "1" (depth 1).  The tie must break left.
        plist = PostingList(labels("1.0.0", "1.2.0"))
        anchor = Dewey.parse("1.1")
        assert str(plist.closest_match(anchor)) == "1.0.0"

    def test_symmetric_document_slca_unaffected_by_tie(self):
        # In a perfectly symmetric document the SLCA is identical whichever
        # neighbour wins the tie, because equal-depth LCAs with the anchor
        # are the same node (both are prefixes of the anchor).
        from repro.search.lca import brute_force_slca
        from repro.search.slca import compute_slca

        anchors = PostingList(labels("0.1", "1.1"))
        matches = PostingList(labels("0.0.0", "0.2.0", "1.0.0", "1.2.0"))
        assert compute_slca([anchors, matches]) == brute_force_slca([anchors, matches])
        assert [str(label) for label in compute_slca([anchors, matches])] == ["0", "1"]

    def test_deeper_left_lca_wins(self):
        plist = PostingList(labels("1.0.0", "2"))
        assert str(plist.closest_match(Dewey.parse("1.0.5"))) == "1.0.0"

    def test_deeper_right_lca_wins(self):
        plist = PostingList(labels("0", "1.0.5"))
        assert str(plist.closest_match(Dewey.parse("1.0.7"))) == "1.0.5"

    def test_only_left_neighbour(self):
        plist = PostingList(labels("0.0"))
        assert str(plist.closest_match(Dewey.parse("5"))) == "0.0"

    def test_only_right_neighbour(self):
        plist = PostingList(labels("5.0"))
        assert str(plist.closest_match(Dewey.parse("0"))) == "5.0"

    def test_empty_list_returns_none(self):
        assert PostingList().closest_match(Dewey.parse("1")) is None
