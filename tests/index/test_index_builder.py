"""Tests for the IndexBuilder façade."""

from __future__ import annotations

from repro.index.builder import DocumentIndex, IndexBuilder
from repro.xmltree.dtd import parse_dtd
from repro.xmltree.builder import tree_from_dict


class TestIndexBuilder:
    def test_build_produces_document_index(self, small_retailer_tree):
        index = IndexBuilder().build(small_retailer_tree)
        assert isinstance(index, DocumentIndex)
        assert index.tree is small_retailer_tree
        assert index.name == small_retailer_tree.name

    def test_keyword_matches_delegates_to_inverted(self, small_index):
        assert len(small_index.keyword_matches("texas")) == 2
        assert small_index.keyword_matches("zzz").is_empty

    def test_analyzer_and_structure_consistent(self, small_index):
        for path, category in small_index.analyzer.categories.items():
            assert small_index.structure.category_of_path(path) == category

    def test_timings_recorded(self, small_retailer_tree):
        builder = IndexBuilder()
        builder.build(small_retailer_tree)
        assert {"analyze", "inverted_index", "structure_index"} <= set(builder.timings.phases)

    def test_dtd_is_used_for_classification(self):
        # one store only; without DTD it would not be an entity
        tree = tree_from_dict("retailer", {"store": [{"name": "Galleria"}]})
        dtd = parse_dtd("<!ELEMENT retailer (store*)>")
        index = IndexBuilder(dtd=dtd).build(tree)
        assert "store" in index.analyzer.entity_tags()

    def test_repr(self, small_index):
        assert "nodes=" in repr(small_index)
