"""Tests for posting-level deltas and incremental DocumentIndex updates.

The invariant throughout: the incrementally updated index must be
*observably identical* to a from-scratch build of the edited document —
same vocabulary, same posting lists, same analyzer summary and keys.
"""

from __future__ import annotations

import pytest

from repro.errors import IndexError_
from repro.index.builder import IndexBuilder
from repro.index.incremental import apply_text_update
from repro.index.postings import PostingList
from repro.xmltree.builder import tree_from_dict
from repro.xmltree.dewey import Dewey
from repro.xmltree.diff import diff_trees


def D(text: str) -> Dewey:
    return Dewey.parse(text)


class TestPostingListWithChanges:
    def test_add_and_remove(self):
        plist = PostingList([D("0"), D("1"), D("2")])
        changed = plist.with_changes(added=[D("0.1"), D("3")], removed=[D("1")])
        assert changed.to_strings() == ["0", "0.1", "2", "3"]

    def test_original_untouched(self):
        plist = PostingList([D("0"), D("1")])
        plist.with_changes(removed=[D("0")])
        assert plist.to_strings() == ["0", "1"]

    def test_add_existing_label_is_idempotent(self):
        plist = PostingList([D("0")])
        assert plist.with_changes(added=[D("0")]).to_strings() == ["0"]

    def test_remove_then_add_same_label_keeps_it(self):
        plist = PostingList([D("0"), D("1")])
        changed = plist.with_changes(added=[D("1")], removed=[D("1")])
        assert changed.to_strings() == ["0", "1"]

    def test_empty_base(self):
        changed = PostingList().with_changes(added=[D("2"), D("1")])
        assert changed.to_strings() == ["1", "2"]

    def test_matches_constructor_semantics(self):
        base = [D("0"), D("2"), D("4.1"), D("7")]
        added = [D("1"), D("4"), D("2")]
        removed = [D("7"), D("0.0")]
        merged = PostingList(base).with_changes(added=added, removed=removed)
        expected = PostingList((set(base) - set(removed)) | set(added))
        assert merged == expected


class TestInvertedApplyDelta:
    def build(self, city):
        tree = tree_from_dict(
            "shop",
            {"store": [{"city": city}, {"city": "Austin"}]},
            name="shop",
        )
        return tree, IndexBuilder().build(tree)

    def test_delta_matches_rebuild(self):
        _, old = self.build("Houston")
        new_tree, fresh = self.build("Dallas")
        diff = diff_trees(old.tree, new_tree)
        update = apply_text_update(old, new_tree, diff)
        assert update.index.inverted.vocabulary == fresh.inverted.vocabulary
        for term, postings in fresh.inverted.postings_dict().items():
            assert update.index.inverted.postings_dict()[term] == postings, term

    def test_untouched_posting_lists_are_shared(self):
        _, old = self.build("Houston")
        new_tree, _ = self.build("Dallas")
        update = apply_text_update(old, new_tree, diff_trees(old.tree, new_tree))
        old_postings = old.inverted.postings_dict()
        new_postings = update.index.inverted.postings_dict()
        assert new_postings["austin"] is old_postings["austin"]
        assert new_postings["store"] is old_postings["store"]

    def test_term_leaving_vocabulary(self):
        _, old = self.build("Houston")
        new_tree, _ = self.build("Dallas")
        update = apply_text_update(old, new_tree, diff_trees(old.tree, new_tree))
        assert "houston" not in update.index.inverted.postings_dict()
        assert update.index.inverted.lookup("houston").is_empty
        assert not update.index.inverted.lookup("dallas").is_empty

    def test_text_sharing_tag_token_keeps_tag_posting(self):
        # The node <store>store</store> is indexed under "store" via BOTH its
        # tag and its text; removing the text must not remove the label.
        tree = tree_from_dict("shop", {"store": [{"name": "store"}, {"name": "other"}]})
        old = IndexBuilder().build(tree)
        new_tree = tree_from_dict("shop", {"store": [{"name": "changed"}, {"name": "other"}]})
        update = apply_text_update(old, new_tree, diff_trees(tree, new_tree))
        fresh = IndexBuilder().build(new_tree)
        assert update.index.inverted.postings_dict() == fresh.inverted.postings_dict()
        assert not update.index.inverted.lookup("name").is_empty

    def test_structural_diff_rejected(self):
        tree = tree_from_dict("shop", {"store": [{"city": "Houston"}]})
        old = IndexBuilder().build(tree)
        bigger = tree_from_dict("shop", {"store": [{"city": "Houston"}, {"city": "Austin"}]})
        with pytest.raises(IndexError_):
            apply_text_update(old, bigger, diff_trees(tree, bigger))


class TestAnalyzerRebind:
    def trees(self, galleria_city, downtown_name="Downtown"):
        return tree_from_dict(
            "retailer",
            {
                "name": "Brook Brothers",
                "store": [
                    {"name": "Galleria", "city": galleria_city},
                    {"name": downtown_name, "city": "Austin"},
                ],
            },
            name="retailer",
        )

    def apply(self, old_tree, new_tree):
        old = IndexBuilder().build(old_tree)
        return apply_text_update(old, new_tree, diff_trees(old_tree, new_tree)), old

    def test_summary_and_categories_preserved(self):
        update, old = self.apply(self.trees("Houston"), self.trees("Dallas"))
        fresh = IndexBuilder().build(self.trees("Dallas"))
        analyzer = update.index.analyzer
        assert analyzer.summary() == fresh.analyzer.summary()
        assert analyzer.categories == fresh.analyzer.categories
        assert analyzer.tree is update.index.tree

    def test_schema_value_counts_follow_edit(self):
        update, _ = self.apply(self.trees("Houston"), self.trees("Dallas"))
        fresh = IndexBuilder().build(self.trees("Dallas"))
        for path, node in fresh.analyzer.schema.nodes.items():
            assert update.index.analyzer.schema.nodes[path].value_counts == node.value_counts, path

    def test_non_key_edit_does_not_remine(self):
        update, _ = self.apply(self.trees("Houston"), self.trees("Dallas"))
        # "city" is not the mined key ("name" is); the edit touches a
        # non-key attribute of store, so store's key IS re-mined (city is a
        # candidate) but keeps the same attribute.
        assert not update.key_attributes_changed
        key = update.index.analyzer.entity_types[("retailer", "store")].key
        assert key is not None and key.attribute_tag == "name"

    def test_key_uniqueness_break_flips_key(self):
        # Make the two store names collide: "name" loses uniqueness and the
        # mined key must move (to "city"), exactly as a fresh build decides.
        old_tree = self.trees("Houston")
        new_tree = self.trees("Houston", downtown_name="Galleria")
        update, _ = self.apply(old_tree, new_tree)
        fresh = IndexBuilder().build(self.trees("Houston", downtown_name="Galleria"))
        incr_key = update.index.analyzer.entity_types[("retailer", "store")].key
        fresh_key = fresh.analyzer.entity_types[("retailer", "store")].key
        assert (incr_key and incr_key.attribute_path) == (
            fresh_key and fresh_key.attribute_path
        )
        assert update.key_attributes_changed

    def test_structure_index_shared(self):
        update, old = self.apply(self.trees("Houston"), self.trees("Dallas"))
        assert update.index.structure is old.structure


class TestChangedTermBookkeeping:
    def test_changed_terms_include_both_forms(self):
        old_tree = tree_from_dict("shop", {"store": [{"note": "stores"}, {"x": "y"}]})
        new_tree = tree_from_dict("shop", {"store": [{"note": "boxes"}, {"x": "y"}]})
        old = IndexBuilder().build(old_tree)
        update = apply_text_update(old, new_tree, diff_trees(old_tree, new_tree))
        # plural and singular forms of both old and new tokens are changed
        assert {"stores", "store", "boxes", "box"} <= set(update.changed_terms)
        assert update.touches_keyword("store")
        assert update.touches_keyword("boxes")
        assert not update.touches_keyword("y")

    def test_changed_labels_are_the_edited_nodes(self):
        old_tree = tree_from_dict("shop", {"a": "one", "b": "two"})
        new_tree = tree_from_dict("shop", {"a": "one", "b": "three"})
        old = IndexBuilder().build(old_tree)
        update = apply_text_update(old, new_tree, diff_trees(old_tree, new_tree))
        assert len(update.changed_labels) == 1
        assert update.index.tree.node(update.changed_labels[0]).text == "three"
