"""Wire byte-identity across snapshot formats.

The acceptance property of the v4 format: the default (meta-free) wire
responses of a corpus are byte-identical whether the documents were
loaded from v3 text snapshots, eagerly from v4 binary snapshots, or
lazily through the v4 mmap loader.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.api.protocol import BatchRequest, SearchRequest
from repro.api.service import SnippetService
from repro.corpus import Corpus
from repro.index.binfmt import BINARY_FILE, LazyInvertedIndex
from repro.index.storage import (
    BINARY_FORMAT_VERSION,
    load_index,
    read_corpus_manifest,
)
from repro.system import ExtractSystem

DATASETS = (("figure5-stores", "stores"), ("retail", "retail"))
QUERIES = ("store texas", "retailer apparel", "clothes casual", "nothing-matches")


def build_corpus() -> Corpus:
    corpus = Corpus()
    for dataset, name in DATASETS:
        corpus.add_builtin(dataset, name=name)
    return corpus


def wire(service, payload) -> str:
    if hasattr(payload, "to_dict"):
        payload = payload.to_dict()
    return service.handle_json(json.dumps(payload, sort_keys=True))


@pytest.fixture(scope="module")
def format_dirs(tmp_path_factory):
    base = tmp_path_factory.mktemp("format-identity")
    build_corpus().save_dir(base / "v3")
    build_corpus().save_dir(base / "v4", format_version=BINARY_FORMAT_VERSION)
    return base


@pytest.fixture(scope="module")
def services(format_dirs):
    """(v3-text, v4-lazy, v4-eager) services over the same documents."""
    from_text = SnippetService(Corpus.load_dir(format_dirs / "v3"))
    lazy = SnippetService(Corpus.load_dir(format_dirs / "v4"))

    manifest = read_corpus_manifest(os.fspath(format_dirs / "v4"))
    eager_corpus = Corpus(algorithm=manifest.algorithm)
    for subdir, name in manifest.entries:
        index = load_index(format_dirs / "v4" / subdir, lazy=False)
        eager_corpus.add_system(name, ExtractSystem(index, algorithm=manifest.algorithm))
    eager = SnippetService(eager_corpus)

    yield {"v3": from_text, "v4-lazy": lazy, "v4-eager": eager}
    for service in (from_text, lazy, eager):
        service.close()


class TestFormatByteIdentity:
    def test_v4_corpus_is_binary_and_lazy(self, format_dirs, services):
        manifest = read_corpus_manifest(os.fspath(format_dirs / "v4"))
        for subdir, name in manifest.entries:
            assert (format_dirs / "v4" / subdir / BINARY_FILE).exists()
            lazy_corpus = services["v4-lazy"].corpus
            assert isinstance(lazy_corpus.system(name).index.inverted, LazyInvertedIndex)

    def test_search_bytes_identical(self, services):
        for _dataset, name in DATASETS:
            for query in QUERIES:
                request = SearchRequest(query=query, document=name, size_bound=6)
                reference = wire(services["v3"], request)
                assert wire(services["v4-lazy"], request) == reference
                assert wire(services["v4-eager"], request) == reference

    def test_batch_bytes_identical(self, services):
        batch = BatchRequest(queries=QUERIES[:3], documents=None)
        reference = wire(services["v3"], batch)
        assert wire(services["v4-lazy"], batch) == reference
        assert wire(services["v4-eager"], batch) == reference

    def test_error_bytes_identical(self, services):
        request = SearchRequest(query="anything", document="missing-doc")
        reference = wire(services["v3"], request)
        assert wire(services["v4-lazy"], request) == reference
        assert wire(services["v4-eager"], request) == reference
