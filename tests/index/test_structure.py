"""Tests for the structure index."""

from __future__ import annotations

import pytest

from repro.classify.analyzer import DataAnalyzer
from repro.classify.categories import NodeCategory
from repro.errors import IndexNotBuiltError
from repro.index.structure import StructureIndex
from repro.xmltree.dewey import Dewey


@pytest.fixture()
def structure(small_retailer_tree):
    analyzer = DataAnalyzer(small_retailer_tree)
    return StructureIndex().build(small_retailer_tree, analyzer)


class TestLookups:
    def test_instances_of_tag(self, structure):
        assert len(structure.instances_of_tag("store")) == 2
        assert len(structure.instances_of_tag("clothes")) == 3
        assert structure.instances_of_tag("missing").is_empty

    def test_instances_of_path(self, structure):
        path = ("retailer", "store", "city")
        assert len(structure.instances_of_path(path)) == 2
        assert structure.instances_of_path(("nope",)).is_empty

    def test_tag_path_of_label(self, structure, small_retailer_tree):
        store = small_retailer_tree.find_by_tag("store")[0]
        assert structure.tag_path_of(store.dewey) == ("retailer", "store")
        assert structure.tag_of(store.dewey) == "store"
        assert structure.tag_path_of(Dewey((9, 9))) is None
        assert structure.tag_of(Dewey((9, 9))) is None

    def test_category_of_label(self, structure, small_retailer_tree):
        store = small_retailer_tree.find_by_tag("store")[0]
        city = small_retailer_tree.find_by_tag("city")[0]
        assert structure.category_of(store.dewey) == NodeCategory.ENTITY
        assert structure.category_of(city.dewey) == NodeCategory.ATTRIBUTE
        assert structure.category_of(Dewey((9, 9))) == NodeCategory.CONNECTION

    def test_category_of_path(self, structure):
        assert structure.category_of_path(("retailer", "store")) == NodeCategory.ENTITY
        assert structure.category_of_path(("other",)) == NodeCategory.CONNECTION

    def test_parent_of(self, structure, small_retailer_tree):
        city = small_retailer_tree.find_by_tag("city")[0]
        assert structure.parent_of(city.dewey) == city.dewey.parent()
        assert structure.parent_of(Dewey.root()) is None

    def test_children_of(self, structure, small_retailer_tree):
        store = small_retailer_tree.find_by_tag("store")[0]
        children = structure.children_of(store.dewey)
        assert children == [child.dewey for child in store.children]

    def test_known_tags_and_paths(self, structure):
        assert "store" in structure.known_tags
        assert ("retailer", "store") in structure.known_paths

    def test_entity_paths(self, structure):
        paths = structure.entity_paths()
        assert paths[0] == ("retailer", "store")

    def test_unbuilt_raises(self):
        with pytest.raises(IndexNotBuiltError):
            StructureIndex().instances_of_tag("x")

    def test_repr(self, structure):
        assert "tags=" in repr(structure)
        assert "unbuilt" in repr(StructureIndex())
