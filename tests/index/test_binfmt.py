"""Tests for the v4 mmap-able binary snapshot format (repro.index.binfmt).

The contract under test: a v4 snapshot round-trips a built index
bit-for-bit (same postings, same structure, same analyzer), the bytes are
deterministic, corruption anywhere in the file is rejected with
:class:`~repro.errors.StorageError` before any posting is trusted, and
the lazy mmap loader materialises posting lists only on first touch.
"""

from __future__ import annotations

import os
import struct

import pytest

from repro.corpus import Corpus
from repro.errors import StorageError
from repro.index.binfmt import (
    BINARY_FILE,
    BINARY_FORMAT_VERSION,
    LazyInvertedIndex,
    build_binary_snapshot,
    load_binary_index,
    write_binary_index,
)
from repro.index.inverted import InvertedIndex
from repro.index.storage import TEXT_FORMAT_VERSION, load_index, save_index


def snapshot_path(directory):
    return os.path.join(os.fspath(directory), BINARY_FILE)


def assert_equivalent(loaded, original):
    """The loaded index serves exactly what the original serves."""
    assert loaded.tree.name == original.tree.name
    assert loaded.tree.size_nodes == original.tree.size_nodes
    assert loaded.inverted.vocabulary == original.inverted.vocabulary
    assert loaded.inverted.postings_dict() == original.inverted.postings_dict()
    assert loaded.structure.known_tags == original.structure.known_tags
    assert loaded.structure.known_paths == original.structure.known_paths
    for path in original.structure.known_paths:
        assert (
            loaded.structure.instances_of_path(path).labels
            == original.structure.instances_of_path(path).labels
        )
        assert loaded.structure.category_of_path(path) == original.structure.category_of_path(path)


class TestRoundTrip:
    def test_single_file_layout(self, small_index, tmp_path):
        write_binary_index(small_index, tmp_path / "idx")
        assert os.listdir(tmp_path / "idx") == [BINARY_FILE]

    def test_eager_round_trip(self, small_index, tmp_path):
        write_binary_index(small_index, tmp_path / "idx")
        loaded = load_binary_index(tmp_path / "idx", lazy=False)
        assert isinstance(loaded.inverted, InvertedIndex)
        assert not isinstance(loaded.inverted, LazyInvertedIndex)
        assert_equivalent(loaded, small_index)

    def test_lazy_round_trip(self, small_index, tmp_path):
        write_binary_index(small_index, tmp_path / "idx")
        loaded = load_binary_index(tmp_path / "idx")
        assert isinstance(loaded.inverted, LazyInvertedIndex)
        assert_equivalent(loaded, small_index)

    def test_loaded_index_searchable(self, small_index, tmp_path):
        from repro.search.engine import SearchEngine

        write_binary_index(small_index, tmp_path / "idx")
        loaded = load_binary_index(tmp_path / "idx")
        results = SearchEngine(loaded).search("store texas")
        assert len(results) == 2

    def test_indexed_nodes_matches_text_load(self, small_index, tmp_path):
        # Both loaders derive indexed_nodes the same way (sum of posting
        # lengths), so stats stay identical whichever format served them.
        save_index(small_index, tmp_path / "v3", format_version=TEXT_FORMAT_VERSION)
        write_binary_index(small_index, tmp_path / "v4")
        from_text = load_index(tmp_path / "v3")
        for lazy in (False, True):
            from_binary = load_binary_index(tmp_path / "v4", lazy=lazy)
            assert from_binary.inverted.indexed_nodes == from_text.inverted.indexed_nodes

    def test_deterministic_bytes(self, small_index):
        assert build_binary_snapshot(small_index) == build_binary_snapshot(small_index)

    def test_resave_is_byte_stable(self, small_index, tmp_path):
        write_binary_index(small_index, tmp_path / "a")
        loaded = load_binary_index(tmp_path / "a")
        write_binary_index(loaded, tmp_path / "b")
        with open(snapshot_path(tmp_path / "a"), "rb") as first:
            with open(snapshot_path(tmp_path / "b"), "rb") as second:
                assert first.read() == second.read()

    def test_save_index_dispatches_on_format_version(self, small_index, tmp_path):
        save_index(small_index, tmp_path / "idx", format_version=BINARY_FORMAT_VERSION)
        assert os.path.exists(snapshot_path(tmp_path / "idx"))
        assert_equivalent(load_index(tmp_path / "idx"), small_index)

    def test_save_index_rejects_unknown_version(self, small_index, tmp_path):
        with pytest.raises(StorageError):
            save_index(small_index, tmp_path / "idx", format_version=99)

    def test_pre_post_level_survive_round_trip(self, small_index, tmp_path):
        write_binary_index(small_index, tmp_path / "idx")
        loaded = load_binary_index(tmp_path / "idx")
        original_ids = {
            node.dewey: (node.pre, node.post, node.level)
            for node in small_index.tree.iter_nodes()
        }
        for node in loaded.tree.iter_nodes():
            assert original_ids[node.dewey] == (node.pre, node.post, node.level)

    def test_analyzer_survives_round_trip(self, small_index, tmp_path):
        write_binary_index(small_index, tmp_path / "idx")
        loaded = load_binary_index(tmp_path / "idx")
        original = small_index.analyzer
        assert loaded.analyzer.categories == original.categories
        assert loaded.analyzer.entity_types == original.entity_types
        assert (loaded.analyzer.dtd is None) == (original.dtd is None)
        if original.dtd is not None:
            assert set(loaded.analyzer.dtd.elements) == set(original.dtd.elements)


class TestFormatMatrix:
    """v3 ↔ v4 conversions preserve the index in both directions."""

    def test_v3_to_v4(self, small_index, tmp_path):
        save_index(small_index, tmp_path / "v3", format_version=TEXT_FORMAT_VERSION)
        from_text = load_index(tmp_path / "v3")
        save_index(from_text, tmp_path / "v4", format_version=BINARY_FORMAT_VERSION)
        for lazy in (False, True):
            assert_equivalent(load_binary_index(tmp_path / "v4", lazy=lazy), from_text)

    def test_v4_to_v3(self, small_index, tmp_path):
        save_index(small_index, tmp_path / "v4", format_version=BINARY_FORMAT_VERSION)
        from_binary = load_index(tmp_path / "v4", lazy=False)
        save_index(from_binary, tmp_path / "v3", format_version=TEXT_FORMAT_VERSION)
        assert_equivalent(load_index(tmp_path / "v3"), from_binary)

    def test_lazy_loaded_index_resaves_as_v3(self, small_index, tmp_path):
        save_index(small_index, tmp_path / "v4", format_version=BINARY_FORMAT_VERSION)
        lazy = load_index(tmp_path / "v4")
        save_index(lazy, tmp_path / "v3", format_version=TEXT_FORMAT_VERSION)
        assert_equivalent(load_index(tmp_path / "v3"), small_index)


class TestCorruption:
    """Every corruption is rejected before any posting is trusted."""

    @pytest.fixture()
    def binary_dir(self, small_index, tmp_path):
        write_binary_index(small_index, tmp_path / "idx")
        return tmp_path / "idx"

    def corrupt(self, directory, mutate):
        path = snapshot_path(directory)
        with open(path, "rb") as handle:
            data = bytearray(handle.read())
        data = mutate(data)
        with open(path, "wb") as handle:
            handle.write(bytes(data))

    def test_bad_magic(self, binary_dir):
        self.corrupt(binary_dir, lambda d: b"NOTMAGIC" + bytes(d[8:]))
        with pytest.raises(StorageError):
            load_binary_index(binary_dir)

    def test_wrong_format_version(self, binary_dir):
        def bump_version(data):
            struct.pack_into("<I", data, 8, BINARY_FORMAT_VERSION + 1)
            return data

        self.corrupt(binary_dir, bump_version)
        with pytest.raises(StorageError):
            load_binary_index(binary_dir)

    def test_truncated_offset_table(self, binary_dir):
        # Header survives, the section table does not.
        self.corrupt(binary_dir, lambda d: d[:20])
        with pytest.raises(StorageError):
            load_binary_index(binary_dir)

    def test_truncated_tail(self, binary_dir):
        self.corrupt(binary_dir, lambda d: d[:-5])
        with pytest.raises(StorageError):
            load_binary_index(binary_dir)

    def test_flipped_payload_byte_fails_checksum(self, binary_dir):
        def flip(data):
            data[len(data) // 2] ^= 0xFF
            return data

        self.corrupt(binary_dir, flip)
        with pytest.raises(StorageError):
            load_binary_index(binary_dir)

    def test_flipped_checksum_byte(self, binary_dir):
        def flip(data):
            data[-12] ^= 0xFF  # first byte of the crc32 trailer
            return data

        self.corrupt(binary_dir, flip)
        with pytest.raises(StorageError):
            load_binary_index(binary_dir)

    def test_empty_file(self, binary_dir):
        self.corrupt(binary_dir, lambda d: bytearray())
        with pytest.raises(StorageError):
            load_binary_index(binary_dir)

    def test_load_index_dispatch_propagates_corruption(self, binary_dir):
        self.corrupt(binary_dir, lambda d: d[:-5])
        with pytest.raises(StorageError):
            load_index(binary_dir)

    def test_corrupt_snapshot_leaves_no_partial_corpus(self, small_retailer_tree, tmp_path):
        corpus = Corpus()
        corpus.add_tree("alpha", small_retailer_tree)
        corpus.add_builtin("figure5-stores", name="beta")
        corpus.save_dir(tmp_path / "corpus", format_version=BINARY_FORMAT_VERSION)
        victim = None
        for entry in sorted(os.listdir(tmp_path / "corpus")):
            candidate = tmp_path / "corpus" / entry / BINARY_FILE
            if candidate.exists():
                victim = candidate
                break
        assert victim is not None
        victim.write_bytes(victim.read_bytes()[:-5])
        with pytest.raises(StorageError):
            Corpus.load_dir(tmp_path / "corpus")


class TestLazyMaterialisation:
    def test_postings_stay_pending_until_looked_up(self, small_index, tmp_path):
        write_binary_index(small_index, tmp_path / "idx")
        inverted = load_binary_index(tmp_path / "idx").inverted
        before = inverted.pending_terms
        assert before == small_index.inverted.vocabulary_size
        inverted.lookup("texas")
        assert inverted.pending_terms < before

    def test_lookup_matches_eager(self, small_index, tmp_path):
        write_binary_index(small_index, tmp_path / "idx")
        lazy = load_binary_index(tmp_path / "idx").inverted
        eager = load_binary_index(tmp_path / "idx", lazy=False).inverted
        for term in sorted(small_index.inverted.vocabulary):
            assert lazy.lookup(term).labels == eager.lookup(term).labels

    def test_contains_term_does_not_materialise_blob(self, small_index, tmp_path):
        write_binary_index(small_index, tmp_path / "idx")
        inverted = load_binary_index(tmp_path / "idx").inverted
        assert inverted.contains_term("texas")
        assert not inverted.contains_term("zzz-absent")

    def test_vocabulary_size_without_materialisation(self, small_index, tmp_path):
        write_binary_index(small_index, tmp_path / "idx")
        inverted = load_binary_index(tmp_path / "idx").inverted
        assert inverted.vocabulary_size == small_index.inverted.vocabulary_size
        assert inverted.pending_terms == small_index.inverted.vocabulary_size

    def test_apply_delta_on_lazy_index(self, small_index, tmp_path):
        write_binary_index(small_index, tmp_path / "idx")
        lazy = load_binary_index(tmp_path / "idx").inverted
        eager = load_binary_index(tmp_path / "idx", lazy=False).inverted
        label = small_index.inverted.lookup("texas").labels[0]
        added = {"fresh-term": {label}}
        removed = {"texas": {label}}
        lazy_after = lazy.apply_delta(added, removed)
        eager_after = eager.apply_delta(added, removed)
        assert lazy_after.postings_dict() == eager_after.postings_dict()
