"""Setup shim for environments without the ``wheel`` package.

The project is fully described by ``pyproject.toml``; this file only exists
so that ``pip install -e . --no-use-pep517`` (legacy editable install)
works on offline machines where building a wheel is not possible.
"""

from setuptools import setup

setup()
