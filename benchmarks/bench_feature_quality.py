"""E5 — feature identification quality: dominance score vs. raw frequency.

The benchmark measures the Dominant Feature Identifier on the running
example; the shape assertion plants §2.3-style results (a value dominant by
normalised frequency but rare in absolute count) and checks that the
dominance ranking finds it while the raw-frequency ranking does not.
"""

from __future__ import annotations

from repro.eval.quality import run_feature_quality
from repro.snippet.dominant import DominantFeatureIdentifier


def test_e5_dominant_feature_identification_speed(benchmark, figure1_index, figure1_result):
    identifier = DominantFeatureIdentifier(figure1_index.analyzer)
    dominant = benchmark(identifier.identify, figure1_result)
    contested = [item for item in dominant if item.domain_size > 1]
    assert [item.feature.value for item in contested][:2] == ["houston", "outwear"]


def test_e5_dominance_ranking_beats_raw_frequency():
    table = run_feature_quality(seeds=(0, 1, 2, 3, 4), top_k=3)
    dominance_hits = sum(row["dominance_hit"] for row in table.rows)
    raw_hits = sum(row["raw_frequency_hit"] for row in table.rows)
    assert dominance_hits == len(table.rows)
    assert dominance_hits > raw_hits
    # the planted value is always ranked first by dominance score
    assert all(row["planted_city_ds_rank"] == 1 for row in table.rows)
