"""A1 — ablation: dominance-score vs. raw-frequency feature ranking.

Quantifies the §2.3 design choice: how much of the dominant-feature mass do
snippets capture when features enter the IList by dominance score versus by
raw occurrence count, at the same size bound.
"""

from __future__ import annotations

from repro.eval.ablation import run_ablation_dominance
from repro.snippet.baselines import RawFrequencySnippetGenerator


def test_a1_raw_frequency_pipeline_speed(benchmark, figure1_index, figure1_result):
    generator = RawFrequencySnippetGenerator(figure1_index.analyzer)
    generated = benchmark(generator.generate, figure1_result, 14)
    assert generated.snippet.size_edges <= 14


def test_a1_dominance_ranking_captures_more_mass():
    table = run_ablation_dominance(size_bound=10, queries_per_dataset=5, seed=61)
    by_key = {(row["dataset"], row["ranking"]): row for row in table.rows}
    for dataset in ("retail", "movies"):
        dominance = by_key[(dataset, "dominance_score")]
        raw = by_key[(dataset, "raw_frequency")]
        assert dominance["mean_dominance_mass_coverage"] >= raw["mean_dominance_mass_coverage"]
        assert dominance["mean_ilist_coverage"] >= raw["mean_ilist_coverage"] - 0.05
