"""F3 — Figure 3: the IList of the running example and its dominance scores.

Measures IList construction (return entity + key + dominant features) and
asserts the produced list equals Figure 3 item for item, with dominance
scores within rounding distance of §2.3.
"""

from __future__ import annotations

from repro.datasets.paper_example import FIGURE1_EXPECTED_ILIST
from repro.eval.figures import run_figure3
from repro.search.query import KeywordQuery
from repro.snippet.ilist import IListBuilder


def test_f3_ilist_construction_speed(benchmark, figure1_index, figure1_result):
    builder = IListBuilder(figure1_index.analyzer)
    query = KeywordQuery.parse("Texas, apparel, retailer")
    ilist = benchmark(builder.build, query, figure1_result)
    assert tuple(text.lower() for text in ilist.texts()) == FIGURE1_EXPECTED_ILIST


def test_f3_scores_match_paper(figure1_index):
    table = run_figure3(figure1_index)
    for row in table.rows:
        assert row["paper_item"] == row["measured_item"]
        if row["paper_score"] != "":
            assert abs(float(row["measured_score"]) - float(row["paper_score"])) <= 0.08
