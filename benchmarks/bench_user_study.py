"""E6 — simulated user study: identification accuracy and inspection effort.

The benchmark measures one full study trial pipeline (snippets for every
result of a query, all methods); the shape assertion runs the study and
checks the paper's qualitative claim: structure-aware eXtract snippets let
the (simulated) user identify the intended result at least as accurately,
and with no more effort, than structure-blind text snippets or random
subtrees.
"""

from __future__ import annotations

from repro.eval.userstudy import run_distinguishability_study, run_user_study
from repro.snippet.generator import SnippetGenerator


def test_e6_snippet_batch_speed(benchmark, retail_index, retail_result_set):
    generator = SnippetGenerator(retail_index.analyzer)
    batch = benchmark(generator.generate_all, retail_result_set, 8)
    assert len(batch) == len(retail_result_set)


def test_e6_extract_beats_structure_blind_baselines():
    table = run_user_study(size_bound=8, queries_per_dataset=6, seed=53)
    rows = {row["method"]: row for row in table.rows}
    assert rows["extract"]["accuracy"] >= rows["text_window"]["accuracy"]
    assert rows["extract"]["accuracy"] >= rows["random"]["accuracy"]
    assert rows["extract"]["mean_results_inspected"] <= rows["random"]["mean_results_inspected"]


def test_e6_snippets_are_distinguishable():
    table = run_distinguishability_study(size_bound=8, seed=59, queries=4)
    values = {row["method"]: row["mean_distinguishability"] for row in table.rows}
    assert values["extract"] >= 0.8
    assert values["extract"] >= values["random"] - 0.05
