"""F1 — Figure 1: value-occurrence statistics of the running example.

Measures the cost of extracting the feature statistics of the Brook
Brothers query result (the §2.3 machinery) and asserts the measured counts
equal the counts printed in Figure 1.
"""

from __future__ import annotations

from repro.eval.figures import run_figure1
from repro.snippet.features import extract_features


def test_f1_feature_extraction_speed(benchmark, figure1_index, figure1_result):
    statistics = benchmark(extract_features, figure1_index.analyzer, figure1_result)
    # the result has 10 city + 1000 fitting + 1000 situation + 1070 category
    # occurrences plus names/states/products
    assert len(statistics) >= 20


def test_f1_counts_match_paper(figure1_index):
    table = run_figure1(figure1_index)
    assert len(table) == 21
    for row in table.rows:
        assert row["measured_count"] == row["paper_count"], row
