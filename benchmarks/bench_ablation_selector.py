"""A2 — ablation: instance-selection strategy (§2.4 design choice).

Compares the paper's greedy-closest instance choice against first-instance
and random-instance selection at a fixed bound: the greedy choice should
pack at least as many IList items into the same budget.
"""

from __future__ import annotations

from repro.eval.ablation import run_ablation_selector
from repro.search.query import KeywordQuery
from repro.snippet.ilist import IListBuilder
from repro.snippet.instance_selector import GreedyInstanceSelector, SelectionStrategy


def test_a2_first_instance_selector_speed(benchmark, figure1_index, figure1_result):
    query = KeywordQuery.parse("Texas, apparel, retailer")
    ilist = IListBuilder(figure1_index.analyzer).build(query, figure1_result)
    selector = GreedyInstanceSelector(strategy=SelectionStrategy.FIRST_INSTANCE)
    snippet = benchmark(selector.select, figure1_result, ilist, 14)
    assert snippet.size_edges <= 14


def test_a2_greedy_closest_covers_most_items():
    table = run_ablation_selector(size_bound=10, queries_per_dataset=5, seed=67)
    by_key = {(row["dataset"], row["strategy"]): row for row in table.rows}
    for dataset in ("retail", "movies"):
        greedy = by_key[(dataset, "greedy_closest")]["mean_items_covered"]
        first = by_key[(dataset, "first_instance")]["mean_items_covered"]
        random_choice = by_key[(dataset, "random_instance")]["mean_items_covered"]
        assert greedy >= first - 1e-9
        assert greedy >= random_choice - 1e-9
