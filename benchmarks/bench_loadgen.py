"""Serving benchmark — the closed-loop load harness smoke profile.

Two runs every push gets (ISSUE 10 acceptance):

* the **smoke load profile** (seed 7, mixed search/batch/update traffic)
  against a real HTTP server, recording p50/p95/p99 latency, achieved
  throughput, error/shed rates and the serving-cache hit rate to
  ``BENCH_loadgen.json``;
* the **smoke ablation matrix** (baseline + caches-off + two admission
  limits — 4 configurations) against freshly spawned ``serve`` processes,
  each replaying the identical seeded plan, recording one row per
  configuration.

The assertions are correctness floors, not perf walls: the harness must
deliver every planned request without errors, and the matrix must produce
a measurement for every configuration.
"""

from __future__ import annotations

from repro.api import SnippetService
from repro.api.http import HttpServer
from repro.corpus import Corpus
from repro.eval.loadgen import (
    SMOKE_PROFILE,
    LoadProfile,
    ablation_matrix,
    build_plan,
    report_rows,
    run_ablation,
    run_load,
    smoke_flags,
)

from reporting import bench_row, record_benchmark


def _fresh_corpus() -> Corpus:
    corpus = Corpus()
    corpus.add_builtin("figure5-stores", name="stores")
    corpus.add_builtin("retail")
    return corpus


def test_smoke_profile_records_full_report():
    corpus = _fresh_corpus()
    plan = build_plan(corpus, SMOKE_PROFILE)
    with HttpServer(SnippetService(corpus), port=0) as server:
        report = run_load(plan, port=server.port)

    assert report.requests_sent == SMOKE_PROFILE.requests
    assert report.errors == 0, [o.code for o in report.outcomes if not o.ok]
    assert all(value is not None for value in report.latency.values())
    assert report.throughput_rps > 0
    # the Zipf head repeats queries, so the caches must have been hit
    assert report.cache_hit_rate is not None and report.cache_hit_rate > 0

    record_benchmark("loadgen", report_rows(report))


def test_smoke_ablation_matrix_measures_every_config():
    corpus = Corpus()
    corpus.add_builtin("retail")
    configs = ablation_matrix(smoke_flags())
    assert len(configs) >= 4  # the CI acceptance floor

    profile = LoadProfile(seed=7, requests=32, concurrency=3)
    outcomes, table = run_ablation(
        corpus, ["--dataset", "retail"], configs, profile
    )

    assert [outcome.config.name for outcome in outcomes] == [
        config.name for config in configs
    ]
    for outcome in outcomes:
        assert outcome.report.requests_sent == profile.requests
        assert outcome.report.latency["p50"] is not None
    assert len(table.rows) == len(configs)

    record_benchmark(
        "loadgen",
        [
            bench_row(
                f"ablate_{outcome.config.name}",
                outcome.report.duration_seconds,
                requests=outcome.report.requests_sent,
                latency=outcome.report.latency,
                throughput_rps=outcome.report.throughput_rps,
                error_rate=outcome.report.error_rate,
                shed_rate=outcome.report.shed_rate,
                cache_hit_rate=outcome.report.cache_hit_rate,
            )
            for outcome in outcomes
        ],
    )
