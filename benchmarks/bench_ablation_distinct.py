"""A3 — ablation: result-set-aware distinct snippets.

The abstract requires snippets to "differentiate [results] from one
another".  On an ambiguous catalogue of near-identical stores the
per-result pipeline produces identical snippets; the result-set-aware
post-processing (DistinctSnippetGenerator) must resolve the clashes within
the same size bound.
"""

from __future__ import annotations

from repro.eval.ablation import _ambiguous_store_catalogue, run_ablation_distinct
from repro.search.engine import SearchEngine
from repro.snippet.distinct import DistinctSnippetGenerator


def test_a3_distinct_generation_speed(benchmark):
    index = _ambiguous_store_catalogue(stores=6, seed=71)
    results = SearchEngine(index).search("store texas jeans")
    generator = DistinctSnippetGenerator(index.analyzer)
    batch = benchmark(generator.generate_all, results, 6)
    assert len(batch) == len(results)


def test_a3_distinct_postprocessing_resolves_clashes():
    table = run_ablation_distinct(bounds=(5, 6, 8, 10), stores=6)
    for row in table.rows:
        assert row["distinct_distinguishability"] >= row["per_result_distinguishability"]
        assert row["max_edges"] <= row["size_bound"]
    # at generous bounds the post-processing fully differentiates the results
    assert table.rows[-1]["distinct_distinguishability"] >= 0.99
    # while the per-result pipeline cannot (the catalogue is ambiguous)
    assert table.rows[0]["per_result_distinguishability"] <= 0.5
