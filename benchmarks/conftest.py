"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one experiment of DESIGN.md / EXPERIMENTS.md.
The measured quantity is the wall-clock time of the experiment's core
operation (pytest-benchmark), and each benchmark *also* asserts the
qualitative shape the paper reports, so a regression in either speed or
behaviour shows up here.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.datasets.paper_example import figure1_document
from repro.datasets.retail import RetailConfig, generate_retail_document
from repro.eval.figures import brook_brothers_result
from repro.index.builder import IndexBuilder
from repro.search.engine import SearchEngine
from repro.snippet.generator import SnippetGenerator


@pytest.fixture(scope="session")
def figure1_index():
    return IndexBuilder().build(figure1_document())


@pytest.fixture(scope="session")
def figure1_result(figure1_index):
    return brook_brothers_result(figure1_index)


@pytest.fixture(scope="session")
def retail_index():
    config = RetailConfig(retailers=10, stores_per_retailer=5, clothes_per_store=6, seed=21)
    return IndexBuilder().build(generate_retail_document(config, name="retail-bench"))


@pytest.fixture(scope="session")
def retail_result_set(retail_index):
    return SearchEngine(retail_index).search("retailer apparel")


@pytest.fixture(scope="session")
def retail_snippet_generator(retail_index):
    # Snippet cache disabled: the E1/E2 benchmarks re-invoke generate_all
    # with identical arguments, and a warm cache would make them measure
    # LRU lookups instead of snippet generation (bench_cache_hit_rate
    # covers the cache itself).
    return SnippetGenerator(retail_index.analyzer, cache_size=0)


@pytest.fixture()
def churn_corpus():
    """A factory for N-document corpora under churn (incremental updates).

    Returns ``build(documents=...) -> (corpus, names)``.  Function-scoped
    (not session) because update benchmarks mutate the corpus; each test
    gets a pristine instance.  Shared here so the incremental-update
    benchmark and any future churn workload agree on the corpus shape.
    """
    from repro.corpus import Corpus

    def build(documents: int = 6) -> tuple["Corpus", list[str]]:
        corpus = Corpus()
        names: list[str] = []
        for position in range(documents):
            name = f"retail-{position}"
            config = RetailConfig(
                retailers=5, stores_per_retailer=5, clothes_per_store=6, seed=40 + position
            )
            corpus.add_tree(name, generate_retail_document(config, name=name))
            names.append(name)
        return corpus, names

    return build
