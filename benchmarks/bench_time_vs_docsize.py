"""E3 — per-phase time (index / search / snippets) vs. document size.

The benchmark measures index construction on the mid-size auction document;
the shape assertion runs the size sweep and checks that every phase grows
with the document while remaining interactive at the largest size used.
"""

from __future__ import annotations

from repro.datasets.auctions import AuctionConfig, generate_auction_document
from repro.eval.efficiency import run_time_vs_docsize
from repro.index.builder import IndexBuilder


def test_e3_index_build_speed(benchmark):
    document = generate_auction_document(AuctionConfig(scale=4, items_per_region=4, seed=17))

    def build():
        return IndexBuilder().build(document)

    index = benchmark(build)
    assert index.tree.size_nodes == document.size_nodes


def test_e3_phases_scale_with_document():
    table = run_time_vs_docsize(scales=(1, 2, 4))
    nodes = table.column("nodes")
    assert nodes == sorted(nodes)
    # the number of results grows with the document, and so does search time
    assert table.column("results") == sorted(table.column("results"))
    index_seconds = table.column("index_seconds")
    assert index_seconds[-1] >= index_seconds[0]
