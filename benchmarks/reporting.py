"""Machine-readable benchmark reports: ``BENCH_<name>.json`` files.

Every serving benchmark asserts an acceptance shape (a speedup floor, a
non-regression bound) but until now threw the measured numbers away — the
perf trajectory across PRs was not tracked anywhere a tool could read.
This module is the shared sink: each benchmark calls
:func:`record_benchmark` with one row per measured operation and the
numbers land in ``benchmarks/BENCH_<name>.json`` (override the directory
with ``REPRO_BENCH_REPORT_DIR``), ready for CI artefact upload or a
trend-plotting script.

Report schema (stable, ``schema_version``-stamped)::

    {
      "schema_version": 2,
      "benchmark": "<name>",
      "results": [
        {"op": "<operation>", "seconds": <wall time>,
         "baseline_op": "...", "baseline_seconds": ..., "speedup": ...,
         "requests": ..., "latency": {"p50": ..., "p95": ..., "p99": ...},
         "throughput_rps": ..., "error_rate": ..., "shed_rate": ...,
         "cache_hit_rate": ...},
        ...
      ]
    }

``speedup`` is ``baseline_seconds / seconds`` (> 1 means the measured op
beats its baseline); rows without a baseline omit the three baseline
fields.  Schema v2 adds the optional workload fields — ``requests``,
``latency`` percentiles (seconds), ``throughput_rps`` (requests/second)
and the ``error_rate``/``shed_rate``/``cache_hit_rate`` ratios in
``[0, 1]`` — which the load harness (``repro.eval.loadgen``) fills in;
point benchmarks keep emitting plain ``seconds``/``speedup`` rows, and
v1 files on disk are still read and merged (every v1 row is a valid v2
row).  Repeated calls for the same benchmark merge by ``op`` — each test
of a module contributes its rows without clobbering the others — and rows
are kept sorted by ``op`` so the file is diff-stable apart from the
volatile timings themselves.
"""

from __future__ import annotations

import json
import os
from typing import Any

#: environment variable overriding where BENCH_*.json files are written
REPORT_DIR_ENV = "REPRO_BENCH_REPORT_DIR"

#: bump on incompatible report-schema change
REPORT_SCHEMA_VERSION = 2

#: schema versions whose rows are forward-compatible with the current
#: writer (v1 rows are a strict subset of v2 rows)
COMPATIBLE_SCHEMA_VERSIONS = frozenset({1, 2})


def report_dir() -> str:
    """Directory receiving the report files (defaults to ``benchmarks/``)."""
    return os.environ.get(REPORT_DIR_ENV) or os.path.dirname(os.path.abspath(__file__))


def report_path(name: str) -> str:
    """The file a benchmark's rows land in."""
    return os.path.join(report_dir(), f"BENCH_{name}.json")


def bench_row(
    op: str,
    seconds: float,
    baseline_op: str | None = None,
    baseline_seconds: float | None = None,
    *,
    requests: int | None = None,
    latency: dict[str, float | None] | None = None,
    throughput_rps: float | None = None,
    error_rate: float | None = None,
    shed_rate: float | None = None,
    cache_hit_rate: float | None = None,
) -> dict[str, Any]:
    """One result row; computes the speedup when a baseline is given.

    The keyword-only workload fields (schema v2) are emitted only when
    given, so point benchmarks' rows look exactly as they did under v1.
    ``latency`` maps percentile names (``p50``/``p95``/``p99``) to
    seconds; a percentile over an empty sample may be ``None``.
    """
    row: dict[str, Any] = {"op": op, "seconds": seconds}
    if baseline_op is not None and baseline_seconds is not None:
        row["baseline_op"] = baseline_op
        row["baseline_seconds"] = baseline_seconds
        row["speedup"] = baseline_seconds / max(seconds, 1e-12)
    if requests is not None:
        row["requests"] = requests
    if latency is not None:
        row["latency"] = dict(latency)
    if throughput_rps is not None:
        row["throughput_rps"] = throughput_rps
    if error_rate is not None:
        row["error_rate"] = error_rate
    if shed_rate is not None:
        row["shed_rate"] = shed_rate
    if cache_hit_rate is not None:
        row["cache_hit_rate"] = cache_hit_rate
    return row


def load_report(name: str) -> dict[str, Any] | None:
    """Parse ``BENCH_<name>.json`` if it exists and carries a compatible
    schema version; ``None`` for missing, corrupt or foreign files."""
    try:
        with open(report_path(name), "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, ValueError):
        return None
    if (
        isinstance(report, dict)
        and report.get("schema_version") in COMPATIBLE_SCHEMA_VERSIONS
        and report.get("benchmark") == name
    ):
        return report
    return None


def record_benchmark(name: str, rows: list[dict[str, Any]]) -> str:
    """Merge ``rows`` into ``BENCH_<name>.json``; returns the file path.

    Rows replace existing rows with the same ``op``, so re-running a test
    refreshes its numbers while other tests' rows survive.  A compatible
    older-schema file is merged and rewritten at the current version; a
    corrupt or foreign existing file is overwritten rather than trusted.
    """
    path = report_path(name)
    existing: dict[str, dict[str, Any]] = {}
    previous = load_report(name)
    if previous is not None:
        for row in previous.get("results", []):
            if isinstance(row, dict) and isinstance(row.get("op"), str):
                existing[row["op"]] = row
    for row in rows:
        existing[row["op"]] = row
    report = {
        "schema_version": REPORT_SCHEMA_VERSION,
        "benchmark": name,
        "results": [existing[op] for op in sorted(existing)],
    }
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
