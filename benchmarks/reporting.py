"""Machine-readable benchmark reports: ``BENCH_<name>.json`` files.

Every serving benchmark asserts an acceptance shape (a speedup floor, a
non-regression bound) but until now threw the measured numbers away — the
perf trajectory across PRs was not tracked anywhere a tool could read.
This module is the shared sink: each benchmark calls
:func:`record_benchmark` with one row per measured operation and the
numbers land in ``benchmarks/BENCH_<name>.json`` (override the directory
with ``REPRO_BENCH_REPORT_DIR``), ready for CI artefact upload or a
trend-plotting script.

Report schema (stable, ``schema_version``-stamped)::

    {
      "schema_version": 1,
      "benchmark": "<name>",
      "results": [
        {"op": "<operation>", "seconds": <wall time>,
         "baseline_op": "...", "baseline_seconds": ..., "speedup": ...},
        ...
      ]
    }

``speedup`` is ``baseline_seconds / seconds`` (> 1 means the measured op
beats its baseline); rows without a baseline omit the three baseline
fields.  Repeated calls for the same benchmark merge by ``op`` — each test
of a module contributes its rows without clobbering the others — and rows
are kept sorted by ``op`` so the file is diff-stable apart from the
volatile timings themselves.
"""

from __future__ import annotations

import json
import os
from typing import Any

#: environment variable overriding where BENCH_*.json files are written
REPORT_DIR_ENV = "REPRO_BENCH_REPORT_DIR"

#: bump on incompatible report-schema change
REPORT_SCHEMA_VERSION = 1


def report_dir() -> str:
    """Directory receiving the report files (defaults to ``benchmarks/``)."""
    return os.environ.get(REPORT_DIR_ENV) or os.path.dirname(os.path.abspath(__file__))


def report_path(name: str) -> str:
    """The file a benchmark's rows land in."""
    return os.path.join(report_dir(), f"BENCH_{name}.json")


def bench_row(
    op: str,
    seconds: float,
    baseline_op: str | None = None,
    baseline_seconds: float | None = None,
) -> dict[str, Any]:
    """One result row; computes the speedup when a baseline is given."""
    row: dict[str, Any] = {"op": op, "seconds": seconds}
    if baseline_op is not None and baseline_seconds is not None:
        row["baseline_op"] = baseline_op
        row["baseline_seconds"] = baseline_seconds
        row["speedup"] = baseline_seconds / max(seconds, 1e-12)
    return row


def record_benchmark(name: str, rows: list[dict[str, Any]]) -> str:
    """Merge ``rows`` into ``BENCH_<name>.json``; returns the file path.

    Rows replace existing rows with the same ``op``, so re-running a test
    refreshes its numbers while other tests' rows survive.  A corrupt or
    foreign existing file is overwritten rather than trusted.
    """
    path = report_path(name)
    existing: dict[str, dict[str, Any]] = {}
    try:
        with open(path, "r", encoding="utf-8") as handle:
            previous = json.load(handle)
        if (
            isinstance(previous, dict)
            and previous.get("schema_version") == REPORT_SCHEMA_VERSION
            and previous.get("benchmark") == name
        ):
            for row in previous.get("results", []):
                if isinstance(row, dict) and isinstance(row.get("op"), str):
                    existing[row["op"]] = row
    except (OSError, ValueError):
        pass
    for row in rows:
        existing[row["op"]] = row
    report = {
        "schema_version": REPORT_SCHEMA_VERSION,
        "benchmark": name,
        "results": [existing[op] for op in sorted(existing)],
    }
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
