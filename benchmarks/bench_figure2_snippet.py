"""F2 — Figure 2: the snippet of the running example.

Measures end-to-end snippet generation (IList + greedy instance selection)
for the Brook Brothers result at the Figure 2 size bound and asserts the
generated snippet shows every tag/value pair visible in the paper's figure.
"""

from __future__ import annotations

from repro.eval.figures import FIGURE2_EXPECTED_CONTENT, FIGURE2_SIZE_BOUND, run_figure2
from repro.snippet.generator import SnippetGenerator


def test_f2_snippet_generation_speed(benchmark, figure1_index, figure1_result):
    generator = SnippetGenerator(figure1_index.analyzer)
    generated = benchmark(generator.generate, figure1_result, FIGURE2_SIZE_BOUND)
    assert generated.snippet.size_edges <= FIGURE2_SIZE_BOUND


def test_f2_content_matches_paper(figure1_index):
    table = run_figure2(figure1_index)
    assert len(table) == len(FIGURE2_EXPECTED_CONTENT)
    missing = [row["paper_content"] for row in table.rows if not row["present_in_generated_snippet"]]
    assert not missing, f"Figure 2 content missing from the generated snippet: {missing}"
