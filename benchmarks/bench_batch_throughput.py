"""Serving benchmark — batch execution throughput vs. per-query execution.

``Corpus.search_batch`` shares parsed queries and posting-list lookups
across queries and documents, and the query-result cache turns a repeated
batch into pure lookups.  The acceptance shape (ISSUE 1): warm-cache batch
queries are **at least 5× faster** than cold per-query execution on the
retail dataset.
"""

from __future__ import annotations

import time

from repro.corpus import Corpus
from repro.datasets.movies import MoviesConfig, generate_movies_document
from repro.datasets.retail import RetailConfig, generate_retail_document

from reporting import bench_row, record_benchmark

QUERIES = [
    "store texas",
    "retailer apparel",
    "clothes casual",
    "store austin",
    "suit formal",
    "movie drama",
]

_RETAIL = RetailConfig(retailers=8, stores_per_retailer=5, clothes_per_store=5, seed=13)
_MOVIES = MoviesConfig(movies=30, seed=13)


def _fresh_corpus() -> Corpus:
    corpus = Corpus()
    corpus.add_tree("retail", generate_retail_document(_RETAIL, name="retail"))
    corpus.add_tree("movies", generate_movies_document(_MOVIES))
    return corpus


def _cold_per_query_seconds(corpus: Corpus) -> float:
    """The baseline the batch API replaces: every query evaluated one by
    one, no caching, no shared lookups."""
    started = time.perf_counter()
    for query in QUERIES:
        for name in corpus.names():
            corpus.query(name, query, size_bound=6, use_cache=False)
    return time.perf_counter() - started


def test_batch_throughput_warm_vs_cold():
    corpus = _fresh_corpus()
    cold = _cold_per_query_seconds(corpus)

    corpus.search_batch(QUERIES, size_bound=6)          # warm the caches
    started = time.perf_counter()
    report = corpus.search_batch(QUERIES, size_bound=6)  # fully warm batch
    warm = time.perf_counter() - started

    assert report.total_results > 0
    assert all(
        outcome.from_cache for entry in report for outcome in entry.outcomes.values()
    )
    record_benchmark(
        "batch_throughput",
        [
            bench_row("cold_per_query", cold),
            bench_row(
                "warm_batch", warm, baseline_op="cold_per_query", baseline_seconds=cold
            ),
        ],
    )
    # ISSUE 1 acceptance: warm-cache batch >= 5x faster than cold per-query.
    assert cold / max(warm, 1e-9) >= 5.0, (cold, warm)


def test_batch_report_shape():
    corpus = _fresh_corpus()
    report = corpus.search_batch(QUERIES, size_bound=6)
    assert len(report) == len(QUERIES)
    assert report.document_names == ["movies", "retail"]
    assert set(report.timings.phases) == {f"query:{query}" for query in QUERIES}
    table = report.format_table()
    assert "TOTAL" in table


def test_warm_batch_speed(benchmark):
    corpus = _fresh_corpus()
    corpus.search_batch(QUERIES, size_bound=6)  # warm up
    report = benchmark(corpus.search_batch, QUERIES, None, 6)
    assert report.total_results > 0


def test_cold_batch_still_shares_lookups():
    """Even a cold batch must answer every query on every document."""
    corpus = _fresh_corpus()
    report = corpus.search_batch(QUERIES, size_bound=6, use_cache=False)
    for entry in report:
        assert set(entry.outcomes) == {"movies", "retail"}
