"""Serving benchmark — incremental document updates vs full re-registration.

The guard of the incremental-update subsystem (ISSUE 3 tentpole): editing a
handful of text values in one document of an N-document corpus must be at
least **5× faster** through ``Corpus.update_document`` (tree diff +
posting-level deltas + targeted cache invalidation) than through the
pre-existing path, ``add_tree(..., replace=True)`` (full re-analysis,
re-tokenisation and re-indexing of the document).

The benchmark also asserts the correctness side of the bargain: after the
timed rounds, the incrementally updated corpus serves responses
byte-identical to a corpus rebuilt from scratch on the final trees.
"""

from __future__ import annotations

import itertools
import json
import time

from repro.api import SearchRequest, SnippetService
from repro.corpus import Corpus
from repro.xmltree.diff import clone_tree

from reporting import bench_row, record_benchmark

#: text edits per update round (a realistic "fix a few values" edit)
EDITS_PER_ROUND = 4
ROUNDS = 5


def _edited_variant(tree, revision: int):
    """A copy of ``tree`` with EDITS_PER_ROUND text values stamped ``revision``.

    The same nodes are edited every round, so variant r diffs against
    variant r-1 in exactly EDITS_PER_ROUND nodes.
    """
    copy = clone_tree(tree)
    edited = 0
    for node in copy.iter_nodes():
        if node.tag == "city" and node.has_text_value:
            base = (node.text or "").split(" rev")[0]
            node.text = f"{base} rev{revision}"
            edited += 1
            if edited == EDITS_PER_ROUND:
                break
    assert edited == EDITS_PER_ROUND
    return copy


def _variants(base_tree, rounds: int = ROUNDS):
    return [_edited_variant(base_tree, revision) for revision in range(1, rounds + 1)]


def test_incremental_update_at_least_5x_faster_than_reregistration(churn_corpus):
    corpus, names = churn_corpus()
    target = names[0]
    base_tree = corpus.system(target).index.tree
    variants = _variants(base_tree)

    # Full re-registration baseline: same edited trees, pre-existing path.
    full_corpus, _ = churn_corpus()
    full_inputs = [clone_tree(variant) for variant in variants]
    started = time.perf_counter()
    for variant in full_inputs:
        full_corpus.add_tree(target, variant, replace=True)
    full_seconds = time.perf_counter() - started

    incremental_inputs = [clone_tree(variant) for variant in variants]
    started = time.perf_counter()
    for variant in incremental_inputs:
        report = corpus.update_document(target, variant)
        assert report.incremental, report
    incremental_seconds = time.perf_counter() - started

    record_benchmark(
        "incremental_update",
        [
            bench_row("full_reregistration", full_seconds),
            bench_row(
                "incremental_update",
                incremental_seconds,
                baseline_op="full_reregistration",
                baseline_seconds=full_seconds,
            ),
        ],
    )
    ratio = full_seconds / max(incremental_seconds, 1e-9)
    assert ratio >= 5.0, (
        f"incremental update only {ratio:.1f}x faster than re-registration "
        f"({incremental_seconds:.4f}s vs {full_seconds:.4f}s)"
    )

    # Both corpora hold the same final state; responses must agree with a
    # from-scratch rebuild byte for byte.
    rebuilt = Corpus()
    for name in names:
        source = corpus.system(name).index.tree if name != target else variants[-1]
        rebuilt.add_tree(name, clone_tree(source))
    service = SnippetService(corpus)
    reference = SnippetService(rebuilt)
    for query in ("store texas", "retailer apparel", f"city rev{ROUNDS}"):
        request = SearchRequest(query=query, document=target, size_bound=6)
        ours = json.dumps(service.run(request).to_dict(), sort_keys=True)
        theirs = json.dumps(reference.run(request).to_dict(), sort_keys=True)
        assert ours == theirs, query


def test_update_keeps_unaffected_documents_cached(churn_corpus):
    corpus, names = churn_corpus()
    target, untouched = names[0], names[1]
    service = SnippetService(corpus)
    for name in (target, untouched):
        service.run(SearchRequest(query="store texas", document=name, size_bound=6))

    report = corpus.update_document(
        target, _edited_variant(corpus.system(target).index.tree, revision=1)
    )
    assert report.incremental

    warm = service.run(SearchRequest(query="store texas", document=untouched, size_bound=6))
    assert warm.from_cache, "untouched document lost its cache to an unrelated update"


def test_incremental_update_speed(benchmark, churn_corpus):
    """pytest-benchmark row: one incremental 4-node update in a 6-doc corpus.

    Two alternating variants guarantee every timed call applies a real
    (non-empty) delta instead of a no-op diff.
    """
    corpus, names = churn_corpus()
    target = names[0]
    base_tree = corpus.system(target).index.tree
    alternating = itertools.cycle(
        [_edited_variant(base_tree, revision) for revision in (1, 2)]
    )

    def update_once():
        report = corpus.update_document(target, clone_tree(next(alternating)))
        assert report.changed_nodes == EDITS_PER_ROUND
        return report

    report = benchmark(update_once)
    assert report.incremental
