"""Serving benchmark — sharded cluster batch vs single-corpus serial.

The acceptance shape (ISSUE 4): a **4-shard** cluster answering a batch
over a multi-document corpus is **no slower than** the single-corpus
serial service (CPython's GIL serialises the CPU-bound pipeline, so "no
slower" — within scheduling-noise tolerance — is the honest bar today;
the per-shard fan-out is the substrate the process/remote executors
exploit for real parallelism), and the merged responses are
byte-identical to the single-corpus path.

The measured numbers land in ``BENCH_cluster_throughput.json`` via the
shared :mod:`reporting` sink.
"""

from __future__ import annotations

import json
import time

from repro.api import BatchRequest, SnippetService
from repro.cluster import ClusterService
from repro.corpus import Corpus
from repro.datasets.movies import MoviesConfig, generate_movies_document
from repro.datasets.retail import RetailConfig, generate_retail_document

from reporting import bench_row, record_benchmark

QUERIES = (
    "store texas",
    "retailer apparel",
    "clothes casual",
    "store austin",
    "suit formal",
    "movie drama",
)

#: documents per corpus — enough that 4 shards each own a real slice
RETAIL_DOCUMENTS = 6

#: tolerance for scheduler noise on top of "no slower than serial" (same
#: rationale as bench_service_throughput: the pipeline is GIL-bound, so a
#: real regression — e.g. routing work quadratic in documents — shows up
#: far above this, while thread jitter on shared CI runners stays below).
SLOWDOWN_TOLERANCE = 1.5
ROUNDS = 5
SHARDS = 4


def _fresh_corpus() -> Corpus:
    corpus = Corpus()
    for position in range(RETAIL_DOCUMENTS):
        name = f"retail-{position}"
        config = RetailConfig(
            retailers=4, stores_per_retailer=4, clothes_per_store=4, seed=60 + position
        )
        corpus.add_tree(name, generate_retail_document(config, name=name))
    corpus.add_tree("movies", generate_movies_document(MoviesConfig(movies=20, seed=7)))
    return corpus


def _batch() -> BatchRequest:
    """Cold batch over every document: real pipeline work every round."""
    return BatchRequest(queries=QUERIES, size_bound=6, use_cache=False)


def _best_seconds(service, batch: BatchRequest) -> float:
    best = float("inf")
    for _ in range(ROUNDS):
        started = time.perf_counter()
        service.run_batch(batch)
        best = min(best, time.perf_counter() - started)
    return best


def test_four_shard_batch_no_slower_than_single_serial():
    single = SnippetService(_fresh_corpus())
    serial = _best_seconds(single, _batch())

    with ClusterService.from_corpus(_fresh_corpus(), shards=SHARDS) as cluster:
        assert len({shard.shard_id for shard in cluster.shards if len(shard)}) > 1, (
            "hash partitioner left every document on one shard; the benchmark "
            "would not measure a real fan-out"
        )
        cluster.run_batch(_batch())  # spin the shard executor's pool up
        sharded = _best_seconds(cluster, _batch())

    record_benchmark(
        "cluster_throughput",
        [
            bench_row("single_corpus_serial_batch", serial),
            bench_row(
                f"{SHARDS}_shard_cluster_batch",
                sharded,
                baseline_op="single_corpus_serial_batch",
                baseline_seconds=serial,
            ),
        ],
    )
    # ISSUE 4 acceptance: the 4-shard batch is no slower than single-corpus
    # serial (tolerance covers thread scheduling noise on loaded runners).
    assert sharded <= serial * SLOWDOWN_TOLERANCE, (serial, sharded)


def test_cluster_batch_bytes_identical_to_single_corpus():
    single = SnippetService(_fresh_corpus())
    with ClusterService.from_corpus(_fresh_corpus(), shards=SHARDS) as cluster:
        ours = json.dumps(cluster.run_batch(_batch()).to_dict(), sort_keys=True)
    theirs = json.dumps(single.run_batch(_batch()).to_dict(), sort_keys=True)
    assert ours == theirs


def test_warm_cluster_batch_speed(benchmark):
    """pytest-benchmark row: a fully warm 4-shard cluster answering the batch."""
    cluster = ClusterService.from_corpus(_fresh_corpus(), shards=SHARDS)
    warm_batch = BatchRequest(queries=QUERIES, size_bound=6)
    cluster.run_batch(warm_batch)  # warm every shard's caches
    response = benchmark(cluster.run_batch, warm_batch)
    assert response.total_results > 0
    record_benchmark(
        "cluster_throughput",
        [bench_row(f"{SHARDS}_shard_cluster_batch_warm", benchmark.stats.stats.min)],
    )
    cluster.close()
