"""Serving benchmark — HTTP round-trip overhead over the in-process path.

The acceptance shape (ISSUE 5): a **warm** search served over the asyncio
HTTP frontend must cost at most ``3×`` the same request answered by the
in-process ``handle_json`` — the transport may add localhost TCP + HTTP
framing, but never multiples of the serving work itself.  Measured with a
keep-alive client against a real listening socket, best-of-N to damp
scheduler noise, and recorded to ``BENCH_http_throughput.json`` via
:mod:`benchmarks.reporting`.
"""

from __future__ import annotations

import json
import time

from repro.api import SearchRequest, ServiceClient, SnippetService
from repro.api.http import HttpServer
from repro.corpus import Corpus

from reporting import bench_row, record_benchmark

#: HTTP on localhost costs a fixed few hundred microseconds per round trip
#: (TCP + HTTP framing + the executor hop); the bound asserts it stays a
#: small multiple of the in-process cost of a warm (cache-hit) search.
MAX_HTTP_OVERHEAD = 3.0
ROUNDS = 7

QUERIES = ("store texas", "store austin", "clothes casual", "retailer apparel")


def _fresh_service() -> SnippetService:
    corpus = Corpus()
    corpus.add_builtin("figure5-stores", name="stores")
    corpus.add_builtin("retail")
    return SnippetService(corpus)


def _request_texts() -> list[str]:
    return [
        json.dumps(
            SearchRequest(query=query, document=document, size_bound=6).to_dict(),
            sort_keys=True,
        )
        for query in QUERIES
        for document in ("stores", "retail")
    ]


def _best_of(fn, rounds: int = ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_warm_http_search_within_overhead_budget():
    service = _fresh_service()
    texts = _request_texts()

    # Warm every cache through the same path both contenders use.
    for text in texts:
        service.handle_json(text)
    in_process = _best_of(lambda: [service.handle_json(text) for text in texts])

    with HttpServer(service, port=0) as server:
        client = ServiceClient(port=server.port, keep_alive=True)
        try:
            responses = [client.handle_dict(json.loads(text)) for text in texts]
            # Same answers over the wire before we trust the timing.
            assert [r["kind"] for r in responses] == ["search_response"] * len(texts)
            over_http = _best_of(
                lambda: [client.handle_dict(json.loads(text)) for text in texts]
            )
        finally:
            client.close()

    record_benchmark(
        "http_throughput",
        [
            bench_row(
                "in_process_handle_json_warm",
                in_process,
                requests=len(texts),
                throughput_rps=len(texts) / in_process,
            ),
            bench_row(
                "http_search_warm",
                over_http,
                baseline_op="in_process_handle_json_warm",
                baseline_seconds=in_process,
                requests=len(texts),
                throughput_rps=len(texts) / over_http,
            ),
        ],
    )
    # ISSUE 5 acceptance: warm HTTP search ≤ 3× in-process handle_json.
    assert over_http <= in_process * MAX_HTTP_OVERHEAD, (in_process, over_http)


def test_http_concurrent_clients_all_served():
    """Sanity under fan-in: N keep-alive clients on distinct threads all
    get correct answers from one server (the executor seam really does
    overlap blocking calls)."""
    import threading

    service = _fresh_service()
    texts = _request_texts()
    for text in texts:
        service.handle_json(text)
    expected = [service.handle_json(text) for text in texts]

    with HttpServer(service, port=0) as server:
        results: dict[int, list[str]] = {}

        def drive(index: int) -> None:
            client = ServiceClient(port=server.port, keep_alive=True)
            try:
                results[index] = [
                    json.dumps(client.handle_dict(json.loads(text)), sort_keys=True)
                    for text in texts
                ]
            finally:
                client.close()

        threads = [threading.Thread(target=drive, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
            assert not thread.is_alive()

    for index in range(4):
        assert results[index] == expected
