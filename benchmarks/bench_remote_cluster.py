"""Serving benchmark — spawned remote cluster vs in-process cluster.

Two acceptance shapes for the distributed layer (ISSUE 7):

* **Coordination tax is bounded**: a remote 4-shard cluster — every shard
  its own spawned ``serve --shard-of`` process, requests fanned over HTTP
  — answers a warm batch within **3×** of the in-process 4-shard cluster.
  The hop costs serialisation + localhost TCP per sub-batch; what it buys
  is real multi-core execution and fault isolation, which the second
  shape measures.
* **Replicas scale reads**: with 2 replicas per shard, concurrent cold
  reads (8 coordinator threads) achieve **≥ 1.5×** the throughput of the
  same cluster with a single replica — the load-balanced replica set
  turns extra processes into extra read capacity.  Extra *processes* only
  buy throughput when there are extra *cores*: on a single-core box the
  replicas time-slice one CPU and the fan-out is pure overhead, so the
  floor is asserted only with ≥ 4 cores (2 shards × 2 replicas need that
  many to actually run concurrently); the numbers are recorded either
  way.

The measured numbers land in ``BENCH_remote_cluster.json`` via the shared
:mod:`reporting` sink.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time

from repro.api import BatchRequest, ErrorResponse, SearchRequest
from repro.cluster import ClusterService, RemoteClusterService
from repro.corpus import Corpus
from repro.datasets.movies import MoviesConfig, generate_movies_document
from repro.datasets.retail import RetailConfig, generate_retail_document

from reporting import bench_row, record_benchmark

QUERIES = (
    "store texas",
    "retailer apparel",
    "clothes casual",
    "store austin",
    "suit formal",
    "movie drama",
)

RETAIL_DOCUMENTS = 6
SHARDS = 4
ROUNDS = 5

#: ISSUE 7 acceptance: remote warm batch within this factor of in-process
REMOTE_SLOWDOWN_BOUND = 3.0

#: ISSUE 7 acceptance: 2-replica concurrent read throughput ≥ this factor
#: of the single-replica cluster
REPLICA_SPEEDUP_FLOOR = 1.5

#: cores needed before the replica-speedup floor is a physical possibility
#: (2 shards × 2 replicas = 4 server processes that must run concurrently)
REPLICA_BENCH_MIN_CORES = 4

READ_THREADS = 8
READS_PER_THREAD = 5


def _fresh_corpus() -> Corpus:
    corpus = Corpus()
    for position in range(RETAIL_DOCUMENTS):
        name = f"retail-{position}"
        config = RetailConfig(
            retailers=4, stores_per_retailer=4, clothes_per_store=4, seed=60 + position
        )
        corpus.add_tree(name, generate_retail_document(config, name=name))
    corpus.add_tree("movies", generate_movies_document(MoviesConfig(movies=20, seed=7)))
    return corpus


def _save_cluster(directory: str, shards: int) -> None:
    service = ClusterService.from_corpus(_fresh_corpus(), shards=shards)
    service.save_dir(directory)
    service.close()


def _warm_batch() -> BatchRequest:
    return BatchRequest(queries=QUERIES, size_bound=6)


def _best_seconds(backend, batch: BatchRequest) -> float:
    best = float("inf")
    for _ in range(ROUNDS):
        started = time.perf_counter()
        backend.execute_batch(batch)
        best = min(best, time.perf_counter() - started)
    return best


def test_remote_batch_within_bound_of_in_process_cluster():
    with tempfile.TemporaryDirectory() as directory:
        _save_cluster(directory, SHARDS)

        with ClusterService.from_corpus(_fresh_corpus(), shards=SHARDS) as local:
            local.run_batch(_warm_batch())  # warm shard caches + pool
            local_best = _best_seconds(local, _warm_batch())
            local_bytes = json.dumps(
                local.run_batch(_warm_batch()).to_dict(), sort_keys=True
            )

        with RemoteClusterService.spawn(directory, replicas=1) as remote:
            remote.execute_batch(_warm_batch())  # warm every process
            remote_best = _best_seconds(remote, _warm_batch())
            remote_response = remote.execute_batch(_warm_batch())
            assert not isinstance(remote_response, ErrorResponse)
            remote_bytes = json.dumps(remote_response.to_dict(), sort_keys=True)

    # the wire hop must not change a byte
    assert remote_bytes == local_bytes

    record_benchmark(
        "remote_cluster",
        [
            bench_row(f"{SHARDS}_shard_in_process_batch_warm", local_best),
            bench_row(
                f"{SHARDS}_shard_remote_batch_warm",
                remote_best,
                baseline_op=f"{SHARDS}_shard_in_process_batch_warm",
                baseline_seconds=local_best,
            ),
        ],
    )
    assert remote_best <= local_best * REMOTE_SLOWDOWN_BOUND, (local_best, remote_best)


def _read_throughput(remote: RemoteClusterService) -> float:
    """Requests/second for cold concurrent reads through the coordinator."""
    names = remote.names()
    barrier = threading.Barrier(READ_THREADS + 1)
    failures: list[str] = []

    def worker(thread_index: int) -> None:
        barrier.wait()
        for position in range(READS_PER_THREAD):
            step = thread_index * READS_PER_THREAD + position
            request = SearchRequest(
                query=QUERIES[step % len(QUERIES)],
                document=names[step % len(names)],
                size_bound=6,
                use_cache=False,  # cold: the server does real pipeline work
            )
            response = remote.execute(request)
            if isinstance(response, ErrorResponse):
                failures.append(response.message)

    threads = [
        threading.Thread(target=worker, args=(index,)) for index in range(READ_THREADS)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    assert failures == [], failures[:3]
    return (READ_THREADS * READS_PER_THREAD) / elapsed


def test_two_replicas_scale_read_throughput():
    with tempfile.TemporaryDirectory() as directory:
        _save_cluster(directory, 2)

        with RemoteClusterService.spawn(directory, replicas=1) as single_replica:
            _read_throughput(single_replica)  # warm the processes
            single_rate = _read_throughput(single_replica)

        with RemoteClusterService.spawn(directory, replicas=2) as two_replicas:
            _read_throughput(two_replicas)
            double_rate = _read_throughput(two_replicas)

    record_benchmark(
        "remote_cluster",
        [
            bench_row(
                "read_throughput_1_replica",
                1.0 / single_rate,
                throughput_rps=single_rate,
            ),
            bench_row(
                "read_throughput_2_replicas",
                1.0 / double_rate,
                baseline_op="read_throughput_1_replica",
                baseline_seconds=1.0 / single_rate,
                throughput_rps=double_rate,
            ),
        ],
    )
    if (os.cpu_count() or 1) >= REPLICA_BENCH_MIN_CORES:
        assert double_rate >= single_rate * REPLICA_SPEEDUP_FLOOR, (
            single_rate,
            double_rate,
        )
