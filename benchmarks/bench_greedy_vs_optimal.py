"""E4 — IList coverage: greedy vs. the NP-hard optimum vs. baselines.

The benchmark measures the greedy selector on the paper's running example;
the shape assertion runs the sweep on small results (where the exact
branch-and-bound selector is feasible) and checks the paper's claim: greedy
is a practical stand-in for the optimum (>= 80% of its coverage at every
bound) and clearly better than naive baselines.
"""

from __future__ import annotations

from repro.eval.quality import run_greedy_vs_optimal
from repro.search.query import KeywordQuery
from repro.snippet.ilist import IListBuilder
from repro.snippet.instance_selector import GreedyInstanceSelector


def test_e4_greedy_selector_speed(benchmark, figure1_index, figure1_result):
    query = KeywordQuery.parse("Texas, apparel, retailer")
    ilist = IListBuilder(figure1_index.analyzer).build(query, figure1_result)
    selector = GreedyInstanceSelector()
    snippet = benchmark(selector.select, figure1_result, ilist, 14)
    assert snippet.size_edges <= 14


def test_e4_greedy_close_to_optimal_and_above_baselines():
    table = run_greedy_vs_optimal(bounds=(4, 6, 8, 12), queries=("store texas", "retailer apparel"))
    for row in table.rows:
        assert row["greedy_items"] <= row["optimal_items"] + 1e-9
        assert row["greedy_over_optimal"] >= 0.8
        assert row["optimal_items"] >= row["random_items"]
    # at generous bounds greedy should reach the optimum
    last = table.rows[-1]
    assert last["greedy_over_optimal"] >= 0.9
