"""Observability overhead — the traced stack vs a bare gateway.

The acceptance bound (ISSUE 9): the full observability stack — tracing
spans, histogram observations and the trace buffer — may add at most
**5%** to a warm in-process search against the same gateway with tracing
and metrics disabled.  Observability that taxes the hot path gets turned
off in production, so the budget is part of the contract.

Measurement design, each piece earned by an A/A test (two identical
stacks must read ~1.00):

* both gateways wrap ONE shared service — separate services thrash the
  snippet cache between contenders and read as ~10% phantom overhead;
* every timed batch starts with a short untimed warm-up on the same
  stack — switching stacks has its own cost (inline caches, branch
  predictors) that must not land inside the measurement;
* rounds alternate ABBA / BAAB order — a fixed ABBA order leaves a ~3%
  positional bias that alternation cancels;
* each attempt reports the **median** of per-round ratios, which a
  single noisy round cannot drag;
* the gate takes the **best of up to three attempts**.  Timing noise on
  a shared host is strictly additive — load spikes and GC pauses only
  ever slow a batch down — so the lowest attempt is the closest to the
  true ratio.  A real regression reads high on *every* attempt and still
  fails; a noisy neighbour does not produce false alarms.

Results land in ``BENCH_trace_overhead.json`` via
:mod:`benchmarks.reporting`.
"""

from __future__ import annotations

import json
import statistics
import time

from repro.api import SearchRequest, SnippetService
from repro.api.gateway import build_gateway
from repro.corpus import Corpus

from reporting import bench_row, record_benchmark

#: Tracing a warm search costs a handful of span records plus one
#: histogram observation — bounded work, so a bounded multiple.
MAX_TRACE_OVERHEAD = 1.05
ROUNDS = 30
ATTEMPTS = 3
#: requests per timed batch: INNER passes over the 8 request texts
INNER = 4

QUERIES = ("store texas", "store austin", "clothes casual", "retailer apparel")


def _fresh_service() -> SnippetService:
    corpus = Corpus()
    corpus.add_builtin("figure5-stores", name="stores")
    corpus.add_builtin("retail")
    return SnippetService(corpus)


def _request_texts() -> list[str]:
    return [
        json.dumps(
            SearchRequest(query=query, document=document, size_bound=6).to_dict(),
            sort_keys=True,
        )
        for query in QUERIES
        for document in ("stores", "retail")
    ]


def test_traced_stack_within_overhead_budget():
    service = _fresh_service()
    plain = build_gateway(service, tracing=False, metrics=False)
    traced = build_gateway(service)
    texts = _request_texts()

    def batch(stack) -> float:
        # Untimed lead-in absorbs the cost of switching stacks.
        for text in texts[:4]:
            stack.handle_json(text)
        started = time.perf_counter()
        for _ in range(INNER):
            for text in texts:
                stack.handle_json(text)
        return time.perf_counter() - started

    def attempt() -> tuple[float, float, float]:
        ratios = []
        plain_best = traced_best = float("inf")
        for round_index in range(ROUNDS):
            if round_index % 2 == 0:
                p1 = batch(plain)
                t1 = batch(traced)
                t2 = batch(traced)
                p2 = batch(plain)
            else:
                t1 = batch(traced)
                p1 = batch(plain)
                p2 = batch(plain)
                t2 = batch(traced)
            ratios.append((t1 + t2) / (p1 + p2))
            plain_best = min(plain_best, p1, p2)
            traced_best = min(traced_best, t1, t2)
        return statistics.median(ratios), plain_best, traced_best

    try:
        # Warm every cache through both stacks before timing either, and
        # insist on identical answers first — a fast wrong stack is not a
        # measurement.
        plain_bodies = [plain.handle_json(text) for text in texts]
        traced_bodies = [traced.handle_json(text) for text in texts]
        assert plain_bodies == traced_bodies

        attempts = []
        overhead = plain_best = traced_best = float("inf")
        for _ in range(ATTEMPTS):
            measured, p_best, t_best = attempt()
            attempts.append(measured)
            overhead = min(overhead, measured)
            plain_best = min(plain_best, p_best)
            traced_best = min(traced_best, t_best)
            if overhead <= MAX_TRACE_OVERHEAD:
                break
    finally:
        # One shared service: close it once, through the outer stack.
        traced.close()

    per_request = INNER * len(texts)  # requests inside one timed batch
    record_benchmark(
        "trace_overhead",
        [
            bench_row("gateway_search_warm_untraced", plain_best / per_request),
            bench_row(
                "gateway_search_warm_traced",
                traced_best / per_request,
                baseline_op="gateway_search_warm_untraced",
                baseline_seconds=plain_best / per_request,
            ),
            bench_row("traced_overhead_median_ratio", overhead),
        ],
    )
    # ISSUE 9 acceptance: full observability ≤ 5% on the warm search path.
    assert overhead <= MAX_TRACE_OVERHEAD, attempts
