"""E1 — snippet generation time vs. number of query results.

pytest-benchmark measures snippet generation over the fixed retail result
set (the per-call cost the E1 sweep plots); the shape assertion runs the
actual sweep and checks that total time grows roughly linearly with the
number of results while the per-result cost stays flat.
"""

from __future__ import annotations

from repro.eval.efficiency import run_time_vs_results

SIZE_BOUND = 10


def test_e1_generate_all_speed(benchmark, retail_result_set, retail_snippet_generator):
    batch = benchmark(retail_snippet_generator.generate_all, retail_result_set, SIZE_BOUND)
    assert len(batch) == len(retail_result_set)


def test_e1_time_scales_with_results():
    table = run_time_vs_results(retailer_counts=(4, 8, 16), stores_per_retailer=4, clothes_per_store=5)
    results = table.column("results")
    totals = table.column("total_seconds")
    per_result = table.column("ms_per_result")
    # more results → more total time
    assert results == sorted(results)
    assert totals[-1] > totals[0]
    # per-result cost stays within a small constant factor (linear scaling)
    assert max(per_result) <= 6 * min(per_result)
