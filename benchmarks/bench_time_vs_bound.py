"""E2 — snippet generation time vs. snippet size bound.

The benchmark measures generation at a mid-range bound; the shape assertion
runs the bound sweep and checks that (a) snippets use more of the budget
and cover more IList items as the bound grows, and (b) the cost does not
blow up with the bound (the greedy selector's work is dominated by the
IList, not the bound).
"""

from __future__ import annotations

from repro.eval.efficiency import run_time_vs_bound


def test_e2_generation_speed_at_bound_16(benchmark, retail_result_set, retail_snippet_generator):
    batch = benchmark(retail_snippet_generator.generate_all, retail_result_set, 16)
    assert all(generated.snippet.size_edges <= 16 for generated in batch)


def test_e2_coverage_grows_with_bound():
    table = run_time_vs_bound(bounds=(4, 8, 16, 32), retailers=8)
    edges = table.column("mean_snippet_edges")
    items = table.column("mean_items_covered")
    assert edges == sorted(edges)
    assert items == sorted(items)
    totals = table.column("total_seconds")
    assert max(totals) <= 10 * min(totals)
