"""E7 — search semantics scaling: SLCA vs. ELCA vs. brute force.

The benchmark measures SLCA evaluation on a mid-size auction document; the
shape assertion checks that the optimised SLCA implementation stays ahead
of the brute-force reference as the document grows and that both semantics
keep agreeing with their definitions.
"""

from __future__ import annotations

from repro.datasets.auctions import AuctionConfig, generate_auction_document
from repro.eval.efficiency import run_search_engine_scaling
from repro.index.builder import IndexBuilder
from repro.search.lca import brute_force_slca
from repro.search.query import KeywordQuery
from repro.search.slca import compute_slca

QUERY = KeywordQuery.parse("person books")


def _postings(scale: int):
    document = generate_auction_document(AuctionConfig(scale=scale, items_per_region=4, seed=19))
    index = IndexBuilder().build(document)
    return [index.keyword_matches(keyword) for keyword in QUERY.keywords]


def test_e7_slca_speed(benchmark):
    postings = _postings(scale=6)
    roots = benchmark(compute_slca, postings)
    assert roots == brute_force_slca(postings)


def test_e7_scaling_table_shape():
    table = run_search_engine_scaling(scales=(1, 2, 4))
    nodes = table.column("nodes")
    matches = table.column("matches")
    assert nodes == sorted(nodes)
    assert matches == sorted(matches)
