"""Serving benchmark — service throughput, serial vs. threaded executor.

The acceptance shape (ISSUE 2): on a multi-query workload the
``ConcurrentExecutor`` must be **no slower than** the ``SerialExecutor``
(CPython's GIL serialises the CPU-bound pipeline, so "no slower" — within
scheduling-noise tolerance — is the honest bar; the win today is overlap
of any GIL-releasing work plus the substrate for the async roadmap), and
the responses must be byte-identical between the two paths.
"""

from __future__ import annotations

import json
import time

from repro.api import ConcurrentExecutor, SearchRequest, SerialExecutor, SnippetService
from repro.corpus import Corpus
from repro.datasets.movies import MoviesConfig, generate_movies_document
from repro.datasets.retail import RetailConfig, generate_retail_document

from reporting import bench_row, record_benchmark

QUERIES = [
    "store texas",
    "retailer apparel",
    "clothes casual",
    "store austin",
    "suit formal",
    "movie drama",
]

_RETAIL = RetailConfig(retailers=8, stores_per_retailer=5, clothes_per_store=5, seed=13)
_MOVIES = MoviesConfig(movies=30, seed=13)

#: tolerance for scheduler noise on top of "no slower than serial" — the
#: pipeline is GIL-bound CPU work, so threads add only overhead; on noisy
#: shared CI runners the margin must absorb context-switch jitter without
#: masking a real regression (a naive lock-per-query serialisation shows
#: up as 2x+).
SLOWDOWN_TOLERANCE = 1.5
ROUNDS = 5


def _fresh_corpus() -> Corpus:
    corpus = Corpus()
    corpus.add_tree("retail", generate_retail_document(_RETAIL, name="retail"))
    corpus.add_tree("movies", generate_movies_document(_MOVIES))
    return corpus


def _workload() -> list[SearchRequest]:
    """A multi-query workload: every query over every document, cold every
    time (``use_cache=False``) so both executors do real pipeline work."""
    return [
        SearchRequest(query=query, document=document, size_bound=6, use_cache=False)
        for query in QUERIES
        for document in ("movies", "retail")
    ]


def _best_seconds(service: SnippetService, requests: list[SearchRequest]) -> float:
    """Best-of-N wall clock (damps scheduler noise in CI)."""
    best = float("inf")
    for _ in range(ROUNDS):
        started = time.perf_counter()
        service.run_many(requests)
        best = min(best, time.perf_counter() - started)
    return best


def test_threaded_executor_no_slower_than_serial():
    requests = _workload()

    serial_service = SnippetService(_fresh_corpus(), executor=SerialExecutor())
    serial = _best_seconds(serial_service, requests)

    with SnippetService(
        _fresh_corpus(), executor=ConcurrentExecutor(max_workers=8)
    ) as service:
        service.run_many(requests)  # spin the pool up before timing
        concurrent = _best_seconds(service, requests)

    record_benchmark(
        "service_throughput",
        [
            bench_row("serial_executor", serial),
            bench_row(
                "concurrent_executor",
                concurrent,
                baseline_op="serial_executor",
                baseline_seconds=serial,
            ),
        ],
    )
    # ISSUE 2 acceptance: the threaded executor is no slower than serial
    # (tolerance covers thread scheduling noise on loaded CI runners).
    assert concurrent <= serial * SLOWDOWN_TOLERANCE, (serial, concurrent)


def test_executors_return_identical_bytes():
    requests = _workload()
    serial_responses = SnippetService(_fresh_corpus()).run_many(requests)
    with SnippetService(
        _fresh_corpus(), executor=ConcurrentExecutor(max_workers=8)
    ) as service:
        concurrent_responses = service.run_many(requests)
    serial_bytes = [json.dumps(r.to_dict(), sort_keys=True) for r in serial_responses]
    concurrent_bytes = [json.dumps(r.to_dict(), sort_keys=True) for r in concurrent_responses]
    assert serial_bytes == concurrent_bytes


def test_warm_service_throughput(benchmark):
    """pytest-benchmark row: a fully warm service answering the workload."""
    corpus = _fresh_corpus()
    requests = [
        SearchRequest(query=query, document=document, size_bound=6)
        for query in QUERIES
        for document in ("movies", "retail")
    ]
    service = SnippetService(corpus)
    service.run_many(requests)  # warm the caches
    responses = benchmark(service.run_many, requests)
    assert all(response.from_cache for response in responses)
