"""Serving benchmark — query-result cache hit rate and warm-query speed.

The eXtract demo served a small set of show-case queries over and over;
the query-result cache turns every repeat into a dictionary lookup.  The
benchmark measures a warm repeated-query workload and asserts the shape
the service layer promises: a high hit rate on a Zipf-ish repeated
workload and warm queries at least an order of magnitude faster than the
same queries evaluated cold.
"""

from __future__ import annotations

import time

from repro.datasets.retail import RetailConfig, generate_retail_document
from repro.system import ExtractSystem

#: a repeated workload: few distinct queries, many repetitions (the shape
#: of interactive demo traffic).
WORKLOAD = [
    "store texas",
    "retailer apparel",
    "store texas",
    "clothes casual",
    "store texas",
    "retailer apparel",
    "store texas",
    "clothes casual",
    "store texas",
    "retailer apparel",
]

_CONFIG = RetailConfig(retailers=8, stores_per_retailer=5, clothes_per_store=5, seed=11)


def _fresh_system() -> ExtractSystem:
    return ExtractSystem.from_tree(generate_retail_document(_CONFIG, name="retail-cache-bench"))


def _run_workload(system: ExtractSystem, use_cache: bool) -> float:
    started = time.perf_counter()
    for query in WORKLOAD:
        system.query(query, size_bound=6, use_cache=use_cache)
    return time.perf_counter() - started


def test_cache_hit_rate_on_repeated_workload():
    system = _fresh_system()
    _run_workload(system, use_cache=True)
    stats = system.cache.stats
    # 10 lookups over 3 distinct queries: 3 misses, 7 hits.
    assert stats.misses == 3
    assert stats.hits == 7
    assert stats.hit_rate == 0.7


def test_warm_queries_much_faster_than_cold():
    system = _fresh_system()
    cold = _run_workload(system, use_cache=False)   # never caches
    warm_system = _fresh_system()
    _run_workload(warm_system, use_cache=True)       # populate
    warm = _run_workload(warm_system, use_cache=True)  # fully warm
    assert warm < cold, (warm, cold)
    # The warm pass is pure cache lookups; 10x is a very conservative floor.
    assert cold / max(warm, 1e-9) >= 10.0, (cold, warm)


def test_warm_query_speed(benchmark):
    system = _fresh_system()
    system.query("store texas", size_bound=6)  # populate
    outcome = benchmark(system.query, "store texas", 6)
    assert outcome.from_cache is True


def test_snippet_cache_serves_shared_results():
    system = _fresh_system()
    system.query("store texas", size_bound=6)
    before = system.generator.cache.stats.hits
    # Same result roots at the same bound through a different limit: the
    # query cache misses but every snippet is served from the snippet cache.
    system.query("store texas", size_bound=6, limit=2)
    assert system.generator.cache.stats.hits > before
