"""Snapshot load benchmark — v4 mmap cold load vs v3 text parse.

The acceptance shape (ISSUE 8): loading a document from a v4 binary
snapshot (mmap + lazy posting materialisation) is **at least 5× faster**
than the v3 text path, which re-parses ``document.xml`` and rebuilds the
whole index from scratch.  The second measurement is the operational
number behind the speedup: the time from spawning a remote shard process
over v4 snapshots to its first served query response.

The measured numbers land in ``BENCH_snapshot_load.json`` via the shared
:mod:`reporting` sink.
"""

from __future__ import annotations

import json
import time

from repro.api.protocol import SearchRequest
from repro.cluster import ClusterService, RemoteClusterService
from repro.corpus import Corpus
from repro.datasets.retail import RetailConfig, generate_retail_document
from repro.index.builder import IndexBuilder
from repro.index.storage import BINARY_FORMAT_VERSION, load_index, save_index

from reporting import bench_row, record_benchmark

#: ISSUE 8 acceptance floor: v4 cold load ≥ 5× faster than the v3 parse.
SPEEDUP_FLOOR = 5.0
ROUNDS = 5


def _document_tree():
    config = RetailConfig(retailers=8, stores_per_retailer=6, clothes_per_store=6, seed=11)
    return generate_retail_document(config, name="bench-snapshot")


def _best_seconds(operation) -> float:
    best = float("inf")
    for _ in range(ROUNDS):
        started = time.perf_counter()
        operation()
        best = min(best, time.perf_counter() - started)
    return best


def test_v4_cold_load_speedup(tmp_path):
    index = IndexBuilder().build(_document_tree())
    v3_dir = tmp_path / "v3"
    v4_dir = tmp_path / "v4"
    save_index(index, v3_dir)
    save_index(index, v4_dir, format_version=BINARY_FORMAT_VERSION)

    text_seconds = _best_seconds(lambda: load_index(v3_dir))
    lazy_seconds = _best_seconds(lambda: load_index(v4_dir))
    eager_seconds = _best_seconds(lambda: load_index(v4_dir, lazy=False))

    record_benchmark(
        "snapshot_load",
        [
            bench_row("v3_text_cold_load", text_seconds),
            bench_row(
                "v4_mmap_lazy_cold_load",
                lazy_seconds,
                baseline_op="v3_text_cold_load",
                baseline_seconds=text_seconds,
            ),
            bench_row(
                "v4_eager_cold_load",
                eager_seconds,
                baseline_op="v3_text_cold_load",
                baseline_seconds=text_seconds,
            ),
        ],
    )
    # ISSUE 8 acceptance: the mmap cold load clears the 5× floor.
    assert lazy_seconds * SPEEDUP_FLOOR <= text_seconds, (text_seconds, lazy_seconds)


def test_shard_time_to_first_query(tmp_path):
    """Wall time from process spawn to the first served query response."""
    corpus = Corpus()
    corpus.add_tree("bench-snapshot", _document_tree())
    service = ClusterService.from_corpus(corpus, shards=2)
    service.save_dir(tmp_path, format_version=BINARY_FORMAT_VERSION)
    service.close()

    request = SearchRequest(query="store texas", document="bench-snapshot", size_bound=6)
    started = time.perf_counter()
    remote = RemoteClusterService.spawn(tmp_path)
    try:
        body = remote.handle_json(json.dumps(request.to_dict(), sort_keys=True))
        elapsed = time.perf_counter() - started
    finally:
        remote.close()
    assert '"error"' not in body.split('"results"')[0], body[:200]

    record_benchmark(
        "snapshot_load",
        [bench_row("v4_shard_spawn_to_first_query", elapsed)],
    )
