"""F5 — Figure 5: the demo walk-through ("store texas", size bound 6).

Measures the complete demo interaction — search plus snippet generation for
every result — and asserts the narrative of the screenshot: the Levis store
shows jeans/man, the ESprit store shows outwear/woman, both within bound.
"""

from __future__ import annotations

from repro.datasets.retail import figure5_document
from repro.eval.figures import run_figure5
from repro.system import ExtractSystem


def test_f5_end_to_end_demo_speed(benchmark):
    system = ExtractSystem.from_tree(figure5_document())

    def run_demo():
        # Cache disabled: this benchmark measures the full search + snippet
        # pipeline, not the serving cache (bench_cache_hit_rate covers that).
        system.invalidate_cache()
        return system.query("store texas", size_bound=6, use_cache=False)

    outcome = benchmark(run_demo)
    assert len(outcome) == 2


def test_f5_narrative_holds():
    table = run_figure5()
    by_store = {row["store"]: row for row in table.rows}
    assert set(by_store) == {"Levis", "ESprit"}
    for row in by_store.values():
        assert row["within_bound"] == 1
        assert row["shows_store_name"] == 1
        assert row["shows_dominant_category"] == 1
