#!/usr/bin/env python3
"""Walk through the paper's running example (Figures 1, 2 and 3).

Run with::

    python examples/paper_walkthrough.py

The script rebuilds the Figure 1 document, issues the query
"Texas, apparel, retailer", prints the value-occurrence statistics, the
IList (Figure 3) with its dominance scores and the generated snippet
(Figure 2), and checks them against the numbers printed in the paper.
"""

from __future__ import annotations

from repro import ExtractSystem
from repro.datasets.paper_example import (
    FIGURE1_EXPECTED_ILIST,
    FIGURE1_EXPECTED_SCORES,
    figure1_document,
    figure1_query,
)
from repro.eval.figures import run_figure1, run_figure2, run_figure3
from repro.snippet.render import render_snippet_text


def main() -> None:
    system = ExtractSystem.from_tree(figure1_document())
    print(f"document: {system.index.tree.size_nodes} nodes, "
          f"entities: {sorted(system.analyzer.entity_tags())}")
    print(f"query   : {figure1_query()!r}")
    print()

    outcome = system.query(figure1_query(), size_bound=14)
    print(f"{len(outcome)} query results")
    print()

    # Locate the Brook Brothers result (the one the paper discusses).
    for generated in outcome.snippets:
        keys = [item.text for item in generated.ilist.items if item.kind.value == "key"]
        if keys and keys[0] == "Brook Brothers":
            break
    else:  # pragma: no cover - the dataset guarantees the result exists
        raise SystemExit("Brook Brothers result not found")

    print("=== Figure 3: IList ===")
    measured = [text.lower() for text in generated.ilist.texts()]
    for position, (expected, got) in enumerate(zip(FIGURE1_EXPECTED_ILIST, measured), start=1):
        marker = "ok" if expected == got else "MISMATCH"
        score = FIGURE1_EXPECTED_SCORES.get(expected)
        score_text = f"  (paper DS {score})" if score else ""
        print(f"  {position:2d}. {got:<16s} {marker}{score_text}")
    print()

    print("=== Figure 2: snippet (size bound 14 edges) ===")
    print(render_snippet_text(generated))
    print()

    print("=== Paper-vs-measured tables (F1, F2, F3) ===")
    for table in (run_figure1(system.index), run_figure2(system.index), run_figure3(system.index)):
        print(table.format_text())
        print()


if __name__ == "__main__":
    main()
