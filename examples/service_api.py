#!/usr/bin/env python3
"""The typed service API: JSON requests in, JSON responses out.

Run with::

    python examples/service_api.py

Walks the ``repro.api`` protocol end to end:

* build a corpus and wrap it in a :class:`~repro.api.SnippetService`,
* execute a typed :class:`~repro.api.SearchRequest` (and the same request
  as a raw JSON object, the way a wire frontend would),
* paginate through the result list with ``next_page`` tokens,
* fan a :class:`~repro.api.BatchRequest` out over a thread pool with the
  :class:`~repro.api.ConcurrentExecutor` — byte-identical to serial,
* edit a document through an :class:`~repro.api.UpdateRequest` — the
  text-only edit is applied incrementally (posting-level deltas) and only
  the affected cache entries are invalidated — then query again,
* peek at the per-document cache statistics the service exposes,
* serve the same documents from a **sharded cluster**
  (:class:`~repro.cluster.ClusterService`): byte-identical responses for
  any shard count, shard provenance in the opt-in ``meta`` block, and
  replication deltas a replica can re-apply,
* put the whole thing **on the network**: wrap the service in the gateway
  middleware stack (validation, admission control, deadlines, metrics),
  start the asyncio HTTP frontend (:class:`~repro.api.HttpServer`), and
  query it with the typed :class:`~repro.api.ServiceClient` — which is
  itself a :class:`~repro.api.ServingBackend`, so remote and in-process
  backends are interchangeable behind one seam,
* go **distributed**: spawn the saved cluster as real shard processes
  with replica sets (:class:`~repro.cluster.RemoteClusterService`) —
  reads load-balanced across replicas, writes replicated through the
  primary as journal deltas, health-checked failover, still
  byte-identical.

The same flow is available from the command line::

    echo '{"kind": "search", "schema_version": 1,
           "query": "store texas", "document": "stores"}' |
        python -m repro.cli serve-request --dataset figure5-stores --request -

    python -m repro.cli serve --dataset figure5-stores --port 8080 \\
        --max-in-flight 16 --deadline 30
    curl -s -X POST http://127.0.0.1:8080/v1/search -d '{
        "kind": "search", "schema_version": 1,
        "query": "store texas", "document": "figure5-stores"}'
"""

from __future__ import annotations

import json

from repro import Corpus
from repro.api import (
    BatchRequest,
    ConcurrentExecutor,
    SearchRequest,
    SnippetService,
    UpdateRequest,
)
from repro.xmltree.diff import clone_tree
from repro.xmltree.serialize import to_xml_string


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. a corpus behind a service facade
    # ------------------------------------------------------------------ #
    corpus = Corpus()
    corpus.add_builtin("figure5-stores", name="stores")
    corpus.add_builtin("retail")
    service = SnippetService(corpus)
    print(f"=== {service!r} ===\n")

    # ------------------------------------------------------------------ #
    # 2. one typed request → one typed response
    # ------------------------------------------------------------------ #
    request = SearchRequest(query="store texas", document="stores", size_bound=6)
    response = service.run(request)
    print(f"query {request.query!r} on {request.document!r}: "
          f"{response.total_results} results (algorithm {response.algorithm})")
    print(response.results[0].text)
    print()

    # The exact same round trip as JSON, the way a frontend would see it:
    wire_response = service.handle_dict(request.to_dict())
    print("wire form keys:", ", ".join(sorted(wire_response)))
    print()

    # ------------------------------------------------------------------ #
    # 3. pagination: one result per page, follow the next_page tokens
    # ------------------------------------------------------------------ #
    paged = SearchRequest(query="store", document="stores", size_bound=6, page_size=1)
    page_number = 0
    while True:
        page = service.run(paged)
        page_number += 1
        for payload in page.results:
            print(f"page {page.page}: result #{payload.result_id} "
                  f"root=<{payload.root_tag}> score={payload.score:.2f}")
        if page.next_page is None:
            break
        paged = paged.with_page(page.next_page)
    print(f"walked {page_number} pages of {page.total_results} results\n")

    # ------------------------------------------------------------------ #
    # 4. a batch over a thread pool — identical bytes, concurrent wall clock
    # ------------------------------------------------------------------ #
    batch = BatchRequest(
        queries=("store texas", "clothes casual", "retailer apparel"), size_bound=6
    )
    serial_batch = service.run_batch(batch)
    with SnippetService(corpus, executor=ConcurrentExecutor(max_workers=4)) as threaded:
        concurrent_batch = threaded.run_batch(batch)
    identical = json.dumps(serial_batch.to_dict(), sort_keys=True) == json.dumps(
        concurrent_batch.to_dict(), sort_keys=True
    )
    print(f"batch of {len(batch.queries)} queries over {len(serial_batch.documents)} documents: "
          f"{serial_batch.total_results} results; threaded == serial: {identical}\n")

    # ------------------------------------------------------------------ #
    # 5. update-then-query: incremental edits through the same protocol
    # ------------------------------------------------------------------ #
    warm = service.run(request)  # identical request -> served from cache
    print(f"warm repeat of {request.query!r}: from_cache={warm.from_cache}")

    # Edit one text value of the document and push it as an UpdateRequest.
    # The service diffs the XML against the registered index and applies
    # posting-level deltas; unaffected cache entries survive the swap.
    edited = clone_tree(service.corpus.system("stores").index.tree)
    for node in edited.iter_nodes():
        if node.tag == "state" and node.text == "Texas":
            node.text = "Nevada"
            break
    update = service.run_update(
        UpdateRequest(document="stores", xml=to_xml_string(edited))
    )
    print(
        f"update applied: incremental={update.incremental} "
        f"changed_nodes={update.changed_nodes} changed_terms={update.changed_terms}"
    )
    after = service.run(request)  # "store texas" touched the edit -> recomputed
    print(
        f"after the edit {request.query!r} finds {after.total_results} result(s) "
        f"(from_cache={after.from_cache})\n"
    )

    # ------------------------------------------------------------------ #
    # 6. serving-cache statistics, per document
    # ------------------------------------------------------------------ #
    for name, caches in service.cache_stats().items():
        query_stats = caches["query"]
        print(f"  {name:<8s} query-cache hits={query_stats['hits']:.0f} "
              f"misses={query_stats['misses']:.0f} hit_rate={query_stats['hit_rate']:.2f}")
    print()

    # ------------------------------------------------------------------ #
    # 7. the same corpus, sharded: ClusterService is a drop-in router
    # ------------------------------------------------------------------ #
    from repro.cluster import ClusterService

    def fresh_corpus() -> Corpus:
        # A document belongs to exactly one registry at a time, so the
        # cluster gets its own copies instead of adopting `corpus`'s.
        rebuilt = Corpus()
        rebuilt.add_builtin("figure5-stores", name="stores")
        rebuilt.add_builtin("retail")
        return rebuilt

    with ClusterService.from_corpus(fresh_corpus(), shards=2) as cluster:
        print(f"=== {cluster!r} ===")
        for row in cluster.shard_summary():
            print(f"  shard-{row['shard']}: {row['names']}")

        # Identical bytes through the identical JSON surface — the router
        # fans out/merges, the caller cannot tell the difference...
        single = SnippetService(fresh_corpus())
        probe = SearchRequest(query="clothes casual", document="retail", size_bound=6)
        identical = json.dumps(cluster.handle_dict(probe.to_dict()), sort_keys=True) == (
            json.dumps(single.handle_dict(probe.to_dict()), sort_keys=True)
        )
        print(f"cluster response == single-corpus response: {identical}")

        # ...unless it asks for meta, where shard provenance lives.
        with_meta = cluster.run(
            SearchRequest(query="clothes casual", document="retail", include_meta=True)
        )
        print(f"served by shard {with_meta.shard} "
              f"(meta block: {sorted(with_meta.to_dict(include_meta=True)['meta'])})")

        # Updates route to the owning shard and come back as a replication
        # delta: node-level edits, not the whole document.
        _, delta = cluster.run_update_with_delta(
            UpdateRequest(document="stores", xml=to_xml_string(edited))
        )
        print(f"replication delta: {delta!r}")

    # The same cluster persists and reloads from disk:
    #   python -m repro.cli cluster-init --dataset retail --shards 4 --output ./cluster
    #   python -m repro.cli cluster-serve-request --cluster-dir ./cluster --request -
    #   python -m repro.cli cluster-update --cluster-dir ./cluster --file edited.xml
    #   python -m repro.cli corpus-compact --corpus-dir ./cluster/shard-0

    # ------------------------------------------------------------------ #
    # 8. the network frontend: gateway middleware + HTTP server + client
    # ------------------------------------------------------------------ #
    from repro.api import HttpServer, ServiceClient, ServingBackend, build_gateway

    # Any backend — the single-corpus service, the cluster router, or a
    # middleware stack — plugs in behind the same ServingBackend seam.
    gateway = build_gateway(
        SnippetService(fresh_corpus()),
        max_in_flight=8,    # admission control: shed load past 8 in flight
        deadline=30.0,      # per-request deadline: a miss answers 504
    )
    print(f"=== gateway stack: {gateway.capabilities()['middleware']} ===")

    with HttpServer(gateway, port=0) as server:  # port=0: pick a free port
        client = ServiceClient(port=server.port)
        print(f"client is a ServingBackend too: {isinstance(client, ServingBackend)}")

        remote = client.execute(
            SearchRequest(query="store texas", document="stores", size_bound=6)
        )
        print(f"over HTTP: {remote.total_results} results "
              f"(kind {remote.kind}, algorithm {remote.algorithm})")

        # The wire body is byte-identical to the in-process handle_json —
        # HTTP adds transport, never semantics.
        in_process = gateway.handle_json(json.dumps(probe.to_dict()))
        over_http = json.dumps(client.handle_dict(probe.to_dict()), sort_keys=True)
        print(f"HTTP bytes == in-process bytes: {in_process == over_http}")

        # Errors carry machine-readable codes mapped to HTTP statuses:
        # unknown_document -> 404, bad_request -> 400, overloaded -> 503.
        missing = client.execute(SearchRequest(query="x", document="ghost"))
        print(f"unknown document -> error code {missing.code!r}")

        health = client.health()
        served = client.stats()["requests"]["total"]
        print(f"health {health['status']!r}; served {served} request(s) so far")

    # The same server from the command line:
    #   python -m repro.cli serve --dataset figure5-stores --port 8080 \
    #       --max-in-flight 16 --deadline 30

    # ------------------------------------------------------------------ #
    # 9. the distributed cluster: spawned shard processes + replica sets
    # ------------------------------------------------------------------ #
    import tempfile

    from repro.cluster import ClusterService as _Cluster, RemoteClusterService

    with tempfile.TemporaryDirectory() as cluster_dir:
        # Save a sharded corpus, then spawn it: every shard becomes its
        # own `serve --shard-of` process (2 shards × 2 replicas = 4
        # processes), discovered through atomically-written port files.
        saver = _Cluster.from_corpus(fresh_corpus(), shards=2)
        saver.save_dir(cluster_dir)
        saver.close()

        with RemoteClusterService.spawn(cluster_dir, replicas=2) as remote:
            print(f"\n=== {remote!r} ===")
            for row in remote.stats()["shards"]:
                print(f"  shard-{row['shard']}: {row['endpoints']} endpoint(s), "
                      f"{row['healthy']} healthy")

            # The network hop changes nothing: default wire bytes are
            # identical to the single-corpus service — reads load-balance
            # across each shard's replicas, so ask twice to hit both.
            single = SnippetService(fresh_corpus())
            for attempt in (1, 2):
                identical = json.dumps(
                    remote.handle_dict(probe.to_dict()), sort_keys=True
                ) == json.dumps(single.handle_dict(probe.to_dict()), sort_keys=True)
                print(f"remote bytes == single-corpus bytes (read {attempt}): "
                      f"{identical}")

            # Writes pin to the shard's primary; the returned delta fans
            # to the replicas, keeping the whole set in sync.
            remote.execute_update(UpdateRequest(action="remove", document="retail"))
            single.execute_update(UpdateRequest(action="remove", document="retail"))
            gone = remote.execute(SearchRequest(query="clothes", document="retail"))
            print(f"after replicated remove: error code {gone.code!r}")

            # Health probing and failover: the monitor polls every
            # endpoint; a dead replica is routed around, a dead primary is
            # promoted past (see docs/cluster.md for the full semantics).
            monitor = remote.start_monitor(interval=0.25)
            print(f"health monitor running: {monitor.running}")

    # The same topology from the command line:
    #   python -m repro.cli cluster-init --dataset retail --shards 4 --output ./cluster
    #   python -m repro.cli cluster-spawn --cluster-dir ./cluster --replicas 2 \
    #       --port 8080 --health-interval 0.25
    #   python -m repro.cli cluster-rebalance --cluster-dir ./cluster \
    #       --document retail --to-shard 0

    # ------------------------------------------------------------------ #
    # 10. observability: traces, metrics, request logs
    # ------------------------------------------------------------------ #
    # Every request through a traced gateway gets a span tree — gateway
    # stages, executor queue delay, service phases, and (over a cluster)
    # per-shard HTTP round trips stitched across processes.  Default wire
    # bytes never change: traces surface only in the opt-in meta block
    # and the bounded buffer behind GET /v1/trace.  Full tour:
    # docs/observability.md.
    from repro.obs.trace import format_trace

    traced = build_gateway(SnippetService(fresh_corpus()))
    with HttpServer(traced, port=0) as server:
        client = ServiceClient(port=server.port)

        # Opt in via include_meta: the span tree rides in meta["trace"].
        body = client.handle_dict(
            SearchRequest(
                query="store texas", document="stores", size_bound=6,
                include_meta=True,
            ).to_dict()
        )
        print("\n=== one request's span tree ===")
        print(format_trace(body["meta"]["trace"]))

        # The same trace is retained server-side (newest-128 ring):
        #   GET /v1/trace/<request_id>, or the CLI:
        #   python -m repro.cli trace --port 8080
        newest = client.trace()["traces"]
        print(f"buffered traces: {len(newest)} (newest first)")

        # Histogram metrics with p50/p95/p99, as versioned JSON or
        # Prometheus text (GET /v1/metrics?format=prometheus):
        snapshot = client.metrics()
        seconds = snapshot["metrics"]["repro_request_seconds"]["series"][0]
        print(f"search p95: {seconds['quantiles']['p95'] * 1000:.2f} ms "
              f"over {seconds['count']} request(s)")
        print(client.metrics_text().splitlines()[0])

    # Structured request logs from the command line:
    #   python -m repro.cli serve --dataset figure5-stores --port 8080 \
    #       --request-log requests.jsonl --slow-query-ms 50

    # ------------------------------------------------------------------ #
    # 11. the load harness: seeded mixed traffic + the ablation matrix
    # ------------------------------------------------------------------ #
    # Point benchmarks time one operation; serving regressions live in the
    # mixture.  A LoadProfile plus a corpus deterministically plans a
    # Zipf-skewed search/batch/update stream (same seed ⇒ byte-identical
    # payloads in the same order), and run_load fires it through a
    # ClientPool while scraping GET /v1/stats before and after — so the
    # cache-hit and shed rates cover exactly the requests of this run.
    # Full tour: docs/loadgen.md.
    from repro.eval.loadgen import LoadProfile, build_plan, run_load

    load_corpus = fresh_corpus()
    profile = LoadProfile(seed=7, requests=24, concurrency=2)
    plan = build_plan(load_corpus, profile)
    print(f"\n=== load plan: {len(plan)} requests, signature "
          f"{plan.signature()[:12]}… ===")

    with HttpServer(build_gateway(SnippetService(load_corpus)), port=0) as server:
        report = run_load(plan, port=server.port)
    latency = {name: f"{value * 1000:.2f} ms" if value is not None else "-"
               for name, value in report.latency.items()}
    print(f"{report.requests_sent} requests at "
          f"{report.throughput_rps:.1f} req/s, latency {latency}, "
          f"cache hit rate {report.cache_hit_rate}")

    # The same run from the command line (plus --report BENCH_loadgen.json
    # to persist schema-v2 rows), and the baseline-plus-one-flip ablation
    # matrix — caches on/off, admission limits, deadlines — each
    # configuration served by a freshly spawned process replaying the
    # identical plan:
    #   python -m repro.cli loadgen --dataset retail --seed 7 --requests 48
    #   python -m repro.cli loadgen-ablate --dataset retail --smoke


if __name__ == "__main__":
    main()
