#!/usr/bin/env python3
"""Manage several datasets, query them all, and export drawings / DTDs.

Run with::

    python examples/corpus_and_export.py [output_directory]

Shows the parts of the reproduction that go beyond a single query:

* the :class:`repro.Corpus` registry (the demo web site let users pick one
  of several XML data sets before searching),
* querying every registered dataset at once,
* result-set-aware *distinct* snippets on an ambiguous catalogue,
* exporting a query result and its snippet as Graphviz DOT (the style of
  the paper's Figures 1 and 2) and the inferred schema as a DTD.
"""

from __future__ import annotations

import os
import sys

from repro import Corpus, DistinctSnippetGenerator
from repro.eval.ablation import _ambiguous_store_catalogue
from repro.search.engine import SearchEngine
from repro.snippet.render import render_snippet_text
from repro.xmltree.export import export_doctype, to_dot
from repro.xmltree.schema import infer_schema


def main() -> None:
    output_dir = sys.argv[1] if len(sys.argv) > 1 else "export_output"
    os.makedirs(output_dir, exist_ok=True)

    # ------------------------------------------------------------------ #
    # 1. a corpus of datasets, queried in one call
    # ------------------------------------------------------------------ #
    corpus = Corpus()
    corpus.add_builtin("figure5-stores", name="stores")
    corpus.add_builtin("movies")
    corpus.add_builtin("bibliography")

    print("=== registered datasets ===")
    for row in corpus.summary():
        print(f"  {row['name']:<14s} {row['nodes']:>6} nodes   entities: {row['entities']}")
    print()

    print('=== query "man" across every dataset ===')
    for name, outcome in corpus.query_all("man", size_bound=6, limit=2).items():
        print(f"  {name}: {len(outcome)} results shown")
        for generated in outcome.snippets:
            first_line = render_snippet_text(generated).splitlines()[0]
            print(f"    {first_line}")
    print()

    # ------------------------------------------------------------------ #
    # 2. distinct snippets on an ambiguous catalogue
    # ------------------------------------------------------------------ #
    print("=== distinct snippets on near-identical results ===")
    ambiguous = _ambiguous_store_catalogue(stores=4, seed=7)
    results = SearchEngine(ambiguous).search("store texas jeans")
    distinct = DistinctSnippetGenerator(ambiguous.analyzer).generate_all(results, size_bound=6)
    for generated in distinct:
        print(render_snippet_text(generated))
    print()

    # ------------------------------------------------------------------ #
    # 3. exports: DOT drawings and an inferred DTD
    # ------------------------------------------------------------------ #
    stores_system = corpus.system("stores")
    outcome = stores_system.query("store texas", size_bound=6)
    top = outcome.snippets[0]

    result_dot = os.path.join(output_dir, "result.dot")
    snippet_dot = os.path.join(output_dir, "snippet.dot")
    with open(result_dot, "w", encoding="utf-8") as handle:
        handle.write(to_dot(top.result.to_tree(), graph_name="query_result"))
    with open(snippet_dot, "w", encoding="utf-8") as handle:
        handle.write(
            to_dot(
                stores_system.index.tree.node(top.result.root),
                graph_name="snippet",
                highlight=top.snippet.node_labels,
            )
        )

    dtd_path = os.path.join(output_dir, "stores.dtd")
    schema = infer_schema(stores_system.index.tree)
    with open(dtd_path, "w", encoding="utf-8") as handle:
        handle.write(export_doctype(schema, stores_system.index.tree.root.tag))

    print(f"wrote {result_dot}, {snippet_dot} (render with: dot -Tpng {snippet_dot} -o snippet.png)")
    print(f"wrote {dtd_path} (DOCTYPE inferred from the data)")


if __name__ == "__main__":
    main()
