#!/usr/bin/env python3
"""The Figure 5 demo scenario: browse store search results as a web page.

Run with::

    python examples/store_search_demo.py [output.html]

Reproduces the demo walk-through of §4: the query "store texas" with a
snippet size upper bound of 6 edges over a store catalogue.  The snippets
are printed to the terminal and written to a standalone HTML page (the
stand-in for the original PHP web UI), with each snippet linking to the
full query result it summarises.
"""

from __future__ import annotations

import sys

from repro import ExtractSystem
from repro.datasets.retail import RetailConfig, figure5_document, generate_retail_document
from repro.snippet.render import write_result_page


def main() -> None:
    output_path = sys.argv[1] if len(sys.argv) > 1 else "store_search_results.html"

    # The curated Figure 5 document (Levis / ESprit / a non-Texas store) ...
    demo_system = ExtractSystem.from_tree(figure5_document())
    demo_outcome = demo_system.query("store texas", size_bound=6)

    print("=== Figure 5 walk-through (curated document) ===")
    print(demo_outcome.render_text())
    print()

    # ... and a larger generated catalogue to show the same pipeline at scale.
    catalogue = generate_retail_document(
        RetailConfig(retailers=8, stores_per_retailer=5, clothes_per_store=6, seed=5),
        name="retail-demo",
    )
    system = ExtractSystem.from_tree(catalogue)
    outcome = system.query("store texas", size_bound=6)

    print(f"=== generated catalogue ({catalogue.size_nodes} nodes) ===")
    print(f"query 'store texas' returned {len(outcome)} results")
    for generated in outcome.snippets[:5]:
        covered = ", ".join(generated.snippet.covered_texts)
        print(f"  result #{generated.result.result_id}: snippet shows [{covered}]")
    print()

    page = write_result_page(outcome.snippets, output_path)
    print(f"wrote HTML result page with {len(outcome)} snippets to {page}")
    print("per-phase timings (seconds):")
    print(outcome.timings.format_table())


if __name__ == "__main__":
    main()
