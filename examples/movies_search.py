#!/usr/bin/env python3
"""The "movies" demo scenario: keyword search with snippets over a film database.

Run with::

    python examples/movies_search.py

Shows eXtract on the second dataset mentioned in §4 ("movies and stores"):
entity/attribute classification of the movie schema, several keyword
queries of different shapes (genre + year, actor name, studio) and the
effect of the snippet size bound on what the user gets to see.
"""

from __future__ import annotations

from repro import ExtractSystem
from repro.datasets.movies import MoviesConfig, generate_movies_document
from repro.snippet.render import render_snippet_text

QUERIES = (
    "movie drama",
    "movie drama 2005",
    "actor movie",
    "Blue Lantern Pictures",
)


def main() -> None:
    document = generate_movies_document(MoviesConfig(movies=40, seed=23), name="cinema")
    system = ExtractSystem.from_tree(document)

    print("=== schema analysis ===")
    analyzer = system.analyzer
    print("entity types:", sorted(analyzer.entity_tags()))
    for entity in analyzer.entity_types.values():
        key_name = entity.key.attribute_tag if entity.key else "(no key)"
        print(
            f"  {entity.tag:<8s} instances={entity.instance_count:<4d} "
            f"attributes={entity.attribute_tags} key={key_name}"
        )
    print()

    for query in QUERIES:
        outcome = system.query(query, size_bound=8, limit=3)
        print(f'=== query "{query}" — {len(outcome.results)} results shown ===')
        for generated in outcome.snippets:
            print(render_snippet_text(generated))
        print()

    # Size-bound sweep on one query: the snippet gracefully grows.
    print("=== effect of the snippet size bound (query 'movie drama') ===")
    results = system.engine.search("movie drama")
    top = results[0]
    for bound in (4, 8, 12, 20):
        generated = system.generator.generate(top, size_bound=bound)
        print(
            f"  bound={bound:<3d} edges used={generated.snippet.size_edges:<3d} "
            f"IList items covered={generated.covered_items}/{len(generated.ilist.coverable_items())}"
        )


if __name__ == "__main__":
    main()
