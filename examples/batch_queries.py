#!/usr/bin/env python3
"""The query service layer: persistent indexes, caching and batch search.

Run with::

    python examples/batch_queries.py [snapshot_directory]

Shows the serving features the interactive demo relied on:

* snapshotting a whole corpus to disk (``Corpus.save_dir``) and loading it
  back without re-indexing (``Corpus.load_dir``),
* the query-result cache: the same query answered twice, the second time
  served from the LRU cache,
* batch execution: many queries over many documents in one pass, with
  per-query timings and shared posting-list lookups.

The same flow is available from the command line::

    python -m repro.cli corpus-save --dataset retail --dataset movies --output ./corpus
    python -m repro.cli batch --queries queries.txt --corpus-dir ./corpus --repeat 2
"""

from __future__ import annotations

import sys
import tempfile
import time

from repro import Corpus

QUERIES = [
    "store texas",
    "retailer apparel",
    "movie drama",
    "clothes casual",
]


def main() -> None:
    snapshot_dir = sys.argv[1] if len(sys.argv) > 1 else None

    # ------------------------------------------------------------------ #
    # 1. build a corpus and snapshot it to disk
    # ------------------------------------------------------------------ #
    corpus = Corpus()
    corpus.add_builtin("retail")
    corpus.add_builtin("movies")
    corpus.add_builtin("figure5-stores", name="stores")

    target = snapshot_dir or tempfile.mkdtemp(prefix="extract-corpus-")
    started = time.perf_counter()
    subdirs = corpus.save_dir(target)
    print(f"=== saved {len(subdirs)} document indexes to {target} "
          f"({time.perf_counter() - started:.3f}s) ===")
    for row in corpus.summary():
        print(f"  {row['name']:<10s} {row['nodes']:>6} nodes")
    print()

    # ------------------------------------------------------------------ #
    # 2. load it back: no re-indexing, identical results
    # ------------------------------------------------------------------ #
    started = time.perf_counter()
    loaded = Corpus.load_dir(target)
    print(f"=== reloaded corpus in {time.perf_counter() - started:.3f}s ===")
    original = corpus.query("retail", "store texas", size_bound=6, use_cache=False)
    restored = loaded.query("retail", "store texas", size_bound=6, use_cache=False)
    print(f"  'store texas' on retail: {len(original)} results before, "
          f"{len(restored)} after reload, "
          f"identical={original.render_text() == restored.render_text()}")
    print()

    # ------------------------------------------------------------------ #
    # 3. the query-result cache in action
    # ------------------------------------------------------------------ #
    system = loaded.system("retail")
    started = time.perf_counter()
    system.query("retailer apparel", size_bound=6)
    cold = time.perf_counter() - started
    started = time.perf_counter()
    warm_outcome = system.query("retailer apparel", size_bound=6)
    warm = time.perf_counter() - started
    print("=== query-result cache ===")
    print(f"  cold: {cold * 1000:8.3f} ms")
    print(f"  warm: {warm * 1000:8.3f} ms  (from_cache={warm_outcome.from_cache}, "
          f"{cold / max(warm, 1e-9):.0f}x faster)")
    print(f"  stats: {system.cache.stats!r}")
    print()

    # ------------------------------------------------------------------ #
    # 4. batch execution with per-query timings
    # ------------------------------------------------------------------ #
    print("=== batch: every query over every document, one pass ===")
    report = loaded.search_batch(QUERIES, size_bound=6)
    print(report.format_table())
    print()
    rerun = loaded.search_batch(QUERIES, size_bound=6)
    print(f"warm re-run of the same batch: {rerun.total_seconds * 1000:.3f} ms "
          f"(vs {report.total_seconds * 1000:.3f} ms cold)")


if __name__ == "__main__":
    main()
