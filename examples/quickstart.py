#!/usr/bin/env python3
"""Quickstart: index an XML document, search it and print result snippets.

Run with::

    python examples/quickstart.py

The example builds a small store catalogue from XML text (exactly what a
user of the library would do with their own file), issues the Figure 5
query "store texas" with a snippet size bound of 6 edges and prints the
snippets next to the statistics of the document.
"""

from __future__ import annotations

from repro import ExtractSystem

CATALOGUE_XML = """<?xml version="1.0"?>
<!DOCTYPE stores [
  <!ELEMENT stores (store*)>
  <!ELEMENT store (name, state, city, merchandises)>
  <!ELEMENT merchandises (clothes*)>
  <!ELEMENT clothes (category, fitting, situation)>
]>
<stores>
  <store>
    <name>Levis</name>
    <state>Texas</state>
    <city>Houston</city>
    <merchandises>
      <clothes><category>jeans</category><fitting>man</fitting><situation>casual</situation></clothes>
      <clothes><category>jeans</category><fitting>man</fitting><situation>casual</situation></clothes>
      <clothes><category>jeans</category><fitting>woman</fitting><situation>casual</situation></clothes>
      <clothes><category>shirts</category><fitting>man</fitting><situation>formal</situation></clothes>
    </merchandises>
  </store>
  <store>
    <name>ESprit</name>
    <state>Texas</state>
    <city>Austin</city>
    <merchandises>
      <clothes><category>outwear</category><fitting>woman</fitting><situation>casual</situation></clothes>
      <clothes><category>outwear</category><fitting>woman</fitting><situation>formal</situation></clothes>
      <clothes><category>skirt</category><fitting>woman</fitting><situation>casual</situation></clothes>
    </merchandises>
  </store>
  <store>
    <name>Harbor Cloth</name>
    <state>Oregon</state>
    <city>Portland</city>
    <merchandises>
      <clothes><category>sweaters</category><fitting>man</fitting><situation>casual</situation></clothes>
    </merchandises>
  </store>
</stores>
"""


def main() -> None:
    # 1. Build the system: parse, analyze (entities / attributes /
    #    connection nodes), index.
    system = ExtractSystem.from_xml(CATALOGUE_XML, name="catalogue")

    print("=== document statistics ===")
    print(system.document_stats().format_summary())
    print()
    print("entity types found:", sorted(system.analyzer.entity_tags()))
    print()

    # 2. Search and generate snippets within a 6-edge bound (Figure 5 setup).
    outcome = system.query("store texas", size_bound=6)

    print("=== result snippets ===")
    print(outcome.render_text(show_ilist=True))
    print()

    # 3. The per-result IList shows why each snippet looks the way it does.
    first = outcome.snippets[0]
    print("IList of the top result:", ", ".join(first.ilist.texts()))
    print(
        f"snippet uses {first.snippet.size_edges} of {first.size_bound} allowed edges "
        f"and covers {first.covered_items} IList items"
    )


if __name__ == "__main__":
    main()
