#!/usr/bin/env python3
"""Compare eXtract snippets with the baselines on the same query results.

Run with::

    python examples/compare_baselines.py

Reproduces, in miniature, the demo's side-by-side comparison with Google
Desktop (§4): for a handful of query results the script prints the eXtract
snippet, the flat text-window snippet (the Google-Desktop stand-in, which
ignores all structure), the first-K-edges snippet and the quality metrics
of each tree-based method.
"""

from __future__ import annotations

from repro import ExtractSystem
from repro.datasets.retail import RetailConfig, generate_retail_document
from repro.eval.metrics import evaluate_snippet
from repro.snippet.baselines import (
    FirstEdgesSnippetGenerator,
    TextWindowSnippetGenerator,
)
from repro.snippet.render import render_snippet_text, render_text_snippet

SIZE_BOUND = 8
QUERY = "retailer texas outwear"


def main() -> None:
    document = generate_retail_document(
        RetailConfig(retailers=6, stores_per_retailer=4, clothes_per_store=6, seed=9),
        name="retail-compare",
    )
    system = ExtractSystem.from_tree(document)
    results = system.engine.search(QUERY, limit=3)
    print(f'query: "{QUERY}"  ({len(results)} results shown, bound {SIZE_BOUND} edges)')
    print()

    first_edges = FirstEdgesSnippetGenerator(system.analyzer)
    text_window = TextWindowSnippetGenerator()

    for result in results:
        print(f"--------- result #{result.result_id} ---------")
        extract_snippet = system.generator.generate(result, size_bound=SIZE_BOUND)
        print("[eXtract]")
        print(render_snippet_text(extract_snippet))
        print()

        baseline_snippet = first_edges.generate(result, SIZE_BOUND)
        print("[first-K-edges baseline]")
        print(render_snippet_text(baseline_snippet))
        print()

        flat = text_window.generate(result, SIZE_BOUND)
        print("[text-window baseline (structure ignored)]")
        print(render_text_snippet(flat))
        print()

        extract_quality = evaluate_snippet(extract_snippet)
        baseline_quality = evaluate_snippet(baseline_snippet)
        print("quality (eXtract vs first-K-edges):")
        for metric, value in extract_quality.as_dict().items():
            other = baseline_quality.as_dict()[metric]
            print(f"  {metric:<28s} {value:6.3f}   vs {other:6.3f}")
        print()


if __name__ == "__main__":
    main()
