#!/usr/bin/env python3
"""Run the full experiment suite and print (or save) every table.

Run with::

    python examples/run_experiments.py              # print everything
    python examples/run_experiments.py F1 E4 A1     # selected experiments
    python examples/run_experiments.py --save out/  # also write .txt files

These are the same experiments the ``benchmarks/`` directory wraps with
pytest-benchmark; this script is the convenient way to regenerate the
numbers recorded in EXPERIMENTS.md in one go.
"""

from __future__ import annotations

import os
import sys

from repro.eval.experiments import EXPERIMENTS, run_experiment


def main(argv: list[str]) -> int:
    save_dir: str | None = None
    requested: list[str] = []
    arguments = iter(argv)
    for argument in arguments:
        if argument == "--save":
            try:
                save_dir = next(arguments)
            except StopIteration:
                print("--save requires a directory argument", file=sys.stderr)
                return 2
        else:
            requested.append(argument)

    experiment_ids = requested or list(EXPERIMENTS)
    unknown = [eid for eid in experiment_ids if eid not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment id(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2

    if save_dir:
        os.makedirs(save_dir, exist_ok=True)

    for experiment_id in experiment_ids:
        print(f"running {experiment_id}: {EXPERIMENTS[experiment_id].description}")
        table = run_experiment(experiment_id)
        print(table.format_text())
        print()
        if save_dir:
            table.save(os.path.join(save_dir, f"{experiment_id}.txt"))
    if save_dir:
        print(f"saved {len(experiment_ids)} tables to {save_dir}/")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
